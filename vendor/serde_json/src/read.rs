//! A strict recursive-descent JSON parser.

use serde::{Map, Number, Value};

use crate::Error;

/// Nesting limit: the workspace's token extractor feeds arbitrary strings
/// through this parser, so runaway recursion must be bounded.
const MAX_DEPTH: usize = 128;

pub(crate) fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{lit}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the paired low one.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume the maximal run of plain bytes in one step.
                    // The delimiters (`"`, `\`, controls) are ASCII, so the
                    // run boundaries always fall on UTF-8 character
                    // boundaries of the (already validated) input &str —
                    // one validation per run, not per character.
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone leading zero or 1-9 followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(n)));
            }
        }
        text.parse::<f64>()
            .map(|n| Value::Number(Number::F64(n)))
            .map_err(|_| self.err("invalid number"))
    }
}
