//! JSON text writers (compact and pretty).

use serde::{Number, Value};

pub(crate) fn compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                compact(val, out);
            }
            out.push('}');
        }
    }
}

pub(crate) fn pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_string(k, out);
                out.push_str(": ");
                pretty(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        Value::Array(_) => out.push_str("[]"),
        Value::Object(_) => out.push_str("{}"),
        scalar => compact(scalar, out),
    }
}

fn push_indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_number(n: &Number, out: &mut String) {
    use std::fmt::Write;
    let _ = write!(out, "{n}");
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
