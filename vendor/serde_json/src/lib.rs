//! Offline stand-in for `serde_json`.
//!
//! Provides the JSON text format over the vendored `serde`'s [`Value`]
//! tree: compact and pretty writers, a strict recursive-descent parser,
//! and the `to_string`/`from_str` entry points the workspace uses.
//!
//! Output determinism: struct fields serialize in declaration order and
//! hash maps in sorted key order (see the vendored `serde` docs), so equal
//! data always yields byte-identical JSON — a property the determinism
//! and parallel-equivalence test suites assert.

#![forbid(unsafe_code)]

mod read;
mod write;

pub use serde::{Map, Number, Value};

/// Errors from serialization, deserialization, or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write::compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write::pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Parse JSON text and deserialize into `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = read::parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserialize a [`Value`] tree into `T`.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{1}f\u{2603}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn unicode_escape_pairs_parse() {
        // Surrogate pair: U+1F600.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
    }

    #[test]
    fn nested_value_parses() {
        let v: Value = from_str(r#"{"a": [1, {"b": null}, "x"], "c": -2.5}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.len(), 2);
        let arr = obj.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(obj.get("c").unwrap().as_f64(), Some(-2.5));
    }

    #[test]
    fn invalid_json_rejected() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": ["));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn compact_objects_preserve_order() {
        let v: Value = from_str(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"z":1,"a":2}"#);
    }
}
