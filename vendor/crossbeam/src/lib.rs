//! Offline stand-in for the `crossbeam` facade crate.
//!
//! Provides the two surfaces this workspace uses — `crossbeam::channel`
//! and `crossbeam::thread::scope` — implemented over the std primitives.
//! Semantics relevant to the crawler are preserved: unbounded channels
//! whose `Sender`/`Receiver` are cloneable and shareable across threads,
//! and scoped threads that are all joined before `scope` returns.

#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer multi-consumer channels (std::mpsc + a shared lock).

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned by [`Sender::send`] when the channel disconnected.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam, Debug does not require `T: Debug` (the payload
    // is elided), so `.expect()` works on channels of any message type.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a message; errors only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    ///
    /// Unlike `std::sync::mpsc`, crossbeam receivers are `Clone + Sync`;
    /// we recover that by serializing access through a mutex.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv().map_err(|_| RecvError)
        }

        /// An iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Borrowing iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning iterator over received messages.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's `scope(|s| ...)` shape.

    use std::any::Any;

    /// A scope handle passed to the closure given to [`scope`].
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a placeholder
        /// argument where crossbeam passes a nested scope handle; callers
        /// in this workspace ignore it (`|_| ...`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.0.spawn(move || f(()))
        }
    }

    /// Run a closure with a thread scope; every spawned thread is joined
    /// before this returns. A panicking child propagates its panic to the
    /// caller (crossbeam instead returns `Err`; callers here `.expect()`
    /// either way, so the observable behavior matches).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip_and_iteration() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let got: Vec<u32> = rx.into_iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn scoped_threads_join_and_communicate() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let out = super::thread::scope(|s| {
            let h = s.spawn(move |_| {
                for v in &rx {
                    if v == 0 {
                        break;
                    }
                }
                42u32
            });
            tx.send(7).unwrap();
            tx.send(0).unwrap();
            h.join().expect("worker")
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
