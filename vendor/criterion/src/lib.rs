//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches
//! use: `Criterion::default().sample_size(n)`, `bench_function`,
//! `benchmark_group` (with `sample_size` and `finish`), `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs
//! `sample_size` timed samples (each sample auto-scales its iteration
//! count so short benchmarks are measured over enough iterations to be
//! meaningful) and reports the min / mean / max per-iteration time.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; drives the timed routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Warmup + calibration: run single iterations until we know roughly
    // how long one takes, so each sample can batch enough iterations.
    let mut one = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut one);
    let per_iter = one.elapsed.max(Duration::from_nanos(1));
    // Target ~5ms per sample, capped to keep total runtime bounded.
    let iters_per_sample = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos())
        .clamp(1, 10_000) as u64;

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{id:<48} time: [{} {} {}]",
        format_time(min),
        format_time(mean),
        format_time(max)
    );
}

fn format_time(secs: f64) -> String {
    let ns = secs * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a group of benchmark functions, optionally with a custom
/// `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
