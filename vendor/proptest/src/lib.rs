//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! `&str` regex-like string patterns of the form `[class]{m,n}` /
//! `\PC{m,n}`, `prop::collection::vec`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Cases are generated from a fixed-seed deterministic RNG, so test runs
//! are reproducible. There is no shrinking: a failing case panics with
//! the assertion message straight away.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strat,)+);
            $crate::test_runner::run(&config, stringify!($name), strategy, |($($pat,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (rather than unwinding) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left),
            stringify!($right),
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Asserts two values are not equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`): {}",
            stringify!($left),
            stringify!($right),
            left,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u64> {
        (1u64..10).prop_map(|n| n * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(n in 5usize..17, f in 0.25f64..0.75) {
            prop_assert!((5..17).contains(&n));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn mapped_strategy_applies(n in small()) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!((2..20).contains(&n));
        }

        #[test]
        fn string_patterns_match_class(s in "[a-z0-9]{1,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }

        #[test]
        fn printable_pattern_has_no_controls(s in "\\PC{0,16}") {
            prop_assert!(s.chars().count() <= 16);
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0u64..3, 2..5) ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut rng1 = crate::TestRng::for_test("x");
        let mut rng2 = crate::TestRng::for_test("x");
        let s = "[a-z]{1,6}";
        for _ in 0..32 {
            assert_eq!(s.generate(&mut rng1), s.generate(&mut rng2));
        }
    }
}
