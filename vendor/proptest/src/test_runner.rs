//! Deterministic case generation and the per-test runner.

use crate::strategy::Strategy;

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A small deterministic generator (splitmix64). Seeded per test from the
/// test's name so every test explores its own fixed stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is negligible for the
        // small bounds used by test strategies.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generates `config.cases` inputs from `strategy` and runs `test` on
/// each, panicking with the case number and message on the first failure.
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), String>,
{
    let mut rng = TestRng::for_test(name);
    for case in 0..config.cases {
        let input = strategy.generate(&mut rng);
        if let Err(msg) = test(input) {
            panic!("proptest `{name}` failed on case {case}/{}: {msg}", config.cases);
        }
    }
}
