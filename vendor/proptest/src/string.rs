//! `&str` pattern strategies.
//!
//! The workspace only uses patterns of the shape `CLASS{m,n}` where
//! `CLASS` is either a bracket class of literal chars and `a-z` ranges
//! (e.g. `[a-z0-9]`) or `\PC` (any printable, i.e. non-control, char).
//! Anything else is rejected loudly at generation time.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The character pool used for `\PC`: a deliberately spiky mix of ASCII
/// letters/digits/punctuation (including URL-significant bytes like `%`,
/// `&`, `=`, `/` and space) and multi-byte code points, so that
/// percent-encoding and parser property tests see hostile inputs.
const PRINTABLE_POOL: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Q', 'Z', '0', '1', '9', ' ', '!', '"', '#', '$', '%',
    '&', '\'', '(', ')', '*', '+', ',', '-', '.', '/', ':', ';', '<', '=', '>', '?', '@', '[',
    '\\', ']', '^', '_', '`', '{', '|', '}', '~', 'é', 'ß', 'λ', 'Ж', '☃', '日', '本', '\u{2028}',
    '\u{1F600}',
];

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = Pattern::parse(self)
            .unwrap_or_else(|| panic!("unsupported string pattern: {self:?}"));
        pattern.generate(rng)
    }
}

struct Pattern {
    pool: Vec<char>,
    min_len: usize,
    max_len: usize,
}

impl Pattern {
    fn parse(s: &str) -> Option<Pattern> {
        let (class, rest) = if let Some(rest) = s.strip_prefix("\\PC") {
            (PRINTABLE_POOL.to_vec(), rest)
        } else if let Some(body_and_rest) = s.strip_prefix('[') {
            let close = body_and_rest.find(']')?;
            let body = &body_and_rest[..close];
            (parse_class(body)?, &body_and_rest[close + 1..])
        } else {
            return None;
        };
        let rest = rest.strip_prefix('{')?;
        let rest = rest.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        let min_len = lo.trim().parse().ok()?;
        let max_len = hi.trim().parse().ok()?;
        if class.is_empty() || min_len > max_len {
            return None;
        }
        Some(Pattern {
            pool: class,
            min_len,
            max_len,
        })
    }

    fn generate(&self, rng: &mut TestRng) -> String {
        let span = (self.max_len - self.min_len + 1) as u64;
        let len = self.min_len + rng.below(span) as usize;
        (0..len)
            .map(|_| self.pool[rng.below(self.pool.len() as u64) as usize])
            .collect()
    }
}

fn parse_class(body: &str) -> Option<Vec<char>> {
    let chars: Vec<char> = body.chars().collect();
    let mut pool = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                pool.push(c);
            }
            i += 3;
        } else {
            pool.push(chars[i]);
            i += 1;
        }
    }
    Some(pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_parsing_expands_ranges() {
        let pool = parse_class("a-c9_").unwrap();
        assert_eq!(pool, vec!['a', 'b', 'c', '9', '_']);
    }

    #[test]
    fn pattern_length_bounds_hold() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = "[a-z0-9]{1,12}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 12);
        }
    }

    #[test]
    fn zero_length_allowed() {
        let mut rng = TestRng::new(2);
        let mut saw_empty = false;
        for _ in 0..100 {
            if "\\PC{0,3}".generate(&mut rng).is_empty() {
                saw_empty = true;
            }
        }
        assert!(saw_empty);
    }
}
