//! The [`Strategy`] trait plus range, tuple, map, and constant strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of test-case values. Unlike real proptest there is no
/// shrink tree: `generate` directly produces the value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
