//! Derive macros for the vendored `serde` stand-in.
//!
//! The registry (and therefore `syn`/`quote`) is unavailable in this build
//! environment, so the type definition is parsed directly from the raw
//! `proc_macro::TokenStream`. The supported input shapes are exactly the
//! ones this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (including `#[serde(transparent)]` newtypes),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Generic type parameters are intentionally unsupported — the workspace
//! serializes only concrete types — and produce a compile error naming
//! this file rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse(input);
    gen_serialize(&def).parse().expect("serde_derive: generated invalid Serialize impl")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse(input);
    gen_deserialize(&def).parse().expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------

struct TypeDef {
    name: String,
    transparent: bool,
    kind: Kind,
}

/// One named struct field: its identifier and whether `#[serde(default)]`
/// lets deserialization fall back to `Default::default()` when the field
/// is missing (or null) in the input.
struct Field {
    name: String,
    default: bool,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse(input: TokenStream) -> TypeDef {
    let mut iter = input.into_iter().peekable();
    let mut transparent = false;

    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Outer attribute: `#[ ... ]`.
                if let Some(TokenTree::Group(g)) = iter.next() {
                    transparent |= attr_is_serde_transparent(&g.stream());
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility, possibly `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut iter, "struct name");
                reject_generics(&mut iter, &name);
                let kind = match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Kind::NamedStruct(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Kind::TupleStruct(count_top_level_fields(g.stream()))
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
                    other => panic!("serde_derive: unexpected token after `struct {name}`: {other:?}"),
                };
                return TypeDef { name, transparent, kind };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut iter, "enum name");
                reject_generics(&mut iter, &name);
                let body = match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                    other => panic!("serde_derive: expected enum body for `{name}`, got {other:?}"),
                };
                return TypeDef {
                    name,
                    transparent,
                    kind: Kind::Enum(parse_variants(body)),
                };
            }
            Some(_) => {}
            None => panic!("serde_derive: no struct or enum found in derive input"),
        }
    }
}

fn attr_is_serde_default(attr: &TokenStream) -> bool {
    let mut iter = attr.clone().into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match iter.next() {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

fn attr_is_serde_transparent(attr: &TokenStream) -> bool {
    let mut iter = attr.clone().into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match iter.next() {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "transparent")),
        _ => false,
    }
}

fn expect_ident(
    iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    what: &str,
) -> String {
    match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected {what}, got {other:?}"),
    }
}

fn reject_generics(
    iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    name: &str,
) {
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!(
                "serde_derive (vendored): generic type `{name}` is not supported; \
                 serialize a concrete type instead"
            );
        }
    }
}

/// Split a field/variant body on top-level commas. Group tokens are atomic
/// in a `TokenStream`, so only angle brackets (`Vec<(A, B)>`) need depth
/// tracking.
fn split_top_level(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tok in body {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn count_top_level_fields(body: TokenStream) -> usize {
    split_top_level(body).len()
}

/// Extract fields from a named-field body: for each comma-separated
/// segment, the identifier immediately before the first top-level `:`
/// (skipping attributes and visibility), plus whether any attribute is
/// `#[serde(default)]`.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    split_top_level(body)
        .into_iter()
        .map(|segment| {
            let mut name = None;
            let mut default = false;
            let mut toks = segment.into_iter().peekable();
            while let Some(tok) = toks.next() {
                match tok {
                    TokenTree::Punct(p) if p.as_char() == '#' => {
                        if let Some(TokenTree::Group(g)) = toks.next() {
                            default |= attr_is_serde_default(&g.stream());
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ':' => break,
                    TokenTree::Ident(id) if id.to_string() == "pub" => {
                        if let Some(TokenTree::Group(g)) = toks.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                toks.next();
                            }
                        }
                    }
                    TokenTree::Ident(id) => name = Some(id.to_string()),
                    _ => {}
                }
            }
            Field {
                name: name.expect("serde_derive: field without a name"),
                default,
            }
        })
        .collect()
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    split_top_level(body)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|segment| {
            let mut name = None;
            let mut fields = VariantFields::Unit;
            let mut toks = segment.into_iter().peekable();
            while let Some(tok) = toks.next() {
                match tok {
                    TokenTree::Punct(p) if p.as_char() == '#' => {
                        toks.next();
                    }
                    TokenTree::Punct(p) if p.as_char() == '=' => {
                        // Explicit discriminant: skip the remaining tokens.
                        for _ in toks.by_ref() {}
                    }
                    TokenTree::Ident(id) => name = Some(id.to_string()),
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        fields = VariantFields::Tuple(count_top_level_fields(g.stream()));
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        fields = VariantFields::Named(
                            parse_named_fields(g.stream())
                                .into_iter()
                                .map(|f| f.name)
                                .collect(),
                        );
                    }
                    _ => {}
                }
            }
            Variant {
                name: name.expect("serde_derive: enum variant without a name"),
                fields,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Code generation (string-built; parsed back into a TokenStream)
// ---------------------------------------------------------------------

fn gen_serialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::NamedStruct(fields) if def.transparent && fields.len() == 1 => {
            format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
        }
        Kind::NamedStruct(fields) => {
            let mut s = String::from("{ let mut m = ::serde::Map::new();\n");
            for f in fields {
                let f = &f.name;
                s.push_str(&format!(
                    "m.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m) }");
            s
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\
                         ::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{ \
                             let mut m = ::serde::Map::new(); \
                             m.insert(::std::string::String::from(\"{vname}\"), {inner}); \
                             ::serde::Value::Object(m) }},\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from("{ let mut fm = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        inner.push_str("::serde::Value::Object(fm) }");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{ \
                             let mut m = ::serde::Map::new(); \
                             m.insert(::std::string::String::from(\"{vname}\"), {inner}); \
                             ::serde::Value::Object(m) }},\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| \
                 ::serde::DeError::expected(\"an array for `{name}`\", v))?;\n\
                 if arr.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::custom(\"wrong tuple arity for `{name}`\")); }}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::NamedStruct(fields) if def.transparent && fields.len() == 1 => format!(
            "::std::result::Result::Ok({name} {{ {f}: ::serde::Deserialize::from_value(v)? }})",
            f = fields[0].name
        ),
        Kind::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    let helper = if f.default { "de_field_or_default" } else { "de_field" };
                    format!("{f}: ::serde::{helper}(m, \"{f}\")?", f = f.name)
                })
                .collect();
            format!(
                "let m = v.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"an object for `{name}`\", v))?;\n\
                 ::std::result::Result::Ok({name} {{ {items} }})",
                items = items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantFields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => return ::std::result::Result::Ok(\
                         {name}::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let arr = inner.as_array().ok_or_else(|| \
                             ::serde::DeError::expected(\"an array for `{name}::{vname}`\", inner))?;\n\
                             if arr.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::custom(\"wrong arity for `{name}::{vname}`\")); }}\n\
                             return ::std::result::Result::Ok({name}::{vname}({items}));\n}}\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::de_field(fm, \"{f}\")?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let fm = inner.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"an object for `{name}::{vname}`\", inner))?;\n\
                             return ::std::result::Result::Ok({name}::{vname} {{ {items} }});\n}}\n",
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                     match s {{\n{unit_arms} _ => {{}} }}\n\
                 }}\n\
                 if let ::std::option::Option::Some(m) = v.as_object() {{\n\
                     if m.len() == 1 {{\n\
                         let (tag, inner) = m.iter().next().unwrap();\n\
                         match tag.as_str() {{\n{tagged_arms} _ => {{}} }}\n\
                     }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"invalid value for enum `{name}`: {{}}\", v.kind_name())))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
