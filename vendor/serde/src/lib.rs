//! Offline stand-in for `serde`.
//!
//! This workspace builds hermetically, so the subset of serde it uses is
//! reimplemented here: [`Serialize`]/[`Deserialize`] traits driven through
//! a JSON-shaped [`Value`] tree, derive macros (re-exported from the
//! companion `serde_derive` proc-macro crate), and impls for the std types
//! the workspace serializes. `serde_json` (also vendored) re-exports the
//! tree types and adds the text format.
//!
//! Two deliberate simplifications relative to real serde:
//!
//! * Serialization is self-describing via [`Value`] rather than
//!   format-generic via `Serializer` visitors — every consumer in this
//!   workspace targets JSON.
//! * `HashMap`/`HashSet` serialize in **sorted key order**, so every
//!   serialization of equal data is byte-identical. (Real serde_json
//!   leaks hasher iteration order; determinism is a core requirement of
//!   this reproduction, see `tests/determinism.rs`.)

#![forbid(unsafe_code)]

mod impls;
mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Error produced when deserializing from a [`Value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    /// Standard "expected X, found Y" message.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind_name()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be serialized into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a JSON-shaped value.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a JSON-shaped value.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialize one field of a JSON object.
///
/// A missing field is presented to the field type as [`Value::Null`], so
/// `Option<T>` fields tolerate omission while all other types produce a
/// descriptive error (the behavior derive code relies on).
pub fn de_field<T: Deserialize>(map: &Map, name: &str) -> Result<T, DeError> {
    match map.get(name) {
        Some(v) => T::from_value(v)
            .map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError(format!("missing field `{name}`"))),
    }
}

/// Deserialize one `#[serde(default)]` field of a JSON object: a missing
/// (or null) field falls back to `Default::default()` instead of erroring,
/// which is how new fields stay readable from data serialized before they
/// existed.
pub fn de_field_or_default<T: Deserialize + Default>(
    map: &Map,
    name: &str,
) -> Result<T, DeError> {
    match map.get(name) {
        Some(v) if !v.is_null() => {
            T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {e}")))
        }
        _ => Ok(T::default()),
    }
}
