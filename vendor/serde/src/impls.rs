//! `Serialize`/`Deserialize` impls for std types used by the workspace.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

use crate::value::{Map, Number, Value};
use crate::{DeError, Deserialize, Serialize};

// ---------------------------------------------------------------------
// Value itself (lets callers round-trip serde_json::Value transparently)
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("a boolean", v))
    }
}

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("an unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

uint_impl!(u8, u16, u32, u64, usize);

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::U64(n as u64))
                } else {
                    Value::Number(Number::I64(n))
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("an integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("a number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("a one-char string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!("expected a one-char string, got {s:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("a string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(())
        } else {
            Err(DeError::expected("null", v))
        }
    }
}

// ---------------------------------------------------------------------
// Pointers and wrappers
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

// ---------------------------------------------------------------------
// Sequences
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::expected("an array", v))?;
        if arr.len() != N {
            return Err(DeError::custom(format!(
                "expected an array of {N}, found {} elements",
                arr.len()
            )));
        }
        let items: Vec<T> = arr.iter().map(T::from_value).collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::expected("an array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

macro_rules! tuple_impl {
    ($len:literal: $(($t:ident, $idx:tt)),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::expected("an array", v))?;
                if arr.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected an array of {}, found {} elements", $len, arr.len()
                    )));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    };
}

tuple_impl!(1: (A, 0));
tuple_impl!(2: (A, 0), (B, 1));
tuple_impl!(3: (A, 0), (B, 1), (C, 2));
tuple_impl!(4: (A, 0), (B, 1), (C, 2), (D, 3));
tuple_impl!(5: (A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
tuple_impl!(6: (A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));

// ---------------------------------------------------------------------
// Maps and sets
// ---------------------------------------------------------------------

/// Serialize a map key: JSON object keys are strings, so the key's value
/// form must be a string or a number (matching serde_json's rules).
pub(crate) fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        Value::Number(n) => n.to_string(),
        other => panic!(
            "map keys must serialize to strings or numbers, got {}",
            other.kind_name()
        ),
    }
}

/// Deserialize a map key from its string form: tries the string shape
/// first, then re-parses numeric keys.
pub(crate) fn key_from_string<K: Deserialize>(key: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::String(key.to_owned())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        return K::from_value(&Value::Number(Number::U64(n)));
    }
    if let Ok(n) = key.parse::<i64>() {
        return K::from_value(&Value::Number(Number::I64(n)));
    }
    if let Ok(n) = key.parse::<f64>() {
        return K::from_value(&Value::Number(Number::F64(n)));
    }
    Err(DeError::custom(format!("invalid map key {key:?}")))
}

fn map_to_value<'a, K, V, I>(entries: I, sort: bool) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut m: Map = entries
        .map(|(k, v)| (key_to_string(k), v.to_value()))
        .collect();
    if sort {
        m.sort_keys();
    }
    Value::Object(m)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Already in key order.
        map_to_value(self.iter(), false)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::expected("an object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output (see crate docs).
        map_to_value(self.iter(), true)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::expected("an object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::expected("an array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize + Ord, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::expected("an array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("zeta".to_string(), 1u32);
        m.insert("alpha".to_string(), 2u32);
        let v = m.to_value();
        let obj = v.as_object().unwrap();
        let keys: Vec<&String> = obj.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["alpha", "zeta"]);
        let back: HashMap<String, u32> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), 3u32.to_value());
    }

    #[test]
    fn tuple_roundtrip() {
        let t = ("a".to_string(), 5u64, true);
        let v = t.to_value();
        let back: (String, u64, bool) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn signed_integers() {
        let v = (-5i64).to_value();
        assert_eq!(i64::from_value(&v).unwrap(), -5);
        let v = 5i32.to_value();
        assert_eq!(v.as_u64(), Some(5));
    }
}
