//! The JSON-shaped value tree shared by `serde` and `serde_json`.

/// A JSON number: integer or floating point.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers, like serde_json).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(n) => n,
        }
    }

    /// The value as `u64`, when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                Some(n as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as `i64`, when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(n) if n.fract() == 0.0 && n >= i64::MIN as f64 && n <= i64::MAX as f64 => {
                Some(n as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Number::U64(n) => write!(f, "{n}"),
            Number::I64(n) => write!(f, "{n}"),
            Number::F64(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no NaN/Infinity; serde_json writes null.
                    f.write_str("null")
                }
            }
        }
    }
}

/// An order-preserving JSON object (string keys → values).
///
/// Insertion order is kept, so parsed documents re-serialize in their
/// original key order; lookups are linear, which is fine at the small
/// object sizes this workspace produces (structs have fixed field counts).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// New empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert a key (replacing any existing value under it).
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Sort entries by key (used to canonicalize hash-map serialization).
    pub fn sort_keys(&mut self) {
        self.entries.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Human-readable kind name used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }

    /// Borrow as an object, when it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, when it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `f64`, when it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}
