//! Offline stand-in for the `rand` crate.
//!
//! This workspace runs in a hermetic build environment with no registry
//! access, so the handful of `rand` items it actually uses are provided
//! here with identical signatures. The workspace's own [`RngCore`]
//! implementor (`cc_util::DetRng`) carries all the real generator logic;
//! this crate is only the trait vocabulary.

#![forbid(unsafe_code)]

/// Error type reported by fallible RNG operations.
///
/// The deterministic generators in this workspace never fail, so this is
/// only ever constructed in type position.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RNG error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fill `dest` with random bytes, reporting failure.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}
