//! The full study: reproduce every table and figure of the paper's
//! evaluation section on the simulated web, and print them side by side
//! with the paper's published values.
//!
//! ```sh
//! cargo run --release --example full_study              # medium scale
//! cargo run --release --example full_study -- --paper-scale
//! ```
//!
//! `--paper-scale` uses 10,000 seeder domains as in §3.1 (takes a few
//! minutes); the default uses 1,000 seeders and finishes in seconds.

use cc_crawler::{DriverMode, StudyConfig};
use cc_web::WebConfig;
use crumbcruncher::Study;

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");

    let web_config = if paper_scale {
        WebConfig::paper_scale()
    } else {
        WebConfig {
            n_sites: 2_000,
            n_seeders: 1_000,
            ..WebConfig::default()
        }
    };
    let config = StudyConfig::builder()
        .web(web_config)
        .seed(0xC0FFEE)
        .mode(DriverMode::PersistentWorkers)
        .build()
        .expect("static configuration is valid");

    eprintln!(
        "Generating a {}-site web and crawling {} seeders with 4 synchronized crawlers…",
        config.web.n_sites, config.web.n_seeders
    );
    let t0 = std::time::Instant::now();
    let study = Study::from_config(&config).expect("study runs");
    eprintln!("…done in {:.1?}\n", t0.elapsed());

    let report = study.report();
    println!("{}", report.render());

    println!("== Paper vs. measured (shape comparison) ==");
    let rows: Vec<(&str, String, String)> = vec![
        (
            "UID smuggling rate",
            "8.11%".into(),
            format!("{:.2}%", report.summary.smuggling_rate().percent()),
        ),
        (
            "bounce-only rate",
            "2.7%".into(),
            format!("{:.2}%", report.bounce.bounce_rate().percent()),
        ),
        (
            "navigational tracking",
            "10.8%".into(),
            format!(
                "{:.2}%",
                report.bounce.navigational_tracking_rate().percent()
            ),
        ),
        (
            "sync failures",
            "7.6%".into(),
            format!("{:.1}%", report.failures.sync_failure_rate() * 100.0),
        ),
        (
            "divergence",
            "1.8%".into(),
            format!("{:.1}%", report.failures.divergence_rate() * 100.0),
        ),
        (
            "connect failures",
            "3.3%".into(),
            format!("{:.1}%", report.failures.connect_failure_rate() * 100.0),
        ),
        (
            "manual removals",
            "577/1581 (36%)".into(),
            format!(
                "{}/{} ({:.0}%)",
                report.manual_removed,
                report.manual_entered,
                100.0 * report.manual_removed as f64 / report.manual_entered.max(1) as f64
            ),
        ),
        (
            "fp-site share of smuggling",
            "13%".into(),
            format!("{:.0}%", report.fingerprint.fp_share().percent()),
        ),
        (
            "multi-crawler: fp vs rest",
            "44% vs 52%".into(),
            format!(
                "{:.0}% vs {:.0}%",
                report.fingerprint.fp_multi_rate() * 100.0,
                report.fingerprint.non_fp_multi_rate() * 100.0
            ),
        ),
    ];
    println!("  {:<28} {:>16} {:>16}", "metric", "paper", "measured");
    for (metric, paper, measured) in rows {
        println!("  {metric:<28} {paper:>16} {measured:>16}");
    }

    // Lifetime ablation (§3.7.1): what lifetime-threshold baselines lose.
    let d90 = cc_core::baselines::lifetime_ablation(&study.output.findings, 90);
    let d30 = cc_core::baselines::lifetime_ablation(&study.output.findings, 30);
    println!("\n== Lifetime baseline ablation (§3.7.1) ==");
    println!(
        "  <90-day lifetimes: paper 16%, measured {:.0}% ({}/{})",
        d90.missed_fraction() * 100.0,
        d90.discarded_by_threshold,
        d90.with_lifetime
    );
    println!(
        "  <30-day lifetimes: paper  9%, measured {:.0}% ({}/{})",
        d30.missed_fraction() * 100.0,
        d30.discarded_by_threshold,
        d30.with_lifetime
    );

    let two = cc_core::baselines::two_crawler_ablation(&study.output.findings);
    println!(
        "  A two-crawler design keeps {}/{} UIDs (misses {:.0}%).",
        two.two_crawler_uids,
        two.four_crawler_uids,
        two.missed_fraction() * 100.0
    );

    let score = study.truth_score();
    println!(
        "\n== Ground truth (not available to the paper) ==\n  precision {:.2}  recall {:.2}  \
         fingerprint-based UIDs missed: {}",
        score.precision(),
        score.recall(),
        score.fingerprint_misses
    );
}
