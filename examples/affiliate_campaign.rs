//! A hand-built affiliate-marketing scenario: follow one UID hop by hop.
//!
//! §5.3 of the paper describes a navigation path that "started at a
//! coupon-collecting website, passed through a partner site owned by the
//! same entity, then passed through four different trackers before
//! arriving at the final destination (a retailer). Each of these trackers
//! had the ability to record information about the ad the user had
//! clicked." This example rebuilds that path with the affiliate pair that
//! always chains together (the awin1.com → zenaps.com pattern) and prints
//! the UID's journey.
//!
//! ```sh
//! cargo run --release --example affiliate_campaign
//! ```

use cc_browser::{Browser, Profile, Storage, StoragePolicy};
use cc_net::{FaultModel, SimClock, SimDuration};
use cc_url::Url;
use cc_util::DetRng;
use cc_web::campaign::{Campaign, CampaignId, UidSpan};
use cc_web::entity::{OrgId, Organization};
use cc_web::site::{AdSlot, LinkDecoration, Page, Site, SiteId, StaticLink};
use cc_web::tracker::{Tracker, TrackerId, TrackerKind};
use cc_web::{ClickTarget, ElementKind, SimWeb};

fn tracker(id: u32, name: &str, org: OrgId, fqdn: &str, param: &str) -> Tracker {
    Tracker {
        id: TrackerId(id),
        name: name.into(),
        org,
        fqdn: fqdn.into(),
        kind: TrackerKind::DedicatedSmuggler,
        uid_param: param.into(),
        fingerprints: false,
        uid_lifetime: SimDuration::from_days(365),
        uses_local_storage: false,
        in_disconnect: false,
        in_easylist: false,
        benign_role_share: 0.0,
        js_redirect: false,
        sync_partners: Vec::new(),
    }
}

fn page(links: Vec<StaticLink>, ad_slots: Vec<AdSlot>) -> Page {
    Page {
        path: "/".into(),
        links,
        ad_slots,
        element_churn: 0.0,
        volatile: false,
    }
}

fn site(id: u32, domain: &str, org: OrgId, category: cc_web::Category, pages: Vec<Page>) -> Site {
    Site {
        id: SiteId(id),
        domain: domain.into(),
        org,
        category,
        rank: id as usize,
        pages,
        embedded_trackers: vec![],
        sets_own_uid: true,
        sets_session_cookie: false,
        fingerprints: false,
        login_needs_uid: false,
        consent_banner: false,
    }
}

fn main() {
    println!("Affiliate campaign walkthrough (the §5.3 coupon-site path)");
    println!("===========================================================\n");

    // Organizations: the coupon publisher family, the retailer, and the
    // affiliate network that owns BOTH chained redirector domains.
    let mut coupon_org = Organization::new(OrgId(0), "CouponFollow-like");
    coupon_org.add_domain("couponfollow-like.com");
    coupon_org.add_domain("coupon-partner.com");
    let mut retail_org = Organization::new(OrgId(1), "MegaRetailer");
    retail_org.add_domain("megaretailer.com");
    let mut awin_org = Organization::new(OrgId(2), "AWIN-like");
    awin_org.add_domain("awn1-like.com");
    awin_org.add_domain("zenps-like.com");
    let mut iq_org = Organization::new(OrgId(3), "VisualIQ-like");
    iq_org.add_domain("myvsiq.net");
    let mut ken_org = Organization::new(OrgId(4), "Kenshoo-like");
    ken_org.add_domain("xg4k.net");

    // The four trackers of the chain.
    let t_awin = tracker(0, "awin1-like", OrgId(2), "go.awn1-like.com", "awc");
    let t_zenaps = tracker(1, "zenaps-like", OrgId(2), "r.zenps-like.com", "zv");
    let t_viq = tracker(2, "visualiq-like", OrgId(3), "t.myvsiq.net", "vid");
    let t_ken = tracker(3, "kenshoo-like", OrgId(4), "x1.xg4k.net", "kwid");

    // One campaign: the coupon ad for the retailer, UID across the full
    // path.
    let campaign = Campaign {
        id: CampaignId(0),
        owner: TrackerId(0),
        hops: vec![TrackerId(0), TrackerId(1), TrackerId(2), TrackerId(3)],
        destination: SiteId(2),
        landing_path: "/sale".into(),
        span: UidSpan::Full,
        word_params: vec![("cmp".into(), "spring_coupon_deal".into())],
        add_timestamp: true,
        add_session_id: false,
    };

    // Sites: coupon site links to its partner; the partner hosts the ad.
    let coupon = site(
        0,
        "couponfollow-like.com",
        OrgId(0),
        cc_web::Category::Shopping,
        vec![page(
            vec![StaticLink {
                to: SiteId(1),
                to_path: "/".into(),
                via_shim: None,
                decoration: LinkDecoration::SiteOwnUid,
            }],
            vec![],
        )],
    );
    let partner = site(
        1,
        "coupon-partner.com",
        OrgId(0),
        cc_web::Category::Shopping,
        vec![page(
            vec![],
            vec![AdSlot {
                slot_id: 1,
                campaigns: vec![CampaignId(0)],
            }],
        )],
    );
    let retailer = site(
        2,
        "megaretailer.com",
        OrgId(1),
        cc_web::Category::Shopping,
        vec![page(vec![], vec![])],
    );
    let mut retailer = retailer;
    retailer.embedded_trackers.push(TrackerId(0)); // collection script

    let web = SimWeb::assemble(
        vec![coupon, partner, retailer],
        vec![t_awin, t_zenaps, t_viq, t_ken],
        vec![coupon_org, retail_org, awin_org, iq_org, ken_org],
        vec![campaign],
        vec![SiteId(0)],
    );

    // One user browses: coupon site -> partner -> clicks the ad.
    let mut browser = Browser::new(
        &web,
        Profile::safari("user", 0xF1, DetRng::new(42)),
        Storage::new(StoragePolicy::Partitioned),
        SimClock::new(),
        FaultModel::none(DetRng::new(1)),
    );

    let start = Url::parse("https://www.couponfollow-like.com/").unwrap();
    let out = browser.navigate(start).expect("load coupon site");
    println!("1. User lands on {}", out.final_url);

    // Click the decorated family link to the partner site.
    let family_link = out.page.elements[0].clone();
    let partner_url = match &family_link.target {
        ClickTarget::Navigate(u) => u.clone(),
        ClickTarget::Inert => unreachable!(),
    };
    println!(
        "2. Clicks the partner link — decorated with the site's own UID: {}",
        partner_url
    );
    let out = browser.navigate(partner_url).expect("load partner");

    // Click the affiliate ad.
    let ad = out
        .page
        .elements
        .iter()
        .find(|e| e.kind == ElementKind::Iframe)
        .expect("partner hosts the ad");
    let click_url = match &ad.target {
        ClickTarget::Navigate(u) => u.clone(),
        ClickTarget::Inert => unreachable!(),
    };
    println!("3. Clicks the affiliate ad. The UID's journey:");
    let out = browser.navigate(click_url).expect("follow the chain");
    for (i, hop) in out.hops.iter().enumerate() {
        let uid = hop
            .query()
            .iter()
            .find(|(k, _)| k == "awc")
            .map(|(_, v)| v.as_str())
            .unwrap_or("-");
        println!("   hop {i}: {:<28} awc={}", hop.host.as_str(), uid);
    }
    println!("4. Lands on {}", out.final_url);

    // What did the trackers keep? Each redirector banked first-party state.
    println!("\nFirst-party storage banked along the way:");
    for domain in [
        "awn1-like.com",
        "zenps-like.com",
        "myvsiq.net",
        "xg4k.net",
        "megaretailer.com",
    ] {
        let snap = browser.snapshot(domain);
        for (name, value, _) in &snap.cookies {
            println!(
                "   {domain:<22} {name} = {}…",
                &value[..value.len().min(24)]
            );
        }
    }

    // Pipeline view: run the analysis over this one navigation.
    println!(
        "\nThe affiliate pair {} -> {} chained exactly as §5.3 describes: both domains are \
         owned by one organization, synchronizing UIDs across its acquired infrastructure.",
        out.hops
            .first()
            .map(|h| h.host.as_str().to_string())
            .unwrap_or_default(),
        out.hops
            .get(1)
            .map(|h| h.host.as_str().to_string())
            .unwrap_or_default()
    );
}
