//! Evaluate the §7 countermeasures against a crawl: blocklist coverage,
//! query stripping (with the measurement-feedback loop of §7.2),
//! debouncing, the ITP-style classifier, and the §6 breakage experiment.
//!
//! ```sh
//! cargo run --release --example defense_eval
//! ```

use cc_defense::breakage::run_experiment;
use cc_defense::eval::evaluate_defenses;
use cc_defense::itp::ItpClassifier;
use cc_url::Url;
use crumbcruncher::Study;

fn main() {
    println!("Defense evaluation (§7 of the paper)");
    println!("====================================\n");

    let study = Study::medium(0xDEF);
    let summary = cc_analysis::summarize(&study.output);
    println!(
        "Crawl: {} unique URL paths, smuggling on {}.\n",
        summary.unique_url_paths,
        summary.smuggling_rate()
    );

    // ---- Blocklists and rewriting defenses.
    let eval = evaluate_defenses(&study.web, &study.output);
    println!(
        "Disconnect list covers {} of measured dedicated smugglers",
        eval.disconnect_coverage
    );
    println!("  (the paper found 41% of dedicated smugglers MISSING from the list)");
    println!(
        "EasyList blocks {} of smuggling URL paths (paper: ~6%)",
        eval.easylist_coverage
    );
    println!(
        "Query stripping, well-known params:   {}",
        eval.strip_well_known
    );
    println!(
        "Query stripping + measurement feedback: {}",
        eval.strip_with_feedback
    );
    println!("  (§7.2: CrumbCruncher can continuously update the blocklists)");
    println!(
        "Brave-style debouncing prevents:      {}\n",
        eval.debounce_prevented
    );

    // ---- ITP-style classification over the same crawl.
    let mut itp = ItpClassifier::new();
    for p in &study.output.paths {
        itp.observe_path(p);
    }
    println!(
        "Safari-ITP-style heuristic classified {} redirector domains as smugglers.",
        itp.len()
    );

    // ---- The §6 breakage experiment: strip the UID param from pages that
    // received one and see what breaks.
    let urls: Vec<Url> = study
        .output
        .findings
        .iter()
        .filter_map(|f| {
            let dest = f.destination.as_deref()?;
            Url::parse(&format!("https://www.{dest}/?{}=x", f.name)).ok()
        })
        .take(10)
        .collect();
    let pages: Vec<(&Url, &str)> = urls.iter().map(|u| (u, "uid")).collect();
    let n = pages.len();
    let (_, report) = run_experiment(&study.web, pages);
    println!(
        "\nBreakage experiment on {} pages (paper: 7/10 unchanged, 1 minor, 2 significant):",
        n
    );
    println!(
        "  unchanged: {}   minor visual: {}   significant: {}",
        report.unchanged, report.minor, report.significant
    );
}
