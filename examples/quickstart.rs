//! Quickstart: generate a small synthetic web, crawl it with the four
//! synchronized crawlers, run the CrumbCruncher pipeline, and print what
//! was found.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use crumbcruncher::Study;

fn main() {
    println!("CrumbCruncher-RS quickstart");
    println!("===========================\n");

    // A small world: 60 sites, 15 ten-step walks, four crawlers
    // (Safari-1, Safari-2, Chrome-3 in parallel + the trailing Safari-1R).
    let study = Study::quick(2022);

    let summary = cc_analysis::summarize(&study.output);
    println!("Crawled {} unique URL paths.", summary.unique_url_paths);
    println!(
        "UID smuggling found on {} — the paper measured 8.11% in the wild.\n",
        summary.smuggling_rate()
    );

    println!("First few confirmed smuggling cases:");
    for f in study.output.findings.iter().take(5) {
        let value = f
            .values
            .values()
            .flatten()
            .next()
            .map(String::as_str)
            .unwrap_or("?");
        println!(
            "  [{}] {} -> {}  param `{}` = {}…",
            f.portion().label(),
            f.origin,
            f.destination.as_deref().unwrap_or("(none)"),
            f.name,
            &value[..value.len().min(12)],
        );
        if !f.redirectors.is_empty() {
            println!("      via redirectors: {}", f.redirectors.join(" -> "));
        }
    }

    // The simulator's superpower: ground truth. Every minted token is
    // labeled, so the classifier can be scored.
    let score = study.truth_score();
    println!(
        "\nAgainst ground truth: precision {:.2}, recall {:.2} ({} fingerprint-based UIDs \
         missed by design — see §3.5 of the paper).",
        score.precision(),
        score.recall(),
        score.fingerprint_misses
    );
}
