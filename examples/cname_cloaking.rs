//! CNAME-cloaking detection (the §8.3 extension).
//!
//! Trackers can dodge partitioned storage without touching navigation at
//! all: alias a first-party subdomain (`metrics.news-site.com`) to their
//! own canonical name via DNS CNAME records, and the browser will attach
//! *first-party* cookies to what is really a third-party endpoint. This
//! example installs cloaking aliases into the simulated DNS, crawls, and
//! shows the analysis flagging them.
//!
//! ```sh
//! cargo run --release --example cname_cloaking
//! ```

use cc_analysis::cname::detect_cloaking;
use cc_crawler::{CrawlConfig, Walker};
use cc_web::{generate, WebConfig};

fn main() {
    println!("CNAME cloaking detection (§8.3 extension)");
    println!("=========================================\n");

    let mut web = generate(&WebConfig::small());

    // Install cloaking aliases: popular sites grow a `metrics.` subdomain
    // that is really an analytics tracker in disguise — and the tracker's
    // scripts on those sites beacon through the first-party-looking alias
    // (that's the entire point of CNAME cloaking).
    let analytics_ids: Vec<cc_web::TrackerId> = web
        .trackers
        .iter()
        .filter(|t| t.kind == cc_web::TrackerKind::Analytics)
        .map(|t| t.id)
        .collect();
    // One distinct tracker per cloaked site (a tracker has one canonical
    // name; re-aliasing it twice would chain the aliases).
    let mut installed = Vec::new();
    for (site, &tid) in web.sites.iter_mut().zip(analytics_ids.iter()) {
        let alias = format!("metrics.{}", site.domain);
        if !site.embedded_trackers.contains(&tid) {
            site.embedded_trackers.push(tid);
        }
        installed.push((alias, tid));
    }
    let mut installed_named = Vec::new();
    for (alias, tid) in installed {
        let canonical = web.trackers[tid.0 as usize].fqdn.clone();
        web.dns.register_cname(&alias, &canonical);
        // The tracker now serves those sites through the cloaked name.
        web.trackers[tid.0 as usize].fqdn = alias.clone();
        installed_named.push((alias, canonical));
    }
    let installed = installed_named;
    println!(
        "Installed {} cloaking aliases into the simulated DNS:",
        installed.len()
    );
    for (alias, target) in &installed {
        println!("   {alias} CNAME {target}");
    }

    // Crawl as usual.
    let ds = Walker::new(
        &web,
        CrawlConfig {
            seed: 99,
            steps_per_walk: 5,
            max_walks: Some(10),
            connect_failure_rate: 0.0,
            ..CrawlConfig::default()
        },
    )
    .crawl();
    let out = cc_core::run_pipeline(&ds);

    // The DNS-level sweep finds every cloaked name in the zone, whether or
    // not the crawl happened to touch it.
    let zone_wide = web.dns.cloaked_names();
    println!(
        "\nDNS-zone sweep: {} cloaked names (all {} installed aliases found).",
        zone_wide.len(),
        installed.len()
    );

    // The crawl-scoped detector reports only what the measurement touched.
    let seen = detect_cloaking(&web, &ds, &out);
    println!(
        "Crawl-scoped detection: {} cloaked hosts contacted during the crawl.",
        seen.len()
    );
    for c in &seen {
        println!(
            "   {} is really {} (owner domain {})",
            c.host, c.canonical, c.canonical_domain
        );
    }

    println!(
        "\nWhy it matters: cookies set through `metrics.<site>` are first-party in the\n\
         browser's eyes — partitioned storage does not isolate them, and the paper's\n\
         related work (Dimova et al., Ren et al.) shows session cookies leaking through\n\
         exactly this channel."
    );
}
