//! End-to-end observer tests over real loopback sockets: every endpoint,
//! the response-hygiene headers (explicit Content-Type, no-store), the
//! missing-source 404s, and the sampler → ring → `/timeseries` loop.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use cc_http::{Method, Request, Response, StatusCode};
use cc_obs::{Observer, ObsSources, Sampler, SamplerConfig};
use cc_telemetry::{parse_exposition, Collector, SnapshotRing};
use cc_url::Url;
use cc_util::{ProgressCounters, ProgressSnapshot};

/// One request per connection, matching the observer's `Connection:
/// close` behavior.
fn get(addr: std::net::SocketAddr, path: &str) -> Response {
    request(addr, path, Method::Get)
}

fn request(addr: std::net::SocketAddr, path: &str, method: Method) -> Response {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut req = Request::navigation(Url::parse(&format!("http://{addr}{path}")).unwrap());
    req.method = method;
    req.write_to(&mut writer).unwrap();
    Response::read_from(&mut reader).unwrap()
}

fn body_str(resp: &Response) -> String {
    String::from_utf8(resp.body.wire_bytes().to_vec()).unwrap()
}

fn full_sources() -> (ObsSources, Arc<Collector>, Arc<ProgressCounters>, Arc<SnapshotRing>) {
    let collector = Arc::new(Collector::default());
    let progress = Arc::new(ProgressCounters::new(2));
    let ring = Arc::new(SnapshotRing::new(64));
    let sources = ObsSources {
        collector: Some(Arc::clone(&collector)),
        progress: Some(Arc::clone(&progress)),
        ring: Some(Arc::clone(&ring)),
        epoch: None,
    };
    (sources, collector, progress, ring)
}

#[test]
fn observer_serves_every_endpoint_with_hygiene_headers() {
    let (sources, collector, progress, ring) = full_sources();
    collector.add_counter("crawl.walks", 7);
    collector.set_gauge("serve.inflight", 3.0);
    collector.observe_ms("serve.latency", 12.5);
    progress.record_walk(0, 4);
    ring.push(cc_obs::take_sample(0.5, Some(&collector), Some(&progress)));

    let obs = Observer::start("127.0.0.1:0", sources).unwrap();
    let addr = obs.addr();

    for path in ["/healthz", "/progress", "/metrics", "/timeseries"] {
        let resp = get(addr, path);
        assert_eq!(resp.status, StatusCode::OK, "{path}");
        assert_eq!(
            resp.headers.get("content-type"),
            Some("application/json"),
            "{path}"
        );
        assert_eq!(resp.headers.get("cache-control"), Some("no-store"), "{path}");
        assert_eq!(resp.headers.get("connection"), Some("close"), "{path}");
    }

    let prom = get(addr, "/metrics.prom");
    assert_eq!(prom.status, StatusCode::OK);
    assert_eq!(
        prom.headers.get("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8")
    );
    assert_eq!(prom.headers.get("cache-control"), Some("no-store"));
    let stats = parse_exposition(&body_str(&prom)).expect("valid exposition");
    assert!(stats.families > 0 && stats.samples > 0);

    assert_eq!(obs.requests_served(), 5);
    obs.shutdown();
}

#[test]
fn progress_endpoint_tracks_live_counters() {
    let (sources, _collector, progress, _ring) = full_sources();
    let obs = Observer::start("127.0.0.1:0", sources).unwrap();

    let before: ProgressSnapshot = serde_json::from_str(&body_str(&get(obs.addr(), "/progress"))).unwrap();
    assert_eq!(before.walks, 0);

    progress.record_walk(0, 5);
    progress.record_walk(1, 3);

    let after: ProgressSnapshot = serde_json::from_str(&body_str(&get(obs.addr(), "/progress"))).unwrap();
    assert_eq!(after.walks, 2);
    assert_eq!(after.steps, 8);
    assert_eq!(after.per_worker.len(), 2);
    assert!(after.walks >= before.walks && after.steps >= before.steps);
    obs.shutdown();
}

#[test]
fn timeseries_reflects_ring_contents() {
    let (sources, collector, progress, ring) = full_sources();
    progress.record_walk(0, 2);
    collector.set_gauge("serve.inflight", 9.0);
    for i in 0..3 {
        ring.push(cc_obs::take_sample(i as f64, Some(&collector), Some(&progress)));
    }
    let obs = Observer::start("127.0.0.1:0", sources).unwrap();
    let body = body_str(&get(obs.addr(), "/timeseries"));
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    let obj = v.as_object().unwrap();
    assert_eq!(obj.get("schema").and_then(|s| s.as_str()), Some("cc-obs/v1"));
    let samples = obj.get("samples").and_then(|s| s.as_array()).unwrap();
    assert_eq!(samples.len(), 3);
    let last = samples[2].as_object().unwrap();
    assert_eq!(last.get("inflight").and_then(|x| x.as_f64()), Some(9.0));
    assert_eq!(last.get("walks").and_then(|x| x.as_f64()), Some(1.0));
    obs.shutdown();
}

#[test]
fn missing_sources_are_404_not_500() {
    let obs = Observer::start("127.0.0.1:0", ObsSources::default()).unwrap();
    for path in ["/progress", "/metrics", "/metrics.prom", "/timeseries"] {
        let resp = get(obs.addr(), path);
        assert_eq!(resp.status, StatusCode::NOT_FOUND, "{path}");
        assert!(body_str(&resp).contains("no"), "{path}");
    }
    // Liveness works without any source.
    assert_eq!(get(obs.addr(), "/healthz").status, StatusCode::OK);
    obs.shutdown();
}

#[test]
fn unknown_path_is_404_and_non_get_is_405() {
    let (sources, ..) = full_sources();
    let obs = Observer::start("127.0.0.1:0", sources).unwrap();
    let resp = get(obs.addr(), "/nope");
    assert_eq!(resp.status, StatusCode::NOT_FOUND);
    assert!(body_str(&resp).contains("/nope"));

    let resp = request(obs.addr(), "/progress", Method::Post);
    assert_eq!(resp.status, StatusCode::METHOD_NOT_ALLOWED);
    assert_eq!(resp.headers.get("content-type"), Some("application/json"));
    obs.shutdown();
}

#[test]
fn sampler_fills_the_ring_with_monotone_time() {
    let collector = Arc::new(Collector::default());
    let progress = Arc::new(ProgressCounters::new(1));
    let ring = Arc::new(SnapshotRing::new(32));
    collector.observe_ms("net.sim_latency", 4.0);
    collector.observe_ms("net.sim_latency", 8.0);
    progress.record_walk(0, 6);

    let sampler = Sampler::start(
        SamplerConfig {
            interval: Duration::from_millis(10),
            capacity: 32,
        },
        Arc::clone(&ring),
        Some(Arc::clone(&collector)),
        Some(Arc::clone(&progress)),
    );
    std::thread::sleep(Duration::from_millis(60));
    sampler.shutdown();

    let samples = ring.snapshot();
    assert!(samples.len() >= 2, "expected several samples, got {}", samples.len());
    for pair in samples.windows(2) {
        assert!(pair[1].t_s >= pair[0].t_s);
        assert!(pair[1].walks >= pair[0].walks);
    }
    let last = samples.last().unwrap();
    assert_eq!(last.walks, 1);
    assert_eq!(last.steps, 6);
    // Latency quantiles came from the crawl fallback histogram.
    assert!(last.latency_p50_ms > 0.0);
    assert!(last.latency_p99_ms >= last.latency_p50_ms);
}

#[test]
fn take_sample_without_sources_is_all_zero() {
    let s = cc_obs::take_sample(1.5, None, None);
    assert_eq!(s.t_s, 1.5);
    assert_eq!(s.walks, 0);
    assert_eq!(s.inflight, 0.0);
    assert_eq!(s.latency_p99_ms, 0.0);
}
