//! Periodic observability sampling into a bounded ring.
//!
//! The sampler is the bridge between the *instantaneous* readings the
//! observer serves (`/progress`, `/metrics`) and the *time-series* the
//! dashboard draws: every `interval` it folds one [`ObsSample`] —
//! progress totals plus rates, the serve inflight gauge, the worst
//! queue-starvation gauge, and latency quantiles — into a
//! [`SnapshotRing`], dropping the oldest sample once the retention
//! window fills.
//!
//! Like everything in this crate it is observation-only: relaxed atomic
//! loads and short collector locks, never a write into crawl state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cc_telemetry::{Collector, ObsSample, SnapshotRing};
use cc_util::ProgressCounters;

/// Gauge read as the inflight-requests series (populated by cc-serve).
const INFLIGHT_GAUGE: &str = "serve.inflight";
/// Gauge prefix whose per-worker max becomes the starvation series
/// (populated by the parallel crawl executor).
const STARVATION_PREFIX: &str = "crawl.worker.queue_starvation";
/// Histograms tried in order for the latency quantile series: a serve
/// session records the first, a crawl the second.
const LATENCY_HISTOGRAMS: [&str; 2] = ["serve.latency", "net.sim_latency"];

/// How a [`Sampler`] paces itself.
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Time between samples.
    pub interval: Duration,
    /// Ring capacity — samples retained (oldest dropped beyond this).
    pub capacity: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        // 250ms × 2400 = a 10-minute window, plenty for any test crawl
        // and bounded (~55KB of samples) for a long one.
        SamplerConfig {
            interval: Duration::from_millis(250),
            capacity: 2_400,
        }
    }
}

/// A background thread snapshotting observability signals on a fixed
/// cadence. Create with [`Sampler::start`]; the ring it fills is shared
/// up front so the observer can serve `/timeseries` concurrently.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Spawn the sampling thread. `collector` and `progress` may each be
    /// absent; the corresponding fields stay zero. One sample is taken
    /// immediately so even a sub-interval run has a data point.
    pub fn start(
        config: SamplerConfig,
        ring: Arc<SnapshotRing>,
        collector: Option<Arc<Collector>>,
        progress: Option<Arc<ProgressCounters>>,
    ) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("cc-obs-sampler".into())
                .spawn(move || {
                    let started = Instant::now();
                    loop {
                        ring.push(take_sample(
                            started.elapsed().as_secs_f64(),
                            collector.as_deref(),
                            progress.as_deref(),
                        ));
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        // Sleep in small slices so shutdown never waits a
                        // full interval.
                        let deadline = Instant::now() + config.interval;
                        while Instant::now() < deadline {
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                })
                .ok()
        };
        Sampler { stop, thread }
    }

    /// Stop the thread, take one final sample (so the dashboard's last
    /// point reflects the finished run), and join.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("running", &self.thread.is_some())
            .finish()
    }
}

/// Fold the current readings into one sample. Public so tests (and the
/// CLI's final-sample-at-exit path) can take a sample without a thread.
pub fn take_sample(
    t_s: f64,
    collector: Option<&Collector>,
    progress: Option<&ProgressCounters>,
) -> ObsSample {
    let mut sample = ObsSample {
        t_s,
        ..ObsSample::default()
    };
    if let Some(p) = progress {
        let snap = p.snapshot();
        sample.walks = snap.walks;
        sample.steps = snap.steps;
        sample.walks_per_sec = snap.walks_per_sec;
        sample.steps_per_sec = snap.steps_per_sec;
    }
    if let Some(c) = collector {
        sample.inflight = c.gauge_value(INFLIGHT_GAUGE).unwrap_or(0.0);
        sample.starvation = c.gauge_prefix_max(STARVATION_PREFIX).unwrap_or(0.0);
        for name in LATENCY_HISTOGRAMS {
            if let Some(summary) = c.histogram_summary(name) {
                if summary.count > 0 {
                    sample.latency_p50_ms = summary.p50_ms;
                    sample.latency_p99_ms = summary.p99_ms;
                    break;
                }
            }
        }
    }
    sample
}
