//! # cc-obs
//!
//! The **live observability plane** over [`cc_telemetry`]: where PR 2's
//! telemetry layer records everything and dumps one JSON blob when the
//! run ends, this crate makes the same collector *consumable while the
//! run is still going* — the capability the paper's authors lacked when
//! they diagnosed crawl failures and desynchronization from raw logs
//! after a days-long EC2 run (§3.3, §5).
//!
//! Three pieces, all strictly **observation-only** (they read atomics
//! and take short read-locks on the collector; nothing feeds back into
//! the crawl, so the byte-identity equivalence suites hold with every
//! piece enabled):
//!
//! * [`Observer`] — a background HTTP thread (`--obs-addr`) serving
//!   `/progress`, `/metrics`, `/metrics.prom`, and `/timeseries` from
//!   the live [`cc_telemetry::Collector`] and
//!   [`cc_util::ProgressCounters`] while a crawl runs;
//! * [`Sampler`] — a periodic thread folding progress + latency
//!   snapshots into a bounded [`cc_telemetry::SnapshotRing`];
//! * [`dashboard`] — renders the ring into a self-contained single-file
//!   HTML dashboard (`--dashboard-out`): inline JSON plus hand-rolled
//!   SVG time-series, no external assets, goose-graph style.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dashboard;
pub mod sampler;
pub mod server;

use std::sync::Arc;

use cc_telemetry::{Collector, SnapshotRing};
use cc_util::ProgressCounters;

pub use dashboard::render_dashboard;
pub use sampler::{take_sample, Sampler, SamplerConfig};
pub use server::{Observer, ObserverHandle};

/// The read-only handles the observability plane watches. Every field is
/// optional so the observer works for a bare serve session (collector
/// only) as well as a full crawl (collector + progress + ring).
#[derive(Clone, Default)]
pub struct ObsSources {
    /// The live telemetry collector (`/metrics`, `/metrics.prom`).
    pub collector: Option<Arc<Collector>>,
    /// The crawl's progress counters (`/progress`).
    pub progress: Option<Arc<ProgressCounters>>,
    /// The sampler's ring (`/timeseries`, and the dashboard at exit).
    pub ring: Option<Arc<SnapshotRing>>,
    /// The currently served index epoch, when the crawl is also being
    /// served live (`crawl --serve-addr`): cc-serve's `IndexHandle`
    /// shares its epoch cell so `/progress` can report how far the
    /// *served* view lags the crawl without this crate depending on
    /// cc-serve.
    pub epoch: Option<Arc<std::sync::atomic::AtomicU64>>,
}

impl std::fmt::Debug for ObsSources {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsSources")
            .field("collector", &self.collector.is_some())
            .field("progress", &self.progress.is_some())
            .field("ring", &self.ring.is_some())
            .field("epoch", &self.epoch.is_some())
            .finish()
    }
}
