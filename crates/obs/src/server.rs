//! The in-crawl HTTP observer (`--obs-addr`).
//!
//! A single background thread serving a handful of read-only endpoints
//! while a crawl (or anything else holding the telemetry session) runs:
//!
//! | endpoint | body |
//! |---|---|
//! | `/healthz` | `{"status":"ok"}` liveness |
//! | `/progress` | the live [`cc_util::ProgressSnapshot`] as JSON |
//! | `/metrics` | the collector's [`cc_telemetry::RunReport`] as JSON |
//! | `/metrics.prom` | the same report as Prometheus text exposition |
//! | `/timeseries` | the sampler ring's retained window as JSON |
//!
//! Every response carries an explicit `Content-Type` and
//! `Cache-Control: no-store` (these are live readings; a cached copy is
//! a lie), serialization failures are `500`s, and the thread is strictly
//! **observation-only**: it loads relaxed atomics and takes short locks
//! on the collector's maps, and never touches crawl state, an RNG, or
//! the simulated clock — which is why the byte-identity suites pass with
//! the observer enabled (proven by `tests/observability.rs`).
//!
//! One request per connection (`Connection: close`): the observer is a
//! diagnostics port for `curl` and scrapers, not a serving layer —
//! cc-serve owns keep-alive sessions and backpressure.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cc_http::{Method, Request, Response, StatusCode};
use cc_util::CcError;

use crate::ObsSources;

/// The observer factory.
pub struct Observer;

impl Observer {
    /// Bind `addr` (`127.0.0.1:0` picks an ephemeral port) and spawn the
    /// observer thread. The thread runs until [`ObserverHandle::shutdown`]
    /// (or drop).
    pub fn start(addr: &str, sources: ObsSources) -> Result<ObserverHandle, CcError> {
        let listener = TcpListener::bind(addr).map_err(|e| CcError::io(addr, e))?;
        let bound = listener.local_addr().map_err(|e| CcError::io(addr, e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| CcError::io(addr, e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let thread = {
            let stop = Arc::clone(&stop);
            let requests = Arc::clone(&requests);
            std::thread::Builder::new()
                .name("cc-obs".into())
                .spawn(move || observe_loop(listener, &sources, &stop, &requests))
                .map_err(|e| CcError::io("spawn observer thread", e))?
        };
        Ok(ObserverHandle {
            addr: bound,
            stop,
            requests,
            thread: Some(thread),
        })
    }
}

/// A running observer: its bound address and its lifecycle.
pub struct ObserverHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ObserverHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far.
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Stop the observer thread and join it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObserverHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for ObserverHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObserverHandle")
            .field("addr", &self.addr)
            .field("requests", &self.requests_served())
            .finish()
    }
}

fn observe_loop(
    listener: TcpListener,
    sources: &ObsSources,
    stop: &AtomicBool,
    requests: &AtomicU64,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_ok() {
                    answer_one(stream, sources);
                    requests.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Read one request, answer it, close. Bounded timeouts throughout: a
/// stuck scraper must never wedge the observer thread.
fn answer_one(stream: TcpStream, sources: &ObsSources) {
    let timeout = Some(Duration::from_millis(2_000));
    if stream.set_read_timeout(timeout).is_err() || stream.set_write_timeout(timeout).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut response = match Request::read_from(&mut reader) {
        Ok(req) => handle(&req, sources),
        Err(e) if e.is_answerable() => {
            json_response(e.status(), format!("{{\"error\":{}}}", quote(&e.to_string())))
        }
        Err(_) => return,
    };
    response.headers.set("connection", "close");
    let _ = response.write_to(&mut writer);
    let _ = writer.flush();
}

/// Route one observer request. Every arm sets `Content-Type` and
/// `Cache-Control: no-store`; a missing source is a 404 (this observer
/// was started without it), a serialization failure a 500.
fn handle(req: &Request, sources: &ObsSources) -> Response {
    if req.method != Method::Get {
        return json_response(
            StatusCode::METHOD_NOT_ALLOWED,
            "{\"error\":\"method not allowed\"}".to_string(),
        );
    }
    match req.url.path.as_str() {
        "/healthz" => json_response(StatusCode::OK, "{\"status\":\"ok\"}".to_string()),
        "/progress" => match &sources.progress {
            Some(progress) => match serde_json::to_value(&progress.snapshot()) {
                // When the crawl is also served live, splice the served
                // epoch in so one endpoint answers "how far along is the
                // crawl AND how fresh is the served view".
                Ok(mut value) => {
                    if let (Some(cell), serde_json::Value::Object(map)) =
                        (&sources.epoch, &mut value)
                    {
                        map.insert(
                            "serve_epoch".into(),
                            serde_json::Value::Number(serde_json::Number::U64(
                                cell.load(Ordering::Relaxed),
                            )),
                        );
                    }
                    match serde_json::to_string_pretty(&value) {
                        Ok(body) => json_response(StatusCode::OK, body),
                        Err(e) => serialization_failure("progress", &e),
                    }
                }
                Err(e) => serialization_failure("progress", &e),
            },
            None => missing_source("progress"),
        },
        "/metrics" => match &sources.collector {
            Some(collector) => match collector.report(None).to_json() {
                Ok(body) => json_response(StatusCode::OK, body),
                Err(e) => serialization_failure("metrics", &e),
            },
            None => missing_source("metrics"),
        },
        "/metrics.prom" => match &sources.collector {
            Some(collector) => {
                let text = cc_telemetry::render_prometheus(&collector.report(None));
                let mut resp = Response::raw(StatusCode::OK, text);
                resp.headers
                    .set("content-type", "text/plain; version=0.0.4; charset=utf-8");
                resp.headers.set("cache-control", "no-store");
                resp
            }
            None => missing_source("metrics"),
        },
        "/timeseries" => match &sources.ring {
            Some(ring) => match serde_json::to_string(&ring.snapshot()) {
                Ok(samples) => json_response(
                    StatusCode::OK,
                    format!("{{\"schema\":\"cc-obs/v1\",\"samples\":{samples}}}"),
                ),
                Err(e) => serialization_failure("timeseries", &e),
            },
            None => missing_source("timeseries"),
        },
        path => json_response(
            StatusCode::NOT_FOUND,
            format!("{{\"error\":\"not found\",\"path\":{}}}", quote(path)),
        ),
    }
}

fn json_response(status: StatusCode, body: String) -> Response {
    let mut resp = Response::raw(status, body);
    resp.headers.set("content-type", "application/json");
    resp.headers.set("cache-control", "no-store");
    resp
}

fn missing_source(which: &str) -> Response {
    json_response(
        StatusCode::NOT_FOUND,
        format!("{{\"error\":\"observer has no {which} source\"}}"),
    )
}

fn serialization_failure(which: &str, err: &dyn std::fmt::Display) -> Response {
    json_response(
        StatusCode::INTERNAL_SERVER_ERROR,
        format!("{{\"error\":\"{which} serialization failed\",\"detail\":{}}}", quote(&err.to_string())),
    )
}

fn quote(s: &str) -> String {
    serde_json::to_string(s).unwrap_or_else(|_| "\"error\"".into())
}
