//! The single-file HTML run dashboard (`--dashboard-out run.html`).
//!
//! Renders a [`SnapshotRing`]'s retained window into one self-contained
//! HTML document, goose-graph style: stat tiles up top, four hand-rolled
//! SVG time-series below (throughput, latency quantiles, inflight,
//! queue starvation — separate charts because their units differ; never
//! a dual axis), the raw samples inline as a JSON `<script>` block, and
//! a `<details>` data table. No external assets, no fetches: the file
//! can be attached to a CI run or mailed around and still render.
//!
//! The charts are drawn server-side in Rust so the document works with
//! scripting disabled; a small inline script progressively adds a hover
//! crosshair + tooltip from the embedded JSON. Colors come from a
//! validated categorical palette carried as CSS custom properties, with
//! dark-mode values under both `prefers-color-scheme` and a
//! `[data-theme="dark"]` scope.

use std::fmt::Write as _;

use cc_telemetry::ObsSample;

/// Chart canvas geometry (SVG user units; the inline script mirrors
/// these when mapping pointer coordinates back to sample indices).
const W: f64 = 720.0;
const H: f64 = 220.0;
const ML: f64 = 56.0;
const MR: f64 = 14.0;
const MT: f64 = 14.0;
const MB: f64 = 30.0;

/// Data table rows are decimated to at most this many (evenly strided)
/// so a long run's dashboard stays a reasonably sized file.
const MAX_TABLE_ROWS: usize = 240;

struct Series<'a> {
    label: &'a str,
    /// CSS custom property carrying the series color (`--s1`, `--s2`).
    var: &'a str,
    values: Vec<f64>,
}

struct Chart<'a> {
    title: &'a str,
    unit: &'a str,
    series: Vec<Series<'a>>,
}

/// Render the dashboard document for one run.
///
/// `title` is the run label shown in the header (HTML-escaped here);
/// `samples` is the ring's window in push order (oldest first, as
/// [`cc_telemetry::SnapshotRing::snapshot`] returns it).
pub fn render_dashboard(title: &str, samples: &[ObsSample]) -> String {
    let charts = build_charts(samples);
    let ts: Vec<f64> = samples.iter().map(|s| s.t_s).collect();

    let mut out = String::with_capacity(64 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str("<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n");
    let _ = writeln!(out, "<title>{} — cc-obs run dashboard</title>", escape(title));
    out.push_str("<style>\n");
    out.push_str(STYLE);
    out.push_str("</style>\n</head>\n<body>\n");

    let _ = writeln!(
        out,
        "<header>\n<h1>{}</h1>\n<p class=\"sub\">cc-obs run dashboard · {} samples</p>\n</header>",
        escape(title),
        samples.len()
    );

    render_stat_tiles(&mut out, samples);

    if samples.is_empty() {
        out.push_str(
            "<p class=\"empty\">No samples were recorded — the run finished before \
             the first sampling interval, or the sampler was not attached.</p>\n",
        );
    } else {
        for (i, chart) in charts.iter().enumerate() {
            render_chart(&mut out, chart, &ts, i);
        }
        render_table(&mut out, samples);
    }

    render_data_block(&mut out, samples, &charts, &ts);
    out.push_str("<script>\n");
    out.push_str(SCRIPT);
    out.push_str("</script>\n</body>\n</html>\n");
    out
}

/// The fixed chart set. Units are never mixed on one axis: walks/s and
/// steps/s share events/s, p50 and p99 share ms, and inflight vs.
/// starvation get separate single-series charts.
fn build_charts(samples: &[ObsSample]) -> Vec<Chart<'static>> {
    vec![
        Chart {
            title: "Throughput",
            unit: "events/s",
            series: vec![
                Series {
                    label: "walks/s",
                    var: "--s1",
                    values: samples.iter().map(|s| s.walks_per_sec).collect(),
                },
                Series {
                    label: "steps/s",
                    var: "--s2",
                    values: samples.iter().map(|s| s.steps_per_sec).collect(),
                },
            ],
        },
        Chart {
            title: "Latency quantiles",
            unit: "ms",
            series: vec![
                Series {
                    label: "p50",
                    var: "--s1",
                    values: samples.iter().map(|s| s.latency_p50_ms).collect(),
                },
                Series {
                    label: "p99",
                    var: "--s2",
                    values: samples.iter().map(|s| s.latency_p99_ms).collect(),
                },
            ],
        },
        Chart {
            title: "Inflight requests",
            unit: "requests",
            series: vec![Series {
                label: "inflight",
                var: "--s1",
                values: samples.iter().map(|s| s.inflight).collect(),
            }],
        },
        Chart {
            title: "Worker queue starvation",
            unit: "starved polls (worst worker)",
            series: vec![Series {
                label: "starvation",
                var: "--s1",
                values: samples.iter().map(|s| s.starvation).collect(),
            }],
        },
    ]
}

fn render_stat_tiles(out: &mut String, samples: &[ObsSample]) {
    let last = samples.last().copied().unwrap_or_default();
    out.push_str("<section class=\"tiles\">\n");
    for (label, value) in [
        ("walks", fmt_count(last.walks as f64)),
        ("steps", fmt_count(last.steps as f64)),
        ("walks/s", fmt_num(last.walks_per_sec)),
        ("p99 latency", format!("{} ms", fmt_num(last.latency_p99_ms))),
        ("duration", fmt_time(last.t_s)),
    ] {
        let _ = writeln!(
            out,
            "<div class=\"tile\"><div class=\"tile-v\">{value}</div><div class=\"tile-l\">{label}</div></div>"
        );
    }
    out.push_str("</section>\n");
}

fn render_chart(out: &mut String, chart: &Chart<'_>, ts: &[f64], index: usize) {
    let y_max = chart
        .series
        .iter()
        .flat_map(|s| s.values.iter())
        .copied()
        .filter(|v| v.is_finite())
        .fold(0.0_f64, f64::max);
    let (y_top, y_ticks) = nice_axis(y_max);
    let t0 = ts.first().copied().unwrap_or(0.0);
    let t1 = ts.last().copied().unwrap_or(0.0);
    let plot_w = W - ML - MR;
    let plot_h = H - MT - MB;

    let x_of = |t: f64| {
        if t1 > t0 {
            ML + (t - t0) / (t1 - t0) * plot_w
        } else {
            ML + plot_w / 2.0
        }
    };
    let y_of = |v: f64| {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        MT + plot_h - (v / y_top) * plot_h
    };

    out.push_str("<figure class=\"chart\">\n<figcaption>\n");
    let _ = writeln!(
        out,
        "<span class=\"chart-title\">{}</span> <span class=\"chart-unit\">{}</span>",
        escape(chart.title),
        escape(chart.unit)
    );
    if chart.series.len() >= 2 {
        out.push_str("<span class=\"legend\">");
        for s in &chart.series {
            let _ = write!(
                out,
                "<span class=\"key\"><span class=\"swatch\" style=\"background:var({})\"></span>{}</span>",
                s.var,
                escape(s.label)
            );
        }
        out.push_str("</span>\n");
    }
    out.push_str("</figcaption>\n");
    let _ = writeln!(
        out,
        "<div class=\"chart-box\"><svg class=\"cc-chart\" data-chart=\"{index}\" viewBox=\"0 0 {W} {H}\" \
         role=\"img\" aria-label=\"{}\" preserveAspectRatio=\"xMidYMid meet\">",
        escape(chart.title)
    );

    // Horizontal gridlines + y labels (recessive; baseline heavier).
    for tick in &y_ticks {
        let y = y_of(*tick);
        let class = if *tick == 0.0 { "baseline" } else { "grid" };
        let _ = writeln!(
            out,
            "<line class=\"{class}\" x1=\"{ML}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\"/>",
            W - MR
        );
        let _ = writeln!(
            out,
            "<text class=\"ylab\" x=\"{:.1}\" y=\"{:.1}\">{}</text>",
            ML - 6.0,
            y + 3.5,
            fmt_num(*tick)
        );
    }
    // X (time) labels.
    for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let t = t0 + (t1 - t0) * frac;
        let _ = writeln!(
            out,
            "<text class=\"xlab\" x=\"{:.1}\" y=\"{:.1}\">{}</text>",
            x_of(t),
            H - 10.0,
            fmt_time(t)
        );
    }

    for s in &chart.series {
        if ts.len() == 1 {
            let _ = writeln!(
                out,
                "<circle class=\"mark\" cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\" style=\"fill:var({})\"/>",
                x_of(t0),
                y_of(s.values[0]),
                s.var
            );
            continue;
        }
        let mut points = String::with_capacity(ts.len() * 12);
        for (t, v) in ts.iter().zip(&s.values) {
            let _ = write!(points, "{:.1},{:.1} ", x_of(*t), y_of(*v));
        }
        let _ = writeln!(
            out,
            "<polyline class=\"line\" style=\"stroke:var({})\" points=\"{}\"/>",
            s.var,
            points.trim_end()
        );
    }

    // Hover affordances (crosshair + capture rect), driven by the script.
    let _ = writeln!(
        out,
        "<line class=\"cc-cross\" x1=\"0\" y1=\"{MT}\" x2=\"0\" y2=\"{:.1}\" style=\"display:none\"/>",
        MT + plot_h
    );
    let _ = writeln!(
        out,
        "<rect class=\"cc-capture\" x=\"{ML}\" y=\"{MT}\" width=\"{plot_w:.1}\" height=\"{plot_h:.1}\"/>"
    );
    out.push_str("</svg>\n<div class=\"cc-tip\" hidden></div>\n</div>\n</figure>\n");
}

fn render_table(out: &mut String, samples: &[ObsSample]) {
    let stride = samples.len().div_ceil(MAX_TABLE_ROWS).max(1);
    out.push_str("<details class=\"table-view\">\n<summary>Data table</summary>\n");
    if stride > 1 {
        let _ = writeln!(
            out,
            "<p class=\"sub\">Showing every {stride}th of {} samples (full data in the embedded JSON block).</p>",
            samples.len()
        );
    }
    out.push_str(
        "<table>\n<thead><tr><th>t</th><th>walks</th><th>steps</th><th>walks/s</th>\
         <th>steps/s</th><th>inflight</th><th>starvation</th><th>p50 ms</th><th>p99 ms</th></tr></thead>\n<tbody>\n",
    );
    for s in samples.iter().step_by(stride) {
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            fmt_time(s.t_s),
            s.walks,
            s.steps,
            fmt_num(s.walks_per_sec),
            fmt_num(s.steps_per_sec),
            fmt_num(s.inflight),
            fmt_num(s.starvation),
            fmt_num(s.latency_p50_ms),
            fmt_num(s.latency_p99_ms),
        );
    }
    out.push_str("</tbody>\n</table>\n</details>\n");
}

/// Embed the raw samples plus the per-chart series the hover script
/// reads. `</` is escaped so no sample content can ever close the
/// script element early.
fn render_data_block(out: &mut String, samples: &[ObsSample], charts: &[Chart<'_>], ts: &[f64]) {
    let mut json = String::from("{\"schema\":\"cc-obs/v1\",\"samples\":");
    json.push_str(&serde_json::to_string(samples).unwrap_or_else(|_| "[]".into()));
    json.push_str(",\"t\":");
    json.push_str(&serde_json::to_string(ts).unwrap_or_else(|_| "[]".into()));
    json.push_str(",\"charts\":[");
    for (i, c) in charts.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"title\":{},\"unit\":{},\"series\":[",
            serde_json::to_string(c.title).unwrap_or_else(|_| "\"\"".into()),
            serde_json::to_string(c.unit).unwrap_or_else(|_| "\"\"".into())
        );
        for (j, s) in c.series.iter().enumerate() {
            if j > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "{{\"label\":{},\"values\":{}}}",
                serde_json::to_string(s.label).unwrap_or_else(|_| "\"\"".into()),
                serde_json::to_string(&s.values).unwrap_or_else(|_| "[]".into())
            );
        }
        json.push_str("]}");
    }
    json.push_str("]}");
    let _ = writeln!(
        out,
        "<script type=\"application/json\" id=\"cc-obs-data\">{}</script>",
        json.replace("</", "<\\/")
    );
}

/// Round the axis top up to a tick multiple and return (top, tick
/// positions including 0). `max <= 0` falls back to a unit axis so an
/// all-zero series still draws a sensible frame.
fn nice_axis(max: f64) -> (f64, Vec<f64>) {
    let max = if max.is_finite() && max > 0.0 { max } else { 1.0 };
    let step = nice_step(max / 4.0);
    let n = (max / step).ceil().max(1.0);
    let top = step * n;
    let ticks = (0..=n as usize).map(|i| step * i as f64).collect();
    (top, ticks)
}

/// Snap a raw interval up to the nearest 1/2/5 × 10^k.
fn nice_step(raw: f64) -> f64 {
    let raw = if raw.is_finite() && raw > 0.0 { raw } else { 0.25 };
    let mag = 10f64.powf(raw.log10().floor());
    let n = raw / mag;
    let m = if n <= 1.0 {
        1.0
    } else if n <= 2.0 {
        2.0
    } else if n <= 5.0 {
        5.0
    } else {
        10.0
    };
    m * mag
}

fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".into();
    }
    let a = v.abs();
    let s = if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else if a == 0.0 {
        "0".to_string()
    } else {
        format!("{v:.3}")
    };
    trim_zeros(s)
}

fn fmt_count(v: f64) -> String {
    if v >= 1_000_000.0 {
        trim_zeros(format!("{:.2}", v / 1_000_000.0)) + "M"
    } else if v >= 10_000.0 {
        trim_zeros(format!("{:.1}", v / 1_000.0)) + "k"
    } else {
        format!("{}", v as u64)
    }
}

fn fmt_time(secs: f64) -> String {
    let secs = if secs.is_finite() && secs > 0.0 { secs } else { 0.0 };
    if secs >= 120.0 {
        format!("{}m{:02.0}s", (secs / 60.0) as u64, secs % 60.0)
    } else if secs >= 10.0 {
        trim_zeros(format!("{secs:.1}")) + "s"
    } else {
        trim_zeros(format!("{secs:.2}")) + "s"
    }
}

fn trim_zeros(s: String) -> String {
    if s.contains('.') {
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        s
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Palette + layout tokens. The series colors are the first two slots of
/// a validated categorical palette (adjacent-pair CVD separation and
/// contrast checked against both surfaces); every piece of text wears an
/// ink token, never a series color. Dark mode is its own selected set of
/// steps, reachable via the OS preference or `data-theme="dark"`.
const STYLE: &str = r#":root {
  --surface: #fcfcfb;
  --ink: #0b0b0b;
  --ink-2: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --s1: #2a78d6;
  --s2: #eb6834;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19;
    --ink: #ffffff;
    --ink-2: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --s1: #3987e5;
    --s2: #d95926;
  }
}
[data-theme="dark"] {
  --surface: #1a1a19;
  --ink: #ffffff;
  --ink-2: #c3c2b7;
  --muted: #898781;
  --grid: #2c2c2a;
  --baseline: #383835;
  --s1: #3987e5;
  --s2: #d95926;
}
body {
  margin: 0 auto;
  padding: 24px 20px 48px;
  max-width: 820px;
  background: var(--surface);
  color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0; }
.sub { color: var(--ink-2); margin: 2px 0 0; font-size: 13px; }
.empty { color: var(--ink-2); }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 20px 0; }
.tile {
  flex: 1 1 120px;
  border: 1px solid var(--grid);
  border-radius: 8px;
  padding: 10px 14px;
}
.tile-v { font-size: 22px; font-weight: 600; font-variant-numeric: tabular-nums; }
.tile-l { color: var(--ink-2); font-size: 12px; }
.chart { margin: 26px 0 0; }
figcaption { display: flex; align-items: baseline; gap: 8px; margin-bottom: 4px; }
.chart-title { font-weight: 600; }
.chart-unit { color: var(--muted); font-size: 12px; }
.legend { margin-left: auto; display: flex; gap: 12px; font-size: 12px; color: var(--ink-2); }
.key { display: inline-flex; align-items: center; gap: 5px; }
.swatch { width: 10px; height: 10px; border-radius: 2px; display: inline-block; }
.chart-box { position: relative; }
svg.cc-chart { width: 100%; height: auto; display: block; }
.grid { stroke: var(--grid); stroke-width: 1; }
.baseline { stroke: var(--baseline); stroke-width: 1.5; }
.line { fill: none; stroke-width: 2; stroke-linejoin: round; stroke-linecap: round; }
.ylab { fill: var(--ink-2); font-size: 10px; text-anchor: end; font-variant-numeric: tabular-nums; }
.xlab { fill: var(--ink-2); font-size: 10px; text-anchor: middle; font-variant-numeric: tabular-nums; }
.cc-cross { stroke: var(--baseline); stroke-width: 1; stroke-dasharray: 3 3; pointer-events: none; }
.cc-capture { fill: transparent; }
.cc-tip {
  position: absolute;
  pointer-events: none;
  background: var(--surface);
  color: var(--ink);
  border: 1px solid var(--baseline);
  border-radius: 6px;
  padding: 6px 9px;
  font-size: 12px;
  box-shadow: 0 2px 8px rgba(0, 0, 0, 0.12);
  white-space: nowrap;
}
.cc-tip .t { color: var(--ink-2); }
.cc-tip .k { display: inline-block; width: 8px; height: 8px; border-radius: 2px; margin-right: 5px; }
.table-view { margin-top: 28px; }
.table-view summary { cursor: pointer; color: var(--ink-2); }
table { border-collapse: collapse; margin-top: 10px; font-variant-numeric: tabular-nums; font-size: 12px; }
th, td { text-align: right; padding: 3px 10px; border-bottom: 1px solid var(--grid); }
th { color: var(--ink-2); font-weight: 600; }
"#;

/// The progressive hover layer: crosshair + tooltip per chart, reading
/// the embedded JSON. Geometry constants mirror the Rust renderer's.
const SCRIPT: &str = r#"(function () {
  var el = document.getElementById('cc-obs-data');
  if (!el) return;
  var data;
  try { data = JSON.parse(el.textContent); } catch (e) { return; }
  if (!data.t || data.t.length === 0) return;
  var ML = 56, MR = 14, MT = 14, MB = 30, W = 720, H = 220;
  var plotW = W - ML - MR;
  var t0 = data.t[0], t1 = data.t[data.t.length - 1];
  var vars = ['--s1', '--s2'];
  document.querySelectorAll('svg.cc-chart').forEach(function (svg) {
    var chart = data.charts[+svg.dataset.chart];
    if (!chart) return;
    var box = svg.parentElement;
    var tip = box.querySelector('.cc-tip');
    var cross = svg.querySelector('.cc-cross');
    function hide() { tip.hidden = true; cross.style.display = 'none'; }
    svg.addEventListener('mouseleave', hide);
    svg.addEventListener('mousemove', function (ev) {
      var r = svg.getBoundingClientRect();
      var fx = (ev.clientX - r.left) * (W / r.width);
      if (fx < ML || fx > W - MR) { hide(); return; }
      var i = 0;
      if (t1 > t0) {
        var tt = t0 + ((fx - ML) / plotW) * (t1 - t0);
        var lo = 0, hi = data.t.length - 1;
        while (lo < hi) {
          var mid = (lo + hi) >> 1;
          if (data.t[mid] < tt) lo = mid + 1; else hi = mid;
        }
        i = lo;
        if (i > 0 && tt - data.t[i - 1] < data.t[i] - tt) i = i - 1;
      }
      var x = t1 > t0 ? ML + ((data.t[i] - t0) / (t1 - t0)) * plotW : ML + plotW / 2;
      cross.setAttribute('x1', x);
      cross.setAttribute('x2', x);
      cross.style.display = '';
      var html = '<div class="t">t = ' + data.t[i].toFixed(2) + 's</div>';
      chart.series.forEach(function (s, j) {
        html += '<div><span class="k" style="background:var(' + (vars[j] || vars[0]) +
          ')"></span>' + s.label + ': ' + (+s.values[i]).toFixed(2) + '</div>';
      });
      tip.innerHTML = html;
      tip.hidden = false;
      var px = (x / W) * r.width + 12;
      if (px > r.width - 150) px = px - 170;
      tip.style.left = px + 'px';
      tip.style.top = ((ev.clientY - r.top) * (H / r.height) / H) * r.height + 'px';
    });
  });
})();
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, walks: u64) -> ObsSample {
        ObsSample {
            t_s: t,
            walks,
            steps: walks * 4,
            walks_per_sec: walks as f64 / t.max(0.1),
            steps_per_sec: walks as f64 * 4.0 / t.max(0.1),
            inflight: 3.0,
            starvation: 1.0,
            latency_p50_ms: 12.0,
            latency_p99_ms: 48.0,
        }
    }

    #[test]
    fn dashboard_is_self_contained_html() {
        let samples: Vec<ObsSample> = (1..=20).map(|i| sample(i as f64, i * 10)).collect();
        let html = render_dashboard("smoke run", &samples);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        // No external assets of any kind.
        assert!(!html.contains("http://"));
        assert!(!html.contains("https://"));
        assert!(!html.contains("<link"));
        assert!(!html.contains("src="));
        // All four charts, each with its polylines.
        for title in [
            "Throughput",
            "Latency quantiles",
            "Inflight requests",
            "Worker queue starvation",
        ] {
            assert!(html.contains(title), "missing chart {title}");
        }
        assert_eq!(html.matches("<polyline").count(), 6); // 2 + 2 + 1 + 1
        // Legends only on the two-series charts.
        assert_eq!(html.matches("class=\"legend\"").count(), 2);
        // Table view exists.
        assert!(html.contains("<table>"));
        assert!(html.contains("Data table"));
        // Dark mode under both scopes.
        assert!(html.contains("prefers-color-scheme: dark"));
        assert!(html.contains("[data-theme=\"dark\"]"));
    }

    #[test]
    fn embedded_json_parses_and_round_trips_samples() {
        let samples: Vec<ObsSample> = (1..=5).map(|i| sample(i as f64, i)).collect();
        let html = render_dashboard("json check", &samples);
        let start = html.find("id=\"cc-obs-data\">").expect("data block") + "id=\"cc-obs-data\">".len();
        let end = start + html[start..].find("</script>").expect("block end");
        let json = html[start..end].replace("<\\/", "</");
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let obj = v.as_object().expect("object root");
        assert_eq!(obj.get("schema").and_then(|s| s.as_str()), Some("cc-obs/v1"));
        let raw_samples = obj.get("samples").and_then(|s| s.as_array()).unwrap();
        assert_eq!(raw_samples.len(), 5);
        assert_eq!(obj.get("t").and_then(|t| t.as_array()).unwrap().len(), 5);
        assert_eq!(obj.get("charts").and_then(|c| c.as_array()).unwrap().len(), 4);
        let back: Vec<ObsSample> =
            serde_json::from_str(&serde_json::to_string(raw_samples).unwrap()).unwrap();
        assert_eq!(back, samples);
    }

    #[test]
    fn empty_run_renders_placeholder_not_charts() {
        let html = render_dashboard("empty", &[]);
        assert!(html.contains("No samples were recorded"));
        assert!(!html.contains("<polyline"));
        assert!(html.contains("<!DOCTYPE html>"));
    }

    #[test]
    fn single_sample_draws_point_markers() {
        let html = render_dashboard("one", &[sample(1.0, 3)]);
        assert!(html.contains("<circle class=\"mark\""));
        assert!(!html.contains("<polyline"));
    }

    #[test]
    fn title_is_escaped() {
        let html = render_dashboard("<script>alert(1)</script>", &[]);
        assert!(!html.contains("<script>alert"));
        assert!(html.contains("&lt;script&gt;alert(1)&lt;/script&gt;"));
    }

    #[test]
    fn long_runs_decimate_the_table() {
        let samples: Vec<ObsSample> = (1..=1000).map(|i| sample(i as f64, i)).collect();
        let html = render_dashboard("long", &samples);
        assert!(html.contains("Showing every 5th of 1000 samples"));
        assert!(html.matches("<tr><td>").count() <= MAX_TABLE_ROWS);
    }

    #[test]
    fn nice_axis_covers_max_and_starts_at_zero() {
        for max in [0.0, 0.7, 1.0, 3.2, 47.0, 999.0, 12_345.0] {
            let (top, ticks) = nice_axis(max);
            assert!(top >= max, "top {top} < max {max}");
            assert_eq!(ticks[0], 0.0);
            assert!((ticks.last().unwrap() - top).abs() < 1e-9);
            assert!(ticks.len() >= 2 && ticks.len() <= 8, "{max} -> {ticks:?}");
        }
    }
}
