//! The `cc-gaggle/v1` frame codec: length-prefixed JSON frames over TCP.
//!
//! Same school as cc-http's `wire.rs` — bounded reads, every decode
//! failure an explicit error variant, clean-close distinguished from
//! mid-frame death — but for a binary peer protocol instead of HTTP. A
//! frame on the wire is:
//!
//! ```text
//! +--------+------+-------------+------------------+
//! | "CCG1" | type | payload_len | JSON payload     |
//! | 4 B    | 1 B  | 4 B (BE)    | payload_len B    |
//! +--------+------+-------------+------------------+
//! ```
//!
//! The magic catches cross-protocol accidents (an HTTP client dialing the
//! manager port fails on its first four bytes, not deep inside a JSON
//! parser); the type byte picks the payload schema; the length prefix
//! bounds the read ([`MAX_FRAME_BYTES`]). Payloads are JSON because every
//! shipped structure (datasets, truth ledgers, study configs) already has
//! a canonical serde encoding that the byte-identity suites pin down —
//! the wire inherits that canon instead of inventing a second one.
//!
//! Error classification mirrors cc-http ([`cc_http::classify_io`] is the
//! shared mapping): EOF before the first magic byte is a clean
//! [`FrameError::Closed`], EOF anywhere later is [`FrameError::Truncated`],
//! and a socket read deadline surfaces as [`FrameError::TimedOut`] so
//! callers can poll shutdown flags between reads.

use std::collections::BTreeMap;
use std::io::{Read, Write};

use cc_crawler::{CrawlDataset, StudyConfig};
use cc_http::{classify_io, IoFault};
use cc_util::CcError;
use cc_web::TruthLog;
use serde::{Deserialize, Serialize};

/// The protocol version string carried in every [`Frame::Hello`]. A
/// manager refuses any other value — there is exactly one version today,
/// and the check is what makes the next one introducible.
pub const PROTOCOL: &str = "cc-gaggle/v1";

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"CCG1";

/// Largest accepted frame payload. Dataset shards for a whole lease ride
/// in one frame, so this is generous — but still bounds what a byte
/// stream can make the decoder allocate.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Everything that can go wrong reading or writing a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the connection cleanly before the first byte of a
    /// frame (normal termination, not an error to report).
    Closed,
    /// The read timed out; the connection is healthy, retry the read.
    TimedOut,
    /// The connection died mid-frame.
    Truncated,
    /// Underlying I/O failure.
    Io(String),
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// An unregistered frame-type byte.
    UnknownType(u8),
    /// The length prefix exceeded [`MAX_FRAME_BYTES`].
    TooLarge(u32),
    /// The payload did not decode as the frame type's schema.
    BadPayload {
        /// The frame type whose payload failed to decode.
        frame: &'static str,
        /// The rendered serde error.
        detail: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TimedOut => write!(f, "read timed out"),
            FrameError::Truncated => write!(f, "connection died mid-frame"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:?} (want {MAGIC:?})"),
            FrameError::UnknownType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame payload of {n} bytes over {MAX_FRAME_BYTES}")
            }
            FrameError::BadPayload { frame, detail } => {
                write!(f, "bad {frame} payload: {detail}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for CcError {
    fn from(e: FrameError) -> Self {
        CcError::Protocol(e.to_string())
    }
}

impl FrameError {
    /// Whether a retry of the same read can succeed (only a timeout).
    pub fn is_timeout(&self) -> bool {
        matches!(self, FrameError::TimedOut)
    }
}

fn io_error(e: std::io::Error) -> FrameError {
    match classify_io(e.kind()) {
        IoFault::TimedOut => FrameError::TimedOut,
        IoFault::Truncated => FrameError::Truncated,
        // A peer that vanished between frames reads like a close; the
        // lease table decides whether that close was expected.
        IoFault::Disconnected => FrameError::Closed,
        IoFault::Other => FrameError::Io(e.to_string()),
    }
}

/// One frame of the `cc-gaggle/v1` protocol.
///
/// Welcome's inline `StudyConfig` makes the enum large, but frames are
/// transient (decoded, matched, consumed — never collected), so the
/// indirection a `Box` would buy costs more in API noise than the moves
/// save.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → manager, first frame on a connection.
    Hello {
        /// Must equal [`PROTOCOL`].
        protocol: String,
        /// Free-form worker label (host/pid), for logs and telemetry.
        label: String,
    },
    /// Manager → worker, answering a valid Hello.
    Welcome {
        /// The id the manager will know this worker by.
        worker_id: u32,
        /// The full study: the worker regenerates the world from this, so
        /// no study flags are needed (or allowed to disagree) worker-side.
        study: StudyConfig,
    },
    /// Manager → worker: crawl these walk ids.
    Lease {
        /// Fresh id for this issuance (a re-issued lease gets a new one,
        /// which is how stale results from a presumed-dead worker are
        /// told apart from live ones).
        lease_id: u64,
        /// The walk ids to crawl.
        walk_ids: Vec<u32>,
        /// Lease deadline, milliseconds from receipt; renewed by each
        /// Heartbeat. A lease past its deadline is expired and re-issued.
        deadline_ms: u64,
    },
    /// Worker → manager: still alive, still crawling this lease.
    Heartbeat {
        /// The lease being renewed.
        lease_id: u64,
        /// Walks finished so far on this lease (progress reporting only).
        walks_done: u32,
    },
    /// Worker → manager: a finished lease's output.
    ShardResult {
        /// The lease this shard fulfills.
        lease_id: u64,
        /// The crawled walks + failure stats for exactly the leased ids.
        shard: CrawlDataset,
        /// The worker's full truth-ledger snapshot. Merging is idempotent
        /// (identical mints converge), so shipping the whole ledger every
        /// time keeps the frame schema simple.
        truth: TruthLog,
    },
    /// Worker → manager, before Goodbye: drained telemetry totals to fold
    /// into the manager's session.
    Telemetry {
        /// Counter name → total.
        counters: BTreeMap<String, u64>,
    },
    /// Either direction: the sender is done with this connection.
    Goodbye {
        /// Why ("complete", "shutdown", ...) — for logs only.
        reason: String,
    },
}

impl Frame {
    /// The type byte identifying this frame on the wire.
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0x01,
            Frame::Welcome { .. } => 0x02,
            Frame::Lease { .. } => 0x03,
            Frame::Heartbeat { .. } => 0x04,
            Frame::ShardResult { .. } => 0x05,
            Frame::Telemetry { .. } => 0x06,
            Frame::Goodbye { .. } => 0x07,
        }
    }

    /// The frame's name, for error messages and telemetry labels.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::Welcome { .. } => "Welcome",
            Frame::Lease { .. } => "Lease",
            Frame::Heartbeat { .. } => "Heartbeat",
            Frame::ShardResult { .. } => "ShardResult",
            Frame::Telemetry { .. } => "Telemetry",
            Frame::Goodbye { .. } => "Goodbye",
        }
    }
}

/// Serde shadow of [`Frame`] carrying only the payload fields — the type
/// byte on the wire picks the variant, so the JSON is the *content* of
/// the variant, not an externally-tagged enum (which would spell the type
/// twice and let the two disagree).
#[derive(Serialize, Deserialize)]
struct HelloPayload {
    protocol: String,
    label: String,
}

#[derive(Serialize, Deserialize)]
struct WelcomePayload {
    worker_id: u32,
    study: StudyConfig,
}

#[derive(Serialize, Deserialize)]
struct LeasePayload {
    lease_id: u64,
    walk_ids: Vec<u32>,
    deadline_ms: u64,
}

#[derive(Serialize, Deserialize)]
struct HeartbeatPayload {
    lease_id: u64,
    walks_done: u32,
}

#[derive(Serialize, Deserialize)]
struct ShardResultPayload {
    lease_id: u64,
    shard: CrawlDataset,
    truth: TruthLog,
}

#[derive(Serialize, Deserialize)]
struct TelemetryPayload {
    counters: BTreeMap<String, u64>,
}

#[derive(Serialize, Deserialize)]
struct GoodbyePayload {
    reason: String,
}

fn encode_payload(frame: &Frame) -> Result<Vec<u8>, FrameError> {
    let encoded = match frame {
        Frame::Hello { protocol, label } => serde_json::to_string(&HelloPayload {
            protocol: protocol.clone(),
            label: label.clone(),
        }),
        Frame::Welcome { worker_id, study } => serde_json::to_string(&WelcomePayload {
            worker_id: *worker_id,
            study: study.clone(),
        }),
        Frame::Lease {
            lease_id,
            walk_ids,
            deadline_ms,
        } => serde_json::to_string(&LeasePayload {
            lease_id: *lease_id,
            walk_ids: walk_ids.clone(),
            deadline_ms: *deadline_ms,
        }),
        Frame::Heartbeat {
            lease_id,
            walks_done,
        } => serde_json::to_string(&HeartbeatPayload {
            lease_id: *lease_id,
            walks_done: *walks_done,
        }),
        Frame::ShardResult {
            lease_id,
            shard,
            truth,
        } => serde_json::to_string(&ShardResultPayload {
            lease_id: *lease_id,
            shard: shard.clone(),
            truth: truth.clone(),
        }),
        Frame::Telemetry { counters } => serde_json::to_string(&TelemetryPayload {
            counters: counters.clone(),
        }),
        Frame::Goodbye { reason } => serde_json::to_string(&GoodbyePayload {
            reason: reason.clone(),
        }),
    };
    encoded.map(String::into_bytes).map_err(|e| FrameError::BadPayload {
        frame: frame.name(),
        detail: e.to_string(),
    })
}

fn decode_payload(type_byte: u8, payload: &[u8]) -> Result<Frame, FrameError> {
    fn parse<T: Deserialize>(frame: &'static str, payload: &[u8]) -> Result<T, FrameError> {
        let text = std::str::from_utf8(payload).map_err(|e| FrameError::BadPayload {
            frame,
            detail: e.to_string(),
        })?;
        serde_json::from_str(text).map_err(|e| FrameError::BadPayload {
            frame,
            detail: e.to_string(),
        })
    }
    Ok(match type_byte {
        0x01 => {
            let p: HelloPayload = parse("Hello", payload)?;
            Frame::Hello {
                protocol: p.protocol,
                label: p.label,
            }
        }
        0x02 => {
            let p: WelcomePayload = parse("Welcome", payload)?;
            Frame::Welcome {
                worker_id: p.worker_id,
                study: p.study,
            }
        }
        0x03 => {
            let p: LeasePayload = parse("Lease", payload)?;
            Frame::Lease {
                lease_id: p.lease_id,
                walk_ids: p.walk_ids,
                deadline_ms: p.deadline_ms,
            }
        }
        0x04 => {
            let p: HeartbeatPayload = parse("Heartbeat", payload)?;
            Frame::Heartbeat {
                lease_id: p.lease_id,
                walks_done: p.walks_done,
            }
        }
        0x05 => {
            let p: ShardResultPayload = parse("ShardResult", payload)?;
            Frame::ShardResult {
                lease_id: p.lease_id,
                shard: p.shard,
                truth: p.truth,
            }
        }
        0x06 => {
            let p: TelemetryPayload = parse("Telemetry", payload)?;
            Frame::Telemetry {
                counters: p.counters,
            }
        }
        0x07 => {
            let p: GoodbyePayload = parse("Goodbye", payload)?;
            Frame::Goodbye { reason: p.reason }
        }
        other => return Err(FrameError::UnknownType(other)),
    })
}

/// Write one frame; returns the bytes put on the wire (for the
/// `gaggle.bytes.sent` counter).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<usize, FrameError> {
    let payload = encode_payload(frame)?;
    let len = u32::try_from(payload.len()).map_err(|_| FrameError::TooLarge(u32::MAX))?;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    let mut buf = Vec::with_capacity(9 + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(frame.type_byte());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(&payload);
    w.write_all(&buf).map_err(io_error)?;
    w.flush().map_err(io_error)?;
    Ok(buf.len())
}

/// Read exactly `buf.len()` bytes, distinguishing EOF-before-first-byte
/// (`Closed` when `first` is set) from EOF mid-frame (`Truncated`).
fn read_exact_classified(
    r: &mut impl Read,
    buf: &mut [u8],
    first: bool,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if first && filled == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) => match io_error(e) {
                // A timeout with part of a frame already read must not
                // surface as TimedOut — the caller would retry from the
                // frame boundary and desync. Keep waiting for the rest;
                // the peer either finishes the frame or dies (and the
                // death classifies below).
                FrameError::TimedOut if filled > 0 => continue,
                FrameError::TimedOut => return Err(FrameError::TimedOut),
                FrameError::Closed => {
                    return Err(if first && filled == 0 {
                        FrameError::Closed
                    } else {
                        FrameError::Truncated
                    });
                }
                other => return Err(other),
            },
        }
    }
    Ok(())
}

/// Read one frame; returns it with the bytes consumed off the wire (for
/// the `gaggle.bytes.received` counter).
///
/// [`FrameError::Closed`] means the peer ended the connection cleanly at
/// a frame boundary; [`FrameError::TimedOut`] means no frame has started
/// yet and the caller may retry (poll a shutdown flag, then read again).
pub fn read_frame(r: &mut impl Read) -> Result<(Frame, usize), FrameError> {
    let mut magic = [0u8; 4];
    read_exact_classified(r, &mut magic, true)?;
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let mut head = [0u8; 5];
    read_exact_classified(r, &mut head, false)?;
    let type_byte = head[0];
    let len = u32::from_be_bytes([head[1], head[2], head[3], head[4]]);
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_classified(r, &mut payload, false)?;
    let frame = decode_payload(type_byte, &payload)?;
    Ok((frame, 9 + payload.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let mut buf = Vec::new();
        let written = write_frame(&mut buf, &frame).unwrap();
        assert_eq!(written, buf.len());
        let (back, consumed) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(back, frame);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn every_frame_type_round_trips() {
        round_trip(Frame::Hello {
            protocol: PROTOCOL.into(),
            label: "worker-1".into(),
        });
        round_trip(Frame::Welcome {
            worker_id: 3,
            study: StudyConfig::default(),
        });
        round_trip(Frame::Lease {
            lease_id: 42,
            walk_ids: vec![0, 5, 9],
            deadline_ms: 3000,
        });
        round_trip(Frame::Heartbeat {
            lease_id: 42,
            walks_done: 2,
        });
        round_trip(Frame::ShardResult {
            lease_id: 42,
            shard: CrawlDataset::default(),
            truth: TruthLog::new(),
        });
        round_trip(Frame::Telemetry {
            counters: [("gaggle.worker.walks".to_string(), 7u64)].into_iter().collect(),
        });
        round_trip(Frame::Goodbye {
            reason: "complete".into(),
        });
    }

    #[test]
    fn clean_eof_is_closed_and_mid_frame_eof_is_truncated() {
        let empty: &[u8] = &[];
        assert_eq!(read_frame(&mut &*empty).unwrap_err(), FrameError::Closed);

        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Goodbye {
                reason: "x".into(),
            },
        )
        .unwrap();
        for cut in 1..buf.len() {
            let err = read_frame(&mut &buf[..cut]).unwrap_err();
            assert_eq!(err, FrameError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn garbage_magic_is_rejected() {
        let bytes = b"GET / HTTP/1.1\r\n\r\n";
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err, FrameError::BadMagic(*b"GET "));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(0x07);
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err, FrameError::TooLarge(u32::MAX));
    }

    #[test]
    fn unknown_type_byte_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(0x7f);
        bytes.extend_from_slice(&2u32.to_be_bytes());
        bytes.extend_from_slice(b"{}");
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err, FrameError::UnknownType(0x7f));
    }

    #[test]
    fn frame_errors_lower_to_protocol_cc_errors() {
        let e: CcError = FrameError::UnknownType(0x7f).into();
        assert!(matches!(e, CcError::Protocol(_)), "{e}");
        assert!(e.to_string().contains("unknown frame type"));
    }
}
