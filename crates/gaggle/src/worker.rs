//! The gaggle worker: dial the manager, crawl leases, ship shards.
//!
//! A worker carries **no study flags**: the Welcome frame delivers the
//! full [`StudyConfig`], the worker regenerates the world from it (worlds
//! are pure functions of their config, so every worker's generation-time
//! truth entries are identical), and each Lease's walk ids run through
//! [`cc_crawler::crawl_walk_ids_with_progress`] — the same work-stealing
//! executor, with `study.workers` threads, that a single-process run
//! uses. A heartbeat thread renews the lease while the crawl runs, so a
//! slow lease is distinguishable from a dead worker.
//!
//! Workers do **not** open their own telemetry session (sessions are
//! process-global and exclusive — the bench harness runs several workers
//! as threads of one process). Instead a worker counts its own summary
//! totals locally and ships them in one Telemetry frame at goodbye; the
//! manager folds them into *its* session.

use std::collections::BTreeMap;
use std::net::TcpStream;
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cc_crawler::crawl_walk_ids_with_progress;
use cc_util::{CcError, ProgressCounters};
use cc_web::generate;

use crate::wire::{read_frame, write_frame, Frame, FrameError, PROTOCOL};

/// How a worker reaches its manager.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Manager address (`host:port`).
    pub connect: String,
    /// Free-form label sent in the Hello (host/pid by convention).
    pub label: String,
}

/// What a finished worker reports.
#[derive(Debug, Clone, Copy)]
pub struct WorkerSummary {
    /// The id the manager assigned.
    pub worker_id: u32,
    /// Leases crawled (including any whose result the manager dropped
    /// as stale — the worker cannot tell).
    pub leases: u64,
    /// Walks crawled.
    pub walks: u64,
}

/// Socket read deadline; reads loop on timeout so a worker waiting for
/// its next lease stays responsive.
const READ_POLL: Duration = Duration::from_millis(250);

/// Connection retry budget: the manager may still be binding when a
/// worker launches (the CLI's `--gaggle N` spawns both at once).
const CONNECT_ATTEMPTS: u32 = 100;
const CONNECT_BACKOFF: Duration = Duration::from_millis(100);

fn connect_with_retry(addr: &str) -> Result<TcpStream, CcError> {
    let mut last = None;
    for _ in 0..CONNECT_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(CONNECT_BACKOFF);
            }
        }
    }
    Err(CcError::io(
        addr,
        last.map_or_else(|| "connect failed".to_string(), |e| e.to_string()),
    ))
}

/// Run one worker to completion: connect, handshake, crawl leases until
/// the manager says goodbye.
pub fn run_worker(cfg: &WorkerConfig) -> Result<WorkerSummary, CcError> {
    let mut stream = connect_with_retry(&cfg.connect)?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(READ_POLL))
        .map_err(|e| CcError::io(&cfg.connect, e))?;
    // Writes go through a shared handle so the heartbeat thread and the
    // lease loop never interleave partial frames.
    let writer = Arc::new(Mutex::new(
        stream.try_clone().map_err(|e| CcError::io(&cfg.connect, e))?,
    ));
    let send = |frame: &Frame| -> Result<usize, FrameError> {
        let mut w = writer.lock().expect("gaggle worker writer poisoned");
        write_frame(&mut *w, frame)
    };

    send(&Frame::Hello {
        protocol: PROTOCOL.into(),
        label: cfg.label.clone(),
    })?;
    let (worker_id, study) = loop {
        match read_frame(&mut stream) {
            Ok((Frame::Welcome { worker_id, study }, _)) => break (worker_id, study),
            Ok((Frame::Goodbye { reason }, _)) => {
                return Err(CcError::Protocol(format!("manager refused worker: {reason}")));
            }
            Ok((other, _)) => {
                return Err(CcError::Protocol(format!(
                    "expected Welcome, got {}",
                    other.name()
                )));
            }
            Err(FrameError::TimedOut) => {}
            Err(e) => return Err(e.into()),
        }
    };

    // Regenerate the world: deterministic, so this worker's ledger starts
    // exactly where the manager's (and every sibling's) did.
    let web = generate(&study.web);
    let progress = ProgressCounters::new(study.workers);
    // Test hook: slow the start of every lease so an integration test (or
    // the CI smoke job) can kill -9 this process reliably mid-lease.
    let slow_ms: u64 = std::env::var("CC_GAGGLE_TEST_SLOW_MS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);

    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut summary = WorkerSummary {
        worker_id,
        leases: 0,
        walks: 0,
    };

    loop {
        match read_frame(&mut stream) {
            Ok((
                Frame::Lease {
                    lease_id,
                    walk_ids,
                    deadline_ms,
                },
                _,
            )) => {
                // Heartbeat for the whole time this lease is in hand —
                // through the slow-start hook and the crawl alike. The
                // channel doubles as an interruptible sleep: a plain
                // `sleep(interval)` + stop flag would make the post-lease
                // join block for up to a full interval (deadline/3),
                // serializing dead time between every lease.
                let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
                let hb = {
                    let writer = Arc::clone(&writer);
                    let interval = Duration::from_millis((deadline_ms / 3).max(50));
                    std::thread::spawn(move || {
                        let mut done: u32 = 0;
                        // Timeout = the lease is still in hand, beat once;
                        // Disconnected = the lease loop dropped its sender,
                        // wake immediately and exit.
                        while let Err(RecvTimeoutError::Timeout) =
                            stop_rx.recv_timeout(interval)
                        {
                            let mut w =
                                writer.lock().expect("gaggle worker writer poisoned");
                            if write_frame(
                                &mut *w,
                                &Frame::Heartbeat {
                                    lease_id,
                                    walks_done: done,
                                },
                            )
                            .is_err()
                            {
                                break; // manager gone; the main loop will notice
                            }
                            done = done.saturating_add(1);
                        }
                    })
                };
                if slow_ms > 0 {
                    std::thread::sleep(Duration::from_millis(slow_ms));
                }
                let shard = crawl_walk_ids_with_progress(&web, &study, &walk_ids, &progress);
                drop(stop_tx);
                let _ = hb.join();

                summary.leases += 1;
                summary.walks += shard.walks.len() as u64;
                *counters.entry("gaggle.worker.leases".into()).or_insert(0) += 1;
                *counters.entry("gaggle.worker.walks".into()).or_insert(0) +=
                    shard.walks.len() as u64;
                send(&Frame::ShardResult {
                    lease_id,
                    shard,
                    truth: web.truth_snapshot(),
                })?;
            }
            Ok((Frame::Goodbye { .. }, _)) => {
                // Parting telemetry, then a clean goodbye. The manager may
                // already have hung up (it only waits so long); that's
                // still a completed run from this worker's side.
                let _ = send(&Frame::Telemetry {
                    counters: counters.clone(),
                });
                let _ = send(&Frame::Goodbye {
                    reason: "complete".into(),
                });
                return Ok(summary);
            }
            Ok((other, _)) => {
                return Err(CcError::Protocol(format!(
                    "unexpected {} frame from manager",
                    other.name()
                )));
            }
            Err(FrameError::TimedOut) => {}
            Err(e) => return Err(e.into()),
        }
    }
}
