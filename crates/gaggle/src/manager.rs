//! The gaggle manager: lease-based distribution of the walk-id space.
//!
//! The manager owns the study. It generates the world, partitions the
//! walk-id space into fixed-size **leases**, and streams them to however
//! many workers dial in, over the [`crate::wire`] codec. Each lease
//! carries a deadline renewed by heartbeats; a worker that dies mid-lease
//! (socket close or deadline expiry) has its leases re-issued — under a
//! **fresh lease id**, which is how a "zombie" result from a
//! presumed-dead worker that was merely slow is told apart from the live
//! re-issue and dropped instead of double-counted.
//!
//! Determinism is the point: every walk is a pure function of
//! `(StudyConfig, walk_id)`, shards merge through the same
//! [`CrawlDataset::merge`] a single-process run uses, and truth-ledger
//! merging is idempotent — so the assembled dataset, report, and final
//! checkpoint are byte-identical to a single-process run at any worker
//! count, any lease interleaving, and any kill/re-issue history.

use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cc_crawler::{CrawlCheckpoint, CrawlDataset, StudyConfig};
use cc_telemetry::CounterId;
use cc_util::{CcError, ProgressCounters};
use cc_web::{generate, SimWeb};
use serde::Serialize;

use crate::wire::{read_frame, write_frame, Frame, FrameError, PROTOCOL};

/// How the manager listens and leases.
#[derive(Debug, Clone)]
pub struct GaggleConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub bind: String,
    /// How many workers the operator plans to run — sizes progress-counter
    /// slots and log summaries; late or extra workers still work.
    pub workers_expected: usize,
    /// Walk ids per lease. Smaller leases re-balance and recover faster;
    /// larger ones amortize frame overhead.
    pub lease_walks: usize,
    /// Lease deadline in milliseconds; each heartbeat pushes it out again.
    pub lease_timeout_ms: u64,
}

impl Default for GaggleConfig {
    fn default() -> Self {
        GaggleConfig {
            bind: "127.0.0.1:0".into(),
            workers_expected: 1,
            lease_walks: 25,
            lease_timeout_ms: 3_000,
        }
    }
}

/// Optional run context for [`Manager::start`].
#[derive(Default)]
pub struct ManagerOptions {
    /// Resume from a checkpoint: its walks are kept, the truth ledger
    /// restored, and only the remaining walk ids are leased out.
    pub resume: Option<CrawlCheckpoint>,
    /// Caller-owned progress counters (the cc-obs `/progress` hook).
    /// Worker `w`'s walks land in slot `w % n_workers`.
    pub progress: Option<Arc<ProgressCounters>>,
}

/// Counters describing one manager run (mirrored into the telemetry
/// session's `gaggle.*` counters, summarized by the CLI, and asserted
/// on by the equivalence tests).
#[derive(Debug, Clone, Default, Serialize)]
pub struct GaggleStats {
    /// Workers that completed the Hello/Welcome handshake.
    pub workers_connected: u64,
    /// Workers whose connection ended (Goodbye or death).
    pub workers_disconnected: u64,
    /// Leases issued, including re-issues.
    pub leases_issued: u64,
    /// Leases whose ShardResult was accepted.
    pub leases_completed: u64,
    /// Leases expired by a missed deadline.
    pub leases_expired: u64,
    /// Leases re-issued after expiry or worker death.
    pub leases_reissued: u64,
    /// ShardResults dropped because their lease was no longer live
    /// (the zombie-worker double-count guard).
    pub results_dropped_stale: u64,
    /// Frames written to workers.
    pub frames_sent: u64,
    /// Frames read from workers.
    pub frames_received: u64,
    /// Bytes written to workers (frame overhead measurement).
    pub bytes_sent: u64,
    /// Bytes read from workers.
    pub bytes_received: u64,
}

/// What a finished manager hands back.
pub struct ManagerOutcome {
    /// The manager's world, truth ledger fully converged.
    pub web: Arc<SimWeb>,
    /// The assembled dataset — byte-identical to a single-process run.
    pub dataset: CrawlDataset,
    /// Run counters.
    pub stats: GaggleStats,
}

/// One lease waiting to be issued (or re-issued).
struct PendingLease {
    ids: Vec<u32>,
    reissue: bool,
}

/// One lease currently held by a worker.
struct OutstandingLease {
    ids: Vec<u32>,
    worker: u32,
    deadline: Instant,
}

/// Everything the handler threads share, guarded by one mutex + condvar.
struct LeaseState {
    pending: VecDeque<PendingLease>,
    outstanding: BTreeMap<u64, OutstandingLease>,
    next_lease_id: u64,
    done: bool,
    base: CrawlDataset,
    shards: Vec<CrawlDataset>,
    walks_done: usize,
    last_saved_bucket: usize,
    stats: GaggleStats,
    error: Option<CcError>,
}

struct Shared {
    study: StudyConfig,
    web: Arc<SimWeb>,
    cfg: GaggleConfig,
    progress: Option<Arc<ProgressCounters>>,
    state: Mutex<LeaseState>,
    cv: Condvar,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, LeaseState> {
        self.state.lock().expect("gaggle lease state poisoned")
    }

    fn done(&self) -> bool {
        self.lock().done
    }

    /// Write one frame and account for it.
    fn send(&self, w: &mut TcpStream, frame: &Frame) -> Result<(), FrameError> {
        let n = write_frame(w, frame)?;
        let mut st = self.lock();
        st.stats.frames_sent += 1;
        st.stats.bytes_sent += n as u64;
        drop(st);
        cc_telemetry::counter_id(CounterId::GAGGLE_FRAMES_SENT, 1);
        cc_telemetry::counter_id(CounterId::GAGGLE_BYTES_SENT, n as u64);
        Ok(())
    }

    /// Read one frame and account for it (timeouts pass through
    /// unaccounted — nothing crossed the wire).
    fn recv(&self, r: &mut TcpStream) -> Result<Frame, FrameError> {
        let (frame, n) = read_frame(r)?;
        let mut st = self.lock();
        st.stats.frames_received += 1;
        st.stats.bytes_received += n as u64;
        drop(st);
        cc_telemetry::counter_id(CounterId::GAGGLE_FRAMES_RECEIVED, 1);
        cc_telemetry::counter_id(CounterId::GAGGLE_BYTES_RECEIVED, n as u64);
        Ok(frame)
    }

    /// Move every outstanding lease past its deadline back to pending.
    /// Any handler may sweep; the condvar wakes the rest.
    fn sweep_expired(&self, st: &mut LeaseState) {
        let now = Instant::now();
        let expired: Vec<u64> = st
            .outstanding
            .iter()
            .filter(|(_, l)| l.deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            let lease = st.outstanding.remove(&id).expect("expired lease vanished");
            st.stats.leases_expired += 1;
            cc_telemetry::counter_id(CounterId::GAGGLE_LEASES_EXPIRED, 1);
            cc_telemetry::event(
                "gaggle.lease.expired",
                &[("worker", &lease.worker.to_string())],
            );
            st.pending.push_back(PendingLease {
                ids: lease.ids,
                reissue: true,
            });
        }
        if !st.pending.is_empty() {
            self.cv.notify_all();
        }
    }

    /// Requeue every lease held by `worker` (its connection died).
    fn requeue_worker(&self, worker: u32) {
        let mut st = self.lock();
        let held: Vec<u64> = st
            .outstanding
            .iter()
            .filter(|(_, l)| l.worker == worker)
            .map(|(&id, _)| id)
            .collect();
        for id in held {
            let lease = st.outstanding.remove(&id).expect("held lease vanished");
            st.pending.push_back(PendingLease {
                ids: lease.ids,
                reissue: true,
            });
        }
        st.stats.workers_disconnected += 1;
        cc_telemetry::counter_id(CounterId::GAGGLE_WORKERS_DISCONNECTED, 1);
        self.cv.notify_all();
    }

    /// Block until a lease is issuable (returns its id + ids) or the run
    /// completes (returns `None`). Sweeps expired deadlines while waiting.
    fn next_lease(&self, worker: u32) -> Option<(u64, Vec<u32>)> {
        let mut st = self.lock();
        loop {
            if st.done {
                return None;
            }
            self.sweep_expired(&mut st);
            if let Some(p) = st.pending.pop_front() {
                let lease_id = st.next_lease_id;
                st.next_lease_id += 1;
                st.outstanding.insert(
                    lease_id,
                    OutstandingLease {
                        ids: p.ids.clone(),
                        worker,
                        deadline: Instant::now() + Duration::from_millis(self.cfg.lease_timeout_ms),
                    },
                );
                st.stats.leases_issued += 1;
                cc_telemetry::counter_id(CounterId::GAGGLE_LEASES_ISSUED, 1);
                if p.reissue {
                    st.stats.leases_reissued += 1;
                    cc_telemetry::counter_id(CounterId::GAGGLE_LEASES_REISSUED, 1);
                }
                return Some((lease_id, p.ids));
            }
            if st.outstanding.is_empty() {
                // Nothing pending, nothing outstanding: the run is done.
                st.done = true;
                self.cv.notify_all();
                return None;
            }
            let (guard, _timeout) = self
                .cv
                .wait_timeout(st, Duration::from_millis(100))
                .expect("gaggle lease state poisoned");
            st = guard;
        }
    }

    /// Renew `lease_id`'s deadline if it is still this worker's.
    fn heartbeat(&self, worker: u32, lease_id: u64) {
        let mut st = self.lock();
        if let Some(l) = st.outstanding.get_mut(&lease_id) {
            if l.worker == worker {
                l.deadline = Instant::now() + Duration::from_millis(self.cfg.lease_timeout_ms);
            }
        }
    }

    /// Accept (or drop) a ShardResult. Returns `true` if accepted.
    fn accept_result(
        &self,
        worker: u32,
        lease_id: u64,
        shard: CrawlDataset,
        truth: &cc_web::TruthLog,
    ) -> bool {
        let mut st = self.lock();
        let live = st
            .outstanding
            .get(&lease_id)
            .is_some_and(|l| l.worker == worker);
        if !live {
            // A zombie: this issuance was expired and re-issued (or never
            // existed). Accepting it would double-count the walks.
            st.stats.results_dropped_stale += 1;
            cc_telemetry::counter_id(CounterId::GAGGLE_RESULTS_DROPPED_STALE, 1);
            return false;
        }
        st.outstanding.remove(&lease_id);
        st.stats.leases_completed += 1;
        cc_telemetry::counter_id(CounterId::GAGGLE_LEASES_COMPLETED, 1);

        // Idempotent converge: identical mints collapse, so absorbing
        // every worker's full snapshot yields the single-process ledger.
        self.web.absorb_truth(truth);
        if let Some(p) = &self.progress {
            let slot = worker as usize % p.n_workers().max(1);
            for walk in &shard.walks {
                p.record_walk(slot, walk.steps.len() as u64);
            }
        }
        st.walks_done += shard.walks.len();
        st.shards.push(shard);

        // Periodic checkpoint on the same config knob a single-process
        // run uses. Cadence is per accepted lease (not per walk), so
        // intermediate files differ run-to-run — only the final artifacts
        // are byte-pinned, and the final checkpoint is written at join.
        if let Some(policy) = &self.study.checkpoint {
            let total = st.base.walks.len() + st.walks_done;
            let bucket = total / policy.every.max(1);
            if bucket > st.last_saved_bucket {
                st.last_saved_bucket = bucket;
                let merged = CrawlDataset::merge(
                    std::iter::once(st.base.clone()).chain(st.shards.iter().cloned()),
                );
                let ck = CrawlCheckpoint::new(&self.study, merged, self.web.truth_snapshot());
                if let Err(e) = ck.save(&policy.path) {
                    st.error.get_or_insert(e);
                }
            }
        }

        if st.pending.is_empty() && st.outstanding.is_empty() {
            st.done = true;
        }
        self.cv.notify_all();
        true
    }
}

/// A running manager. [`Manager::join`] blocks until every walk id has an
/// accepted result, then assembles the final dataset.
pub struct Manager {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<Result<ManagerOutcome, CcError>>,
}

impl Manager {
    /// Bind, partition the walk-id space, and start accepting workers.
    pub fn start(
        study: &StudyConfig,
        cfg: GaggleConfig,
        opts: ManagerOptions,
    ) -> Result<Manager, CcError> {
        study.validate()?;
        let web = Arc::new(generate(&study.web));
        let seeders_len = web.seeder_urls().len();
        let total = study.total_walks().min(seeders_len);

        let (base, mut ids) = match opts.resume {
            Some(ck) => {
                ck.validate_against(study)?;
                web.absorb_truth(&ck.truth);
                let remaining = ck.remaining();
                cc_telemetry::counter("crawl.resume.walks_restored", ck.partial.walks.len() as u64);
                cc_telemetry::counter("crawl.resume.walks_remaining", remaining.len() as u64);
                (ck.partial, remaining)
            }
            None => (CrawlDataset::default(), (0..total as u32).collect()),
        };
        ids.retain(|&id| (id as usize) < seeders_len);

        let lease_walks = cfg.lease_walks.max(1);
        let pending: VecDeque<PendingLease> = ids
            .chunks(lease_walks)
            .map(|c| PendingLease {
                ids: c.to_vec(),
                reissue: false,
            })
            .collect();
        let every = study.checkpoint.as_ref().map_or(1, |p| p.every.max(1));
        let state = LeaseState {
            done: pending.is_empty(),
            pending,
            outstanding: BTreeMap::new(),
            next_lease_id: 1,
            last_saved_bucket: base.walks.len() / every,
            base,
            shards: Vec::new(),
            walks_done: 0,
            stats: GaggleStats::default(),
            error: None,
        };

        let listener =
            TcpListener::bind(&cfg.bind).map_err(|e| CcError::io(&cfg.bind, e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| CcError::io(&cfg.bind, e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| CcError::io(&cfg.bind, e))?;

        let shared = Arc::new(Shared {
            study: study.clone(),
            web,
            cfg,
            progress: opts.progress,
            state: Mutex::new(state),
            cv: Condvar::new(),
        });
        let thread = std::thread::spawn(move || run_manager(listener, shared));
        Ok(Manager { addr, thread })
    }

    /// The address workers should `--connect` to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for completion and assemble the final dataset.
    pub fn join(self) -> Result<ManagerOutcome, CcError> {
        self.thread.join().expect("gaggle manager thread panicked")
    }
}

fn run_manager(
    listener: TcpListener,
    shared: Arc<Shared>,
) -> Result<ManagerOutcome, CcError> {
    let mut handlers = Vec::new();
    let mut next_worker_id = 0u32;
    while !shared.done() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let worker_id = next_worker_id;
                next_worker_id += 1;
                let sh = Arc::clone(&shared);
                handlers.push(std::thread::spawn(move || handle_worker(sh, stream, worker_id)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                let mut st = shared.lock();
                st.error.get_or_insert(CcError::io("gaggle accept", e));
                st.done = true;
                shared.cv.notify_all();
            }
        }
    }
    for h in handlers {
        let _ = h.join();
    }

    let mut st = shared.lock();
    if let Some(e) = st.error.take() {
        return Err(e);
    }
    let base = std::mem::take(&mut st.base);
    let shards = std::mem::take(&mut st.shards);
    let stats = st.stats.clone();
    drop(st);

    let dataset = CrawlDataset::merge(std::iter::once(base).chain(shards));
    if let Some(policy) = &shared.study.checkpoint {
        // Final emission, same as a single-process run: the file on disk
        // always ends holding the complete study.
        let ck = CrawlCheckpoint::new(&shared.study, dataset.clone(), shared.web.truth_snapshot());
        ck.save(&policy.path)?;
    }
    Ok(ManagerOutcome {
        web: Arc::clone(&shared.web),
        dataset,
        stats,
    })
}

/// How long a handler's socket reads block before it re-checks shutdown
/// flags and lease deadlines.
const READ_POLL: Duration = Duration::from_millis(250);

/// Most `READ_POLL` timeouts tolerated while draining a goodbye.
const DRAIN_PATIENCE: u32 = 40;

/// Run complete: say goodbye, then drain the worker's parting
/// Telemetry/Goodbye so its counters land in the manager's report.
fn say_goodbye(shared: &Shared, stream: &mut TcpStream) {
    let _ = shared.send(
        stream,
        &Frame::Goodbye {
            reason: "complete".into(),
        },
    );
    let mut patience = DRAIN_PATIENCE;
    loop {
        match shared.recv(stream) {
            Ok(Frame::Telemetry { counters }) => {
                for (name, n) in &counters {
                    cc_telemetry::counter(name, *n);
                }
            }
            Ok(Frame::Goodbye { .. }) | Err(FrameError::Closed) => break,
            Ok(_) => {}
            Err(FrameError::TimedOut) if patience > 0 => patience -= 1,
            Err(_) => break,
        }
    }
    let mut st = shared.lock();
    st.stats.workers_disconnected += 1;
    drop(st);
    cc_telemetry::counter_id(CounterId::GAGGLE_WORKERS_DISCONNECTED, 1);
}

fn handle_worker(shared: Arc<Shared>, mut stream: TcpStream, worker_id: u32) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));

    // Handshake: Hello (with the exact protocol string) before anything.
    let hello = loop {
        match shared.recv(&mut stream) {
            Ok(f) => break f,
            Err(FrameError::TimedOut) => {
                if shared.done() {
                    return;
                }
            }
            Err(_) => return,
        }
    };
    match hello {
        Frame::Hello { protocol, label } if protocol == PROTOCOL => {
            cc_telemetry::event(
                "gaggle.worker.connected",
                &[("worker", &worker_id.to_string()), ("label", &label)],
            );
        }
        Frame::Hello { protocol, .. } => {
            let _ = shared.send(
                &mut stream,
                &Frame::Goodbye {
                    reason: format!("protocol mismatch: {protocol} (want {PROTOCOL})"),
                },
            );
            return;
        }
        other => {
            let _ = shared.send(
                &mut stream,
                &Frame::Goodbye {
                    reason: format!("expected Hello, got {}", other.name()),
                },
            );
            return;
        }
    }
    {
        let mut st = shared.lock();
        st.stats.workers_connected += 1;
    }
    cc_telemetry::counter_id(CounterId::GAGGLE_WORKERS_CONNECTED, 1);
    if shared
        .send(
            &mut stream,
            &Frame::Welcome {
                worker_id,
                study: shared.study.clone(),
            },
        )
        .is_err()
    {
        shared.requeue_worker(worker_id);
        return;
    }

    loop {
        let Some((lease_id, walk_ids)) = shared.next_lease(worker_id) else {
            say_goodbye(&shared, &mut stream);
            return;
        };

        if shared
            .send(
                &mut stream,
                &Frame::Lease {
                    lease_id,
                    walk_ids,
                    deadline_ms: shared.cfg.lease_timeout_ms,
                },
            )
            .is_err()
        {
            shared.requeue_worker(worker_id);
            return;
        }

        // Wait for this lease's result (heartbeats renew it meanwhile).
        loop {
            match shared.recv(&mut stream) {
                Ok(Frame::Heartbeat { lease_id, .. }) => {
                    shared.heartbeat(worker_id, lease_id);
                }
                Ok(Frame::ShardResult {
                    lease_id,
                    shard,
                    truth,
                }) => {
                    shared.accept_result(worker_id, lease_id, shard, &truth);
                    break; // accepted or zombie-dropped: fetch the next lease
                }
                Ok(Frame::Telemetry { counters }) => {
                    for (name, n) in &counters {
                        cc_telemetry::counter(name, *n);
                    }
                }
                Ok(Frame::Goodbye { .. }) | Err(FrameError::Closed) => {
                    shared.requeue_worker(worker_id);
                    return;
                }
                Ok(_) => {} // Hello twice etc.: ignore
                Err(FrameError::TimedOut) => {
                    let mut st = shared.lock();
                    if st.done {
                        drop(st);
                        say_goodbye(&shared, &mut stream);
                        return;
                    }
                    shared.sweep_expired(&mut st);
                    if !st.outstanding.contains_key(&lease_id) {
                        // Our lease expired under us (swept here or by a
                        // peer handler): stop waiting, ask for new work.
                        drop(st);
                        break;
                    }
                }
                Err(_) => {
                    shared.requeue_worker(worker_id);
                    return;
                }
            }
        }
    }
}
