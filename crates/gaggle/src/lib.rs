//! # cc-gaggle
//!
//! Distributed manager/worker crawling over TCP with lease-based fault
//! recovery — the process-level twin of the in-process work-stealing
//! executor, named for goose's gaggle architecture.
//!
//! * [`wire`] — the `cc-gaggle/v1` frame codec: length-prefixed JSON
//!   frames (Hello/Welcome/Lease/Heartbeat/ShardResult/Telemetry/Goodbye)
//!   with bounded reads and explicit decode errors, sharing cc-http's
//!   transport-error classification.
//! * [`manager`] — partitions the walk-id space into leases, streams them
//!   to workers, expires and re-issues leases whose holder dies (fresh
//!   lease ids make stale "zombie" results droppable), and assembles the
//!   shards through the same deterministic merge a single-process run
//!   uses — so the output is byte-identical at any worker count, any
//!   lease interleaving, and any kill history.
//! * [`worker`] — dials in, regenerates the world from the Welcome's
//!   study config, crawls each lease through the existing parallel
//!   executor, and ships dataset shards + truth snapshots back.
//!
//! Checkpoint/resume reuses cc-checkpoint/v1 unchanged: the manager saves
//! on the study's checkpoint policy and resumes from the same files a
//! single-process run writes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod manager;
pub mod wire;
pub mod worker;

pub use manager::{GaggleConfig, GaggleStats, Manager, ManagerOptions, ManagerOutcome};
pub use wire::{read_frame, write_frame, Frame, FrameError, MAGIC, MAX_FRAME_BYTES, PROTOCOL};
pub use worker::{run_worker, WorkerConfig, WorkerSummary};

#[cfg(test)]
mod tests {
    use super::*;
    use cc_crawler::{crawl_study, StudyConfig};
    use cc_web::generate;

    fn small_study(workers: usize) -> StudyConfig {
        StudyConfig::builder()
            .web(cc_web::WebConfig::small())
            .seed(5)
            .steps(3)
            .walks(12)
            .failure_rate(0.1)
            .workers(workers)
            .build()
            .unwrap()
    }

    /// In-process end-to-end: a manager and two thread-workers over real
    /// loopback TCP produce the single-process dataset exactly.
    #[test]
    fn gaggle_matches_single_process() {
        let study = small_study(2);
        let web = generate(&study.web);
        let solo = crawl_study(&web, &study).unwrap();

        let manager = Manager::start(
            &study,
            GaggleConfig {
                lease_walks: 4,
                workers_expected: 2,
                ..GaggleConfig::default()
            },
            ManagerOptions::default(),
        )
        .unwrap();
        let addr = manager.addr().to_string();
        let joins: Vec<_> = (0..2)
            .map(|i| {
                let cfg = WorkerConfig {
                    connect: addr.clone(),
                    label: format!("test-worker-{i}"),
                };
                std::thread::spawn(move || run_worker(&cfg))
            })
            .collect();
        let outcome = manager.join().unwrap();
        let mut total_walks = 0;
        for j in joins {
            let summary = j.join().unwrap().unwrap();
            total_walks += summary.walks;
        }

        assert_eq!(outcome.dataset, solo);
        assert_eq!(
            outcome.dataset.to_json().unwrap(),
            solo.to_json().unwrap(),
            "assembled dataset bytes diverged"
        );
        assert_eq!(total_walks, 12, "every walk crawled exactly once");
        assert_eq!(outcome.stats.leases_issued, 3);
        assert_eq!(outcome.stats.leases_completed, 3);
        assert_eq!(outcome.stats.results_dropped_stale, 0);
        // Truth ledgers converge (solo ran on `web`, gaggle on its own).
        let gaggle_truth = outcome.web.truth_snapshot();
        let solo_truth = web.truth_snapshot();
        assert_eq!(gaggle_truth.len(), solo_truth.len());
        assert_eq!(gaggle_truth.uid_count(), solo_truth.uid_count());
    }

    /// A worker speaking the wrong protocol version is turned away.
    #[test]
    fn manager_refuses_protocol_mismatch() {
        let study = small_study(1);
        let manager =
            Manager::start(&study, GaggleConfig::default(), ManagerOptions::default()).unwrap();
        let addr = manager.addr();

        let mut bad = std::net::TcpStream::connect(addr).unwrap();
        write_frame(
            &mut bad,
            &Frame::Hello {
                protocol: "cc-gaggle/v0".into(),
                label: "relic".into(),
            },
        )
        .unwrap();
        bad.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
        let (frame, _) = read_frame(&mut bad).unwrap();
        match frame {
            Frame::Goodbye { reason } => assert!(reason.contains("protocol mismatch"), "{reason}"),
            other => panic!("expected Goodbye, got {}", other.name()),
        }
        drop(bad);

        // A well-versed worker still completes the run.
        let cfg = WorkerConfig {
            connect: addr.to_string(),
            label: "good".into(),
        };
        let worker = std::thread::spawn(move || run_worker(&cfg));
        let outcome = manager.join().unwrap();
        worker.join().unwrap().unwrap();
        assert_eq!(outcome.dataset.walks.len(), 12);
    }

    /// An empty study (resume with nothing left) completes immediately.
    #[test]
    fn completed_resume_finishes_without_workers() {
        let study = small_study(1);
        let web = generate(&study.web);
        let full = crawl_study(&web, &study).unwrap();
        let ck = cc_crawler::CrawlCheckpoint::new(&study, full.clone(), web.truth_snapshot());
        let manager = Manager::start(
            &study,
            GaggleConfig::default(),
            ManagerOptions {
                resume: Some(ck),
                progress: None,
            },
        )
        .unwrap();
        let outcome = manager.join().unwrap();
        assert_eq!(outcome.dataset, full);
        assert_eq!(outcome.stats.leases_issued, 0);
    }
}
