//! cc-gaggle/v1 frame-codec properties (satellite 3 of the gaggle
//! subsystem), mirroring cc-http's `wire_roundtrip.rs`: every frame type
//! survives encode→decode identically under generated payloads, and
//! truncated / oversized / garbage-prefixed byte streams are rejected
//! with the right classification — never a panic, never a bogus frame.

use std::collections::BTreeMap;

use cc_crawler::{crawl_study, StudyConfig};
use cc_gaggle::{read_frame, write_frame, Frame, FrameError, MAGIC, MAX_FRAME_BYTES, PROTOCOL};
use cc_web::{generate, TokenTruth, TrackerId, TruthLog, WebConfig};
use proptest::prelude::*;

fn encode(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    let written = write_frame(&mut out, frame).unwrap();
    assert_eq!(written, out.len(), "write_frame must report the wire size");
    out
}

fn decode(bytes: &[u8]) -> Result<(Frame, usize), FrameError> {
    read_frame(&mut &bytes[..])
}

/// Identity plus accounting: the decoder consumes exactly the bytes the
/// encoder claimed (the two ends of the `gaggle.bytes.*` counters).
fn assert_round_trip(frame: &Frame) -> Result<(), String> {
    let bytes = encode(frame);
    let (back, consumed) = decode(&bytes).map_err(|e| e.to_string())?;
    prop_assert_eq!(consumed, bytes.len());
    prop_assert_eq!(&back, frame);
    Ok(())
}

/// Map a generated discriminant to a ground-truth label, covering every
/// `TokenTruth` variant the ledger can ship.
fn label(code: u8) -> TokenTruth {
    match code % 9 {
        0 => TokenTruth::Uid {
            tracker: None,
            fingerprint_based: false,
        },
        1 => TokenTruth::Uid {
            tracker: Some(TrackerId(u32::from(code))),
            fingerprint_based: code.is_multiple_of(2),
        },
        2 => TokenTruth::SessionId,
        3 => TokenTruth::Timestamp,
        4 => TokenTruth::WordLike,
        5 => TokenTruth::Acronym,
        6 => TokenTruth::UrlValue,
        7 => TokenTruth::Coordinate,
        _ => TokenTruth::Internal,
    }
}

proptest! {
    #[test]
    fn hello_round_trips(protocol in "[ -~]{0,24}", worker_label in "\\PC{0,32}") {
        assert_round_trip(&Frame::Hello { protocol, label: worker_label })?;
    }

    #[test]
    fn welcome_round_trips(
        worker_id in 0u32..1024,
        seed in 0u64..u64::MAX,
        steps in 1usize..12,
        walks in 0usize..500,
        workers in 1usize..9,
    ) {
        let study = StudyConfig {
            seed,
            web: cc_web::WebConfig {
                seed,
                ..cc_web::WebConfig::default()
            },
            steps,
            walks: if walks == 0 { None } else { Some(walks) },
            workers,
            ..StudyConfig::default()
        };
        assert_round_trip(&Frame::Welcome { worker_id, study })?;
    }

    #[test]
    fn lease_round_trips(
        lease_id in 0u64..u64::MAX,
        walk_ids in prop::collection::vec(0u32..u32::MAX, 0..64),
        deadline_ms in 0u64..u64::MAX,
    ) {
        assert_round_trip(&Frame::Lease { lease_id, walk_ids, deadline_ms })?;
    }

    #[test]
    fn heartbeat_round_trips(lease_id in 0u64..u64::MAX, walks_done in 0u32..u32::MAX) {
        assert_round_trip(&Frame::Heartbeat { lease_id, walks_done })?;
    }

    #[test]
    fn shard_result_round_trips(
        lease_id in 0u64..u64::MAX,
        mints in prop::collection::vec(("[a-z0-9]{1,16}", 0u8..32), 0..24),
    ) {
        let mut truth = TruthLog::new();
        for (value, code) in &mints {
            truth.note(value, label(*code));
        }
        assert_round_trip(&Frame::ShardResult {
            lease_id,
            shard: cc_crawler::CrawlDataset::default(),
            truth,
        })?;
    }

    #[test]
    fn telemetry_round_trips(
        entries in prop::collection::vec(("[a-z.]{1,24}", 0u64..u64::MAX), 0..12),
    ) {
        let counters: BTreeMap<String, u64> = entries.into_iter().collect();
        assert_round_trip(&Frame::Telemetry { counters })?;
    }

    #[test]
    fn goodbye_round_trips(reason in "\\PC{0,64}") {
        assert_round_trip(&Frame::Goodbye { reason })?;
    }

    #[test]
    fn truncation_is_closed_at_the_boundary_and_truncated_inside(cut in 0usize..4096) {
        let bytes = encode(&Frame::Lease {
            lease_id: 7,
            walk_ids: (0..40).collect(),
            deadline_ms: 3_000,
        });
        let cut = cut.min(bytes.len());
        match decode(&bytes[..cut]) {
            Ok((frame, consumed)) => {
                prop_assert_eq!(cut, bytes.len(), "decoded from a truncated stream");
                prop_assert_eq!(consumed, cut);
                prop_assert!(matches!(frame, Frame::Lease { lease_id: 7, .. }));
            }
            Err(FrameError::Closed) => prop_assert_eq!(cut, 0, "Closed only before byte one"),
            Err(FrameError::Truncated) => {
                prop_assert!(cut > 0 && cut < bytes.len(), "Truncated only mid-frame")
            }
            Err(other) => return Err(format!("unexpected classification: {other}")),
        }
    }

    #[test]
    fn garbage_prefix_is_bad_magic_not_a_panic(garbage in prop::collection::vec(0u8..=255, 4..64)) {
        let result = decode(&garbage);
        if garbage[..4] != MAGIC {
            let mut want = [0u8; 4];
            want.copy_from_slice(&garbage[..4]);
            prop_assert_eq!(result.unwrap_err(), FrameError::BadMagic(want));
        } else {
            // Lucky magic: whatever follows must still classify, not panic.
            prop_assert!(result.is_err() || garbage.len() >= 9);
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_unallocated(
        over in (MAX_FRAME_BYTES + 1)..u32::MAX,
        type_byte in 1u8..8,
    ) {
        // No payload follows the header: if the decoder tried to read (or
        // allocate) `over` bytes it would hang or die, so an immediate
        // TooLarge proves the bound is checked first.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(type_byte);
        bytes.extend_from_slice(&over.to_be_bytes());
        prop_assert_eq!(decode(&bytes).unwrap_err(), FrameError::TooLarge(over));
    }

    #[test]
    fn garbage_payload_is_bad_payload_not_a_panic(
        payload in "\\PC{0,64}",
        type_byte in 1u8..8,
    ) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(type_byte);
        bytes.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        bytes.extend_from_slice(payload.as_bytes());
        // Random text essentially never parses as a frame schema; when it
        // does not, the error names the frame type it failed to decode as.
        if let Err(e) = decode(&bytes) {
            prop_assert!(
                matches!(e, FrameError::BadPayload { .. }),
                "expected BadPayload, got {}", e
            );
        }
    }
}

/// A ShardResult carrying a real crawled shard (not a synthetic default)
/// survives the wire bit-for-bit — the frame the whole gaggle's
/// byte-identity guarantee rides on.
#[test]
fn crawled_shard_result_round_trips_exactly() {
    let study = StudyConfig::builder()
        .web(WebConfig::small())
        .seed(5)
        .steps(3)
        .walks(6)
        .failure_rate(0.1)
        .build()
        .unwrap();
    let web = generate(&study.web);
    let shard = crawl_study(&web, &study).unwrap();
    let frame = Frame::ShardResult {
        lease_id: 1,
        shard: shard.clone(),
        truth: web.truth_snapshot(),
    };
    let bytes = encode(&frame);
    let (back, consumed) = decode(&bytes).unwrap();
    assert_eq!(consumed, bytes.len());
    match back {
        Frame::ShardResult { shard: got, .. } => {
            assert_eq!(got.to_json().unwrap(), shard.to_json().unwrap());
        }
        other => panic!("wrong frame back: {}", other.name()),
    }
}

/// Frames stream back-to-back on one connection; each read consumes
/// exactly one frame and a clean EOF after the last is `Closed`.
#[test]
fn pipelined_frames_decode_in_sequence() {
    let first = Frame::Heartbeat {
        lease_id: 1,
        walks_done: 3,
    };
    let second = Frame::Goodbye {
        reason: "complete".into(),
    };
    let hello = Frame::Hello {
        protocol: PROTOCOL.into(),
        label: "w".into(),
    };
    let mut bytes = encode(&hello);
    bytes.extend(encode(&first));
    bytes.extend(encode(&second));

    let mut stream = bytes.as_slice();
    assert_eq!(read_frame(&mut stream).unwrap().0, hello);
    assert_eq!(read_frame(&mut stream).unwrap().0, first);
    assert_eq!(read_frame(&mut stream).unwrap().0, second);
    assert_eq!(read_frame(&mut stream).unwrap_err(), FrameError::Closed);
}
