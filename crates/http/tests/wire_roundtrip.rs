//! Wire-codec round-trip and robustness tests (satellite 1 of the serving
//! subsystem): parse↔serialize identity over header order and case,
//! `Content-Length` edge cases, and fuzz-style decoding that must never
//! panic on malformed input.

use std::io::BufReader;

use cc_http::wire::{WireError, MAX_LINE_BYTES};
use cc_http::{HeaderMap, Method, PageBody, Request, Response, SetCookie, StatusCode};
use cc_url::Url;
use proptest::prelude::*;

fn decode_request(bytes: &[u8]) -> Result<Request, WireError> {
    Request::read_from(&mut BufReader::new(bytes))
}

fn decode_response(bytes: &[u8]) -> Result<Response, WireError> {
    Response::read_from(&mut BufReader::new(bytes))
}

fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    req.write_to(&mut out).unwrap();
    out
}

fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    resp.write_to(&mut out).unwrap();
    out
}

#[test]
fn request_identity_preserves_header_order() {
    let url = Url::parse("http://127.0.0.1:9000/smugglers?role=dedicated&limit=3").unwrap();
    let mut forward = Request::navigation(url.clone());
    forward.headers.append("x-first", "1");
    forward.headers.append("x-second", "2");
    forward.headers.append("accept", "application/json");

    let mut reversed = Request::navigation(url);
    reversed.headers.append("accept", "application/json");
    reversed.headers.append("x-second", "2");
    reversed.headers.append("x-first", "1");

    let forward_back = decode_request(&encode_request(&forward)).unwrap();
    let reversed_back = decode_request(&encode_request(&reversed)).unwrap();
    assert_eq!(forward_back, forward);
    assert_eq!(reversed_back, reversed);
    // Order is data, not noise: the two encodings differ.
    assert_ne!(encode_request(&forward), encode_request(&reversed));
}

#[test]
fn decode_is_case_insensitive_and_canonicalizing() {
    let raw = b"GET /report HTTP/1.1\r\n\
                HOST: Example.com:8080\r\n\
                Accept: application/json\r\n\
                X-MiXeD-CaSe: kept\r\n\r\n";
    let req = decode_request(raw).unwrap();
    assert_eq!(req.url.host.as_str(), "example.com");
    assert_eq!(req.url.port, Some(8080));
    assert_eq!(req.headers.get("accept"), Some("application/json"));
    assert_eq!(req.headers.get("x-mixed-case"), Some("kept"));
    // Names are canonicalized to lowercase, so serialize∘parse is a
    // fixed point even though the input was mixed-case.
    let once = encode_request(&req);
    let twice = encode_request(&decode_request(&once).unwrap());
    assert_eq!(once, twice);
    assert!(std::str::from_utf8(&once).unwrap().contains("x-mixed-case: kept\r\n"));
}

#[test]
fn response_zero_length_body_round_trips_as_empty() {
    let resp = Response::status_only(StatusCode::NO_CONTENT);
    let bytes = encode_response(&resp);
    assert!(std::str::from_utf8(&bytes).unwrap().contains("content-length: 0\r\n"));
    let back = decode_response(&bytes).unwrap();
    assert_eq!(back.body, PageBody::Empty);
    assert_eq!(back, resp);
}

#[test]
fn response_missing_content_length_is_411() {
    let err = decode_response(b"HTTP/1.1 200 OK\r\netag: \"x\"\r\n\r\n").unwrap_err();
    assert_eq!(err, WireError::LengthRequired);
    assert_eq!(err.status(), StatusCode::LENGTH_REQUIRED);
}

#[test]
fn request_missing_content_length_means_empty_body() {
    // RFC 7230 §3.3.3: requests default to a zero-length body, so a bare
    // `curl -X POST http://…/shutdown` (which sends no content-length)
    // decodes cleanly instead of earning a 411.
    let req = decode_request(b"POST /shutdown HTTP/1.1\r\nhost: a.com\r\n\r\n").unwrap();
    assert_eq!(req.url.path, "/shutdown");
    assert_eq!(req.method, Method::Post);
}

#[test]
fn oversized_header_line_is_431_for_both_codecs() {
    let huge = "x".repeat(MAX_LINE_BYTES + 10);
    let req_raw = format!("GET / HTTP/1.1\r\nhost: a.com\r\nx-big: {huge}\r\n\r\n");
    let err = decode_request(req_raw.as_bytes()).unwrap_err();
    assert_eq!(err, WireError::HeaderTooLarge);
    assert_eq!(err.status(), StatusCode::HEADER_FIELDS_TOO_LARGE);

    let resp_raw = format!("HTTP/1.1 200 OK\r\nx-big: {huge}\r\ncontent-length: 0\r\n\r\n");
    let err = decode_response(resp_raw.as_bytes()).unwrap_err();
    assert_eq!(err.status(), StatusCode::HEADER_FIELDS_TOO_LARGE);
}

#[test]
fn set_cookie_headers_reconstruct_parsed_cookies() {
    let resp = Response::raw(StatusCode::OK, "ok")
        .with_set_cookie(SetCookie::session("sid", "abc"))
        .with_set_cookie(SetCookie::session("uid", "xyz"));
    let back = decode_response(&encode_response(&resp)).unwrap();
    assert_eq!(back.set_cookies.len(), 2);
    assert_eq!(back, resp);
}

#[test]
fn pipelined_messages_decode_in_sequence() {
    let mut bytes = encode_request(&Request::navigation(
        Url::parse("http://h.test/healthz").unwrap(),
    ));
    bytes.extend(encode_request(&Request::navigation(
        Url::parse("http://h.test/report").unwrap(),
    )));
    let mut reader = BufReader::new(bytes.as_slice());
    let first = Request::read_from(&mut reader).unwrap();
    let second = Request::read_from(&mut reader).unwrap();
    assert_eq!(first.url.path, "/healthz");
    assert_eq!(second.url.path, "/report");
    // Clean EOF after the final message is the keep-alive exit signal.
    assert_eq!(Request::read_from(&mut reader).unwrap_err(), WireError::Closed);
}

/// Build a header list safe for identity testing: names from a charset
/// that cannot collide with framing headers (`host`, `content-length`,
/// `set-cookie`), values without edge whitespace.
fn build_headers(pairs: &[(String, String)]) -> HeaderMap {
    let mut headers = HeaderMap::new();
    for (name, value) in pairs {
        headers.append(name, value.trim());
    }
    headers
}

proptest! {
    #[test]
    fn request_round_trip_identity(
        path_seg in "[a-z0-9]{1,12}",
        q_key in "[a-z0-9]{1,8}",
        q_val in "[a-z0-9]{0,8}",
        port in 1024u16..65535,
        pairs in proptest::collection::vec(("[a-d0-9-]{1,10}", "\\PC{0,32}"), 0..8),
    ) {
        let url = Url::parse(&format!(
            "http://svc.test:{port}/{path_seg}?{q_key}={q_val}"
        )).unwrap();
        let mut req = Request::navigation(url);
        req.headers = build_headers(&pairs);
        let back = decode_request(&encode_request(&req)).unwrap();
        prop_assert_eq!(back, req);
    }

    #[test]
    fn response_round_trip_identity(
        code in 200u16..600,
        body in "\\PC{0,64}",
        pairs in proptest::collection::vec(("[a-d0-9-]{1,10}", "\\PC{0,32}"), 0..8),
    ) {
        let mut resp = if body.is_empty() {
            Response::status_only(StatusCode(code))
        } else {
            Response::raw(StatusCode(code), body)
        };
        resp.headers = build_headers(&pairs);
        let back = decode_response(&encode_response(&resp)).unwrap();
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn arbitrary_input_never_panics_either_codec(garbage in "\\PC{0,128}") {
        let _ = decode_request(garbage.as_bytes());
        let _ = decode_response(garbage.as_bytes());
    }

    #[test]
    fn malformed_framing_never_panics(
        lines in proptest::collection::vec("\\PC{0,40}", 0..10),
        trailer in "\\PC{0,40}",
    ) {
        // Random CRLF-framed lines, with and without a terminating blank
        // line, exercise the header loop and body framing paths.
        let mut raw = lines.join("\r\n");
        raw.push_str("\r\n\r\n");
        raw.push_str(&trailer);
        let _ = decode_request(raw.as_bytes());
        let _ = decode_response(raw.as_bytes());
    }

    #[test]
    fn truncated_valid_messages_never_panic(cut in 0usize..200) {
        let resp = Response::raw(StatusCode::OK, "{\"walks\":[1,2,3]}");
        let bytes = encode_response(&resp);
        let cut = cut.min(bytes.len());
        let result = decode_response(&bytes[..cut]);
        if cut == bytes.len() {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }
}
