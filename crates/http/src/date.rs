//! HTTP-date (RFC 1123) parsing and formatting.
//!
//! Real `Set-Cookie` headers carry `Expires=Wed, 21 Oct 2015 07:28:00 GMT`.
//! The simulator's own serialization uses the exact `@<millis>` notation,
//! but the cookie parser also accepts genuine HTTP dates so recorded
//! real-world headers can be replayed through the pipeline. Conversion uses
//! the proleptic-Gregorian civil-day algorithm (Howard Hinnant's
//! `days_from_civil`), anchored at the Unix epoch.

use cc_net::SimTime;

const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];
const WEEKDAYS: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];

/// Days from 1970-01-01 to the given civil date (may be negative).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = ((m + 9) % 12) as u64; // Mar=0 … Feb=11
    let doy = (153 * mp + 2) / 5 + (d as u64 - 1); // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe as i64 - 719_468
}

/// Civil date from days since 1970-01-01.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Parse an RFC 1123 HTTP date (`Wed, 21 Oct 2015 07:28:00 GMT`) into a
/// [`SimTime`] (milliseconds since the Unix epoch). Dates before the epoch
/// return `None` (the simulated timeline starts at 1970).
pub fn parse_http_date(s: &str) -> Option<SimTime> {
    let s = s.trim();
    // Strip the optional weekday prefix ("Wed, ").
    let rest = match s.split_once(", ") {
        Some((wd, rest)) if WEEKDAYS.contains(&wd) => rest,
        _ => s,
    };
    let mut parts = rest.split_whitespace();
    let day: u32 = parts.next()?.parse().ok()?;
    let month = parts.next()?;
    let month = MONTHS.iter().position(|m| m.eq_ignore_ascii_case(month))? as u32 + 1;
    let year: i64 = parts.next()?.parse().ok()?;
    let time = parts.next()?;
    let zone = parts.next()?;
    if zone != "GMT" && zone != "UTC" {
        return None;
    }
    let mut hms = time.split(':');
    let h: u64 = hms.next()?.parse().ok()?;
    let mi: u64 = hms.next()?.parse().ok()?;
    let sec: u64 = hms.next()?.parse().ok()?;
    if !(1..=31).contains(&day) || h > 23 || mi > 59 || sec > 60 {
        return None;
    }
    let days = days_from_civil(year, month, day);
    if days < 0 {
        return None;
    }
    let ms = (days as u64 * 86_400 + h * 3_600 + mi * 60 + sec) * 1_000;
    Some(SimTime(ms))
}

/// Format a [`SimTime`] as an RFC 1123 HTTP date.
pub fn format_http_date(t: SimTime) -> String {
    let total_secs = t.as_millis() / 1_000;
    let days = (total_secs / 86_400) as i64;
    let secs_of_day = total_secs % 86_400;
    let (y, m, d) = civil_from_days(days);
    // 1970-01-01 was a Thursday (index 3 in Mon-based week).
    let weekday = WEEKDAYS[((days + 3).rem_euclid(7)) as usize];
    format!(
        "{weekday}, {d:02} {} {y} {:02}:{:02}:{:02} GMT",
        MONTHS[(m - 1) as usize],
        secs_of_day / 3_600,
        (secs_of_day % 3_600) / 60,
        secs_of_day % 60
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_dates() {
        // The RFC's own example.
        let t = parse_http_date("Sun, 06 Nov 1994 08:49:37 GMT").unwrap();
        assert_eq!(t.as_millis() / 1000, 784_111_777);
        // The paper's crawl era.
        let t = parse_http_date("Mon, 25 Oct 2021 00:00:00 GMT").unwrap();
        assert_eq!(t.as_millis() / 1000, 1_635_120_000);
        // Epoch.
        let t = parse_http_date("Thu, 01 Jan 1970 00:00:00 GMT").unwrap();
        assert_eq!(t, SimTime(0));
    }

    #[test]
    fn weekday_prefix_optional() {
        let a = parse_http_date("Sun, 06 Nov 1994 08:49:37 GMT").unwrap();
        let b = parse_http_date("06 Nov 1994 08:49:37 GMT").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip() {
        for secs in [0u64, 784_111_777, 1_635_120_000, 2_000_000_000] {
            let t = SimTime(secs * 1000);
            let s = format_http_date(t);
            assert_eq!(parse_http_date(&s), Some(t), "roundtrip of {s}");
        }
    }

    #[test]
    fn weekday_names_correct() {
        assert!(format_http_date(SimTime(0)).starts_with("Thu, 01 Jan 1970"));
        // 2021-10-25 was a Monday.
        assert!(
            format_http_date(SimTime(1_635_120_000_000)).starts_with("Mon, 25 Oct 2021"),
            "{}",
            format_http_date(SimTime(1_635_120_000_000))
        );
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse_http_date(""), None);
        assert_eq!(parse_http_date("not a date"), None);
        assert_eq!(parse_http_date("Sun, 06 Nov 1994 08:49:37 PST"), None);
        assert_eq!(parse_http_date("Sun, 32 Nov 1994 08:49:37 GMT"), None);
        assert_eq!(parse_http_date("Sun, 06 Wug 1994 08:49:37 GMT"), None);
        assert_eq!(parse_http_date("Sun, 06 Nov 1994 25:49:37 GMT"), None);
        // Pre-epoch dates are outside the simulated timeline.
        assert_eq!(parse_http_date("Wed, 01 Jan 1969 00:00:00 GMT"), None);
    }

    #[test]
    fn civil_day_math() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2000, 3, 1), 11_017);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(11_017), (2000, 3, 1));
        // Leap-year boundary.
        assert_eq!(
            civil_from_days(days_from_civil(2024, 2, 29)),
            (2024, 2, 29)
        );
    }
}
