//! # cc-http
//!
//! The HTTP message model spoken between the simulated browser and the
//! synthetic web:
//!
//! * [`status`] — status codes with the redirect semantics the navigation
//!   engine needs (301/302/303/307/308, plus meta/JS-style redirects are
//!   modeled at the [`message`] level);
//! * [`header`] — a case-insensitive, order-preserving header map;
//! * [`cookie`] — `Cookie` / `Set-Cookie` parsing and serialization with
//!   the attributes that matter to the study (Expires/Max-Age for the
//!   lifetime baselines of §3.7.1, Domain/Path scoping, Secure/HttpOnly,
//!   SameSite);
//! * [`message`] — [`Request`] and [`Response`] plus redirect constructors;
//! * [`date`] — RFC 1123 HTTP dates, so real-world `Expires` headers can
//!   be replayed through the pipeline;
//! * [`wire`] — HTTP/1.1 byte codecs (`Request::read_from`,
//!   `Response::write_to`, …) so the same message model can travel over
//!   real sockets between `cc-serve` and `cc-loadgen`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cookie;
pub mod date;
pub mod header;
pub mod message;
pub mod status;
pub mod wire;

pub use cookie::{format_cookie_header, parse_cookie_header, Cookie, SameSite, SetCookie};
pub use header::HeaderMap;
pub use message::{Method, PageBody, Request, RequestKind, Response};
pub use status::StatusCode;
pub use wire::{classify_io, IoFault, WireError};
