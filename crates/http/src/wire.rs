//! HTTP/1.1 wire codecs for [`Request`] and [`Response`].
//!
//! Until the serving layer existed, cc-http messages only ever traveled
//! in-process between the simulated browser and the synthetic web. This
//! module gives the same message model a real byte representation so
//! `cc-serve` can speak HTTP/1.1 over `TcpListener` sockets and
//! `cc-loadgen` can drive it: request/status line, CRLF-terminated
//! headers, and `Content-Length`-framed bodies.
//!
//! ## Framing contract
//!
//! * Bodies are framed exclusively by `Content-Length` (no chunked
//!   encoding): responses must carry the header (missing → 411-class
//!   [`WireError::LengthRequired`]); requests without it have a
//!   zero-length body, per RFC 7230 §3.3.3.
//! * A zero-length body decodes to [`PageBody::Empty`]; a non-empty body
//!   decodes to [`PageBody::Raw`]. The simulator-only bodies
//!   ([`PageBody::Page`], [`PageBody::ScriptRedirect`]) have no byte form
//!   and frame as empty — the serving layer never produces them.
//! * The `host` header and `content-length` are *framing* metadata: the
//!   codec reconstructs the request [`Url`] from `host` + origin-form
//!   target and computes `content-length` from the body, so neither
//!   appears in the decoded [`HeaderMap`]. Everything else round-trips
//!   byte-for-byte in order.
//! * Header names are lowercased on decode (the [`HeaderMap`] invariant),
//!   so `parse(serialize(m))` is the identity and `serialize(parse(b))`
//!   is the canonical (lowercased) form of `b`.
//!
//! ## Limits
//!
//! Reads are bounded — [`MAX_LINE_BYTES`] per line (overflow →
//! [`WireError::HeaderTooLarge`], the 431 class), [`MAX_HEADERS`] header
//! entries, [`MAX_BODY_BYTES`] body bytes — so a malformed or malicious
//! peer cannot make the server allocate unboundedly. Every decode error
//! maps to the response status the server should shed it with via
//! [`WireError::status`].

use std::io::{BufRead, ErrorKind, Read, Write};

use cc_url::percent::encode_component;
use cc_url::Url;

use crate::cookie::SetCookie;
use crate::header::{names, HeaderMap};
use crate::message::{Method, PageBody, Request, RequestKind, Response};
use crate::status::StatusCode;

/// Longest accepted request/status/header line, in bytes (RFC 9110
/// recommends at least 8000).
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// Most header entries accepted per message.
pub const MAX_HEADERS: usize = 128;

/// Largest accepted `Content-Length`.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Everything that can go wrong reading or writing a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the connection cleanly before sending any byte of
    /// a message (normal keep-alive termination, not an error to report).
    Closed,
    /// The read timed out (idle keep-alive connection).
    TimedOut,
    /// The connection died mid-message.
    Truncated,
    /// Underlying I/O failure.
    Io(String),
    /// Unparsable request line.
    BadRequestLine(String),
    /// Unparsable status line.
    BadStatusLine(String),
    /// A method outside the model (only GET/POST exist).
    UnsupportedMethod(String),
    /// An HTTP version other than 1.0/1.1.
    UnsupportedVersion(String),
    /// A header line without a `name: value` shape.
    BadHeader(String),
    /// A line exceeded [`MAX_LINE_BYTES`].
    HeaderTooLarge,
    /// More than [`MAX_HEADERS`] header entries.
    TooManyHeaders,
    /// A framed body without a `Content-Length` header.
    LengthRequired,
    /// `Content-Length` was not a decimal length.
    BadLength(String),
    /// `Content-Length` exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
    /// The body was not valid UTF-8 (the model carries text payloads).
    BodyNotUtf8,
    /// The request target / host did not assemble into a valid URL.
    BadTarget(String),
}

impl WireError {
    /// The response status a server should answer this decode error with.
    pub fn status(&self) -> StatusCode {
        match self {
            WireError::HeaderTooLarge | WireError::TooManyHeaders => {
                StatusCode::HEADER_FIELDS_TOO_LARGE
            }
            WireError::LengthRequired => StatusCode::LENGTH_REQUIRED,
            WireError::BodyTooLarge(_) => StatusCode::CONTENT_TOO_LARGE,
            WireError::UnsupportedMethod(_) => StatusCode::METHOD_NOT_ALLOWED,
            WireError::Io(_) | WireError::Closed | WireError::TimedOut | WireError::Truncated => {
                StatusCode::INTERNAL_SERVER_ERROR
            }
            _ => StatusCode::BAD_REQUEST,
        }
    }

    /// Whether this is a peer-behavior error worth answering at all (a
    /// closed/timed-out/truncated connection has no one left to answer).
    pub fn is_answerable(&self) -> bool {
        !matches!(
            self,
            WireError::Closed | WireError::TimedOut | WireError::Truncated | WireError::Io(_)
        )
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::TimedOut => write!(f, "read timed out"),
            WireError::Truncated => write!(f, "connection died mid-message"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::BadRequestLine(l) => write!(f, "bad request line {l:?}"),
            WireError::BadStatusLine(l) => write!(f, "bad status line {l:?}"),
            WireError::UnsupportedMethod(m) => write!(f, "unsupported method {m:?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
            WireError::BadHeader(l) => write!(f, "bad header line {l:?}"),
            WireError::HeaderTooLarge => write!(f, "header line over {MAX_LINE_BYTES} bytes"),
            WireError::TooManyHeaders => write!(f, "more than {MAX_HEADERS} headers"),
            WireError::LengthRequired => write!(f, "missing content-length"),
            WireError::BadLength(v) => write!(f, "bad content-length {v:?}"),
            WireError::BodyTooLarge(n) => write!(f, "body of {n} bytes over {MAX_BODY_BYTES}"),
            WireError::BodyNotUtf8 => write!(f, "body is not valid UTF-8"),
            WireError::BadTarget(t) => write!(f, "bad request target {t:?}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Transport-level classification of a read/write [`std::io::Error`],
/// shared by every framed codec in the workspace: the HTTP/1.1 codec here
/// and the length-prefixed `cc-gaggle/v1` codec map the same error kinds
/// the same way, so timeout-retry loops behave identically across
/// protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// `WouldBlock` / `TimedOut` — a socket read deadline fired; the
    /// connection is healthy and the read can be retried.
    TimedOut,
    /// `UnexpectedEof` — the peer died mid-message.
    Truncated,
    /// `ConnectionReset` / `ConnectionAborted` / `BrokenPipe` — the peer
    /// went away between messages.
    Disconnected,
    /// Anything else.
    Other,
}

/// Classify an I/O error kind into the transport fault classes framed
/// codecs care about (the mapping [`WireError`]'s `io_error` lowers onto).
pub fn classify_io(kind: ErrorKind) -> IoFault {
    match kind {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => IoFault::TimedOut,
        ErrorKind::UnexpectedEof => IoFault::Truncated,
        ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted | ErrorKind::BrokenPipe => {
            IoFault::Disconnected
        }
        _ => IoFault::Other,
    }
}

fn io_error(e: std::io::Error) -> WireError {
    match classify_io(e.kind()) {
        IoFault::TimedOut => WireError::TimedOut,
        IoFault::Truncated => WireError::Truncated,
        // HTTP treats a reset between messages like any other I/O failure
        // (clean keep-alive termination reaches Closed via the EOF path).
        IoFault::Disconnected | IoFault::Other => WireError::Io(e.to_string()),
    }
}

/// Read one CRLF-terminated line, bounded by [`MAX_LINE_BYTES`].
/// `Ok(None)` means clean EOF before the first byte.
fn read_line(r: &mut impl BufRead) -> Result<Option<String>, WireError> {
    let mut buf = Vec::with_capacity(128);
    let mut bounded = r.take(MAX_LINE_BYTES as u64 + 1);
    let n = bounded.read_until(b'\n', &mut buf).map_err(io_error)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        // Either the line overflowed the cap or the peer died mid-line.
        return if n > MAX_LINE_BYTES {
            Err(WireError::HeaderTooLarge)
        } else {
            Err(WireError::Truncated)
        };
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map(Some).map_err(|e| {
        WireError::BadHeader(String::from_utf8_lossy(e.as_bytes()).into_owned())
    })
}

/// Read header lines up to the blank separator into a [`HeaderMap`].
fn read_headers(r: &mut impl BufRead) -> Result<HeaderMap, WireError> {
    let mut headers = HeaderMap::new();
    loop {
        let line = read_line(r)?.ok_or(WireError::Truncated)?;
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= MAX_HEADERS {
            return Err(WireError::TooManyHeaders);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| WireError::BadHeader(line.clone()))?;
        let name = name.trim();
        if name.is_empty() || name.contains(char::is_whitespace) {
            return Err(WireError::BadHeader(line.clone()));
        }
        headers.append(name, value.trim());
    }
}

/// Pull the body length out of the header map, removing the framing
/// header. `required` enforces the 411 rule.
fn take_content_length(headers: &mut HeaderMap, required: bool) -> Result<usize, WireError> {
    let Some(raw) = headers.get("content-length").map(str::to_string) else {
        return if required {
            Err(WireError::LengthRequired)
        } else {
            Ok(0)
        };
    };
    headers.remove("content-length");
    let len: usize = raw
        .trim()
        .parse()
        .map_err(|_| WireError::BadLength(raw.clone()))?;
    if len > MAX_BODY_BYTES {
        return Err(WireError::BodyTooLarge(len));
    }
    Ok(len)
}

fn read_body(r: &mut impl BufRead, len: usize) -> Result<PageBody, WireError> {
    if len == 0 {
        return Ok(PageBody::Empty);
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(io_error)?;
    String::from_utf8(buf)
        .map(PageBody::Raw)
        .map_err(|_| WireError::BodyNotUtf8)
}

/// The origin-form request target (`/path?query`) of a URL, encoded the
/// same way [`Url::to_url_string`] encodes its query.
fn origin_form(url: &Url) -> String {
    let mut out = url.path.clone();
    let query = url.query();
    if !query.is_empty() {
        out.push('?');
        let encoded: Vec<String> = query
            .iter()
            .map(|(k, v)| {
                if v.is_empty() {
                    encode_component(k)
                } else {
                    format!("{}={}", encode_component(k), encode_component(v))
                }
            })
            .collect();
        out.push_str(&encoded.join("&"));
    }
    out
}

/// The `host` header value of a URL (`host[:port]`).
fn host_header(url: &Url) -> String {
    match url.port {
        Some(p) => format!("{}:{p}", url.host),
        None => url.host.to_string(),
    }
}

impl Request {
    /// Decode one request from the reader.
    ///
    /// [`WireError::Closed`] means the peer ended the connection cleanly
    /// between messages (the keep-alive exit path).
    pub fn read_from(r: &mut impl BufRead) -> Result<Request, WireError> {
        let line = read_line(r)?.ok_or(WireError::Closed)?;
        let mut parts = line.split(' ');
        let (method_str, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
            _ => return Err(WireError::BadRequestLine(line.clone())),
        };
        if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
            return Err(WireError::UnsupportedVersion(version.to_string()));
        }
        let method = match method_str {
            "GET" => Method::Get,
            "POST" => Method::Post,
            other => return Err(WireError::UnsupportedMethod(other.to_string())),
        };
        let mut headers = read_headers(r)?;
        let host = headers
            .get("host")
            .map(str::to_string)
            .ok_or_else(|| WireError::BadTarget("missing host header".into()))?;
        headers.remove("host");
        // Requests carry no body in the model; per RFC 7230 §3.3.3 a
        // request without `content-length` has a zero-length body (so a
        // bare `curl -X POST` works), and any declared bytes are drained
        // so the next keep-alive request starts on a message boundary.
        let body_len = take_content_length(&mut headers, false)?;
        read_body(r, body_len)?;
        if !target.starts_with('/') {
            return Err(WireError::BadTarget(target.to_string()));
        }
        let url = Url::parse(&format!("http://{host}{target}"))
            .map_err(|e| WireError::BadTarget(format!("{host}{target}: {e}")))?;
        Ok(Request {
            method,
            url,
            headers,
            kind: RequestKind::Navigation,
        })
    }

    /// Encode this request onto the writer (HTTP/1.1, origin-form target,
    /// `host` derived from the URL, zero-length body).
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), WireError> {
        let mut out = String::with_capacity(256);
        out.push_str(self.method.as_str());
        out.push(' ');
        out.push_str(&origin_form(&self.url));
        out.push_str(" HTTP/1.1\r\nhost: ");
        out.push_str(&host_header(&self.url));
        out.push_str("\r\n");
        for (name, value) in self.headers.iter() {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        if self.method == Method::Post {
            out.push_str("content-length: 0\r\n");
        }
        out.push_str("\r\n");
        w.write_all(out.as_bytes()).map_err(io_error)?;
        w.flush().map_err(io_error)
    }
}

impl Response {
    /// Decode one response from the reader. Responses must be
    /// `Content-Length`-framed; `Set-Cookie` headers that parse are
    /// mirrored into [`Response::set_cookies`].
    pub fn read_from(r: &mut impl BufRead) -> Result<Response, WireError> {
        let line = read_line(r)?.ok_or(WireError::Closed)?;
        let mut parts = line.splitn(3, ' ');
        let (version, code) = match (parts.next(), parts.next()) {
            (Some(v), Some(c)) => (v, c),
            _ => return Err(WireError::BadStatusLine(line.clone())),
        };
        if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
            return Err(WireError::UnsupportedVersion(version.to_string()));
        }
        let status = code
            .parse::<u16>()
            .map(StatusCode)
            .map_err(|_| WireError::BadStatusLine(line.clone()))?;
        let mut headers = read_headers(r)?;
        let body_len = take_content_length(&mut headers, true)?;
        let body = read_body(r, body_len)?;
        let set_cookies: Vec<SetCookie> = headers
            .get_all(names::SET_COOKIE)
            .into_iter()
            .filter_map(SetCookie::parse)
            .collect();
        Ok(Response {
            status,
            headers,
            set_cookies,
            body,
        })
    }

    /// Encode this response onto the writer with `Content-Length`
    /// framing. Any `content-length` already in the header map is
    /// ignored — the length always comes from the body.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), WireError> {
        let body = self.body.wire_bytes();
        let mut out = String::with_capacity(128 + body.len());
        out.push_str("HTTP/1.1 ");
        out.push_str(&self.status.0.to_string());
        out.push(' ');
        out.push_str(self.status.reason());
        out.push_str("\r\n");
        for (name, value) in self.headers.iter() {
            if name == "content-length" {
                continue;
            }
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("content-length: ");
        out.push_str(&body.len().to_string());
        out.push_str("\r\n\r\n");
        w.write_all(out.as_bytes()).map_err(io_error)?;
        w.write_all(body).map_err(io_error)?;
        w.flush().map_err(io_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn decode_request(bytes: &[u8]) -> Result<Request, WireError> {
        Request::read_from(&mut BufReader::new(bytes))
    }

    fn decode_response(bytes: &[u8]) -> Result<Response, WireError> {
        Response::read_from(&mut BufReader::new(bytes))
    }

    #[test]
    fn request_round_trips() {
        let req = Request::navigation(
            Url::parse("http://127.0.0.1:8080/report/summary?limit=5").unwrap(),
        )
        .with_user_agent("cc-loadgen/1");
        let mut bytes = Vec::new();
        req.write_to(&mut bytes).unwrap();
        let back = decode_request(&bytes).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn response_round_trips() {
        let mut resp = Response::raw(StatusCode::OK, "{\"ok\":true}");
        resp.headers.set(names::CONTENT_TYPE, "application/json");
        resp.headers.set("etag", "\"abc123\"");
        let mut bytes = Vec::new();
        resp.write_to(&mut bytes).unwrap();
        let back = decode_response(&bytes).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn missing_length_is_411_class() {
        let err =
            decode_response(b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\n\r\n").unwrap_err();
        assert_eq!(err, WireError::LengthRequired);
        assert_eq!(err.status(), StatusCode::LENGTH_REQUIRED);
    }

    #[test]
    fn oversized_header_line_is_431_class() {
        let mut raw = b"GET / HTTP/1.1\r\nhost: a.com\r\nx-big: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_LINE_BYTES + 1));
        raw.extend_from_slice(b"\r\n\r\n");
        let err = decode_request(&raw).unwrap_err();
        assert_eq!(err, WireError::HeaderTooLarge);
        assert_eq!(err.status(), StatusCode::HEADER_FIELDS_TOO_LARGE);
    }

    #[test]
    fn clean_eof_is_closed() {
        assert_eq!(decode_request(b"").unwrap_err(), WireError::Closed);
        assert!(!WireError::Closed.is_answerable());
    }

    #[test]
    fn bodyless_post_decodes_with_or_without_length() {
        // RFC 7230 §3.3.3: a request without content-length has a
        // zero-length body — a bare `curl -X POST` sends exactly this.
        let bare = decode_request(b"POST /shutdown HTTP/1.1\r\nhost: a.com\r\n\r\n").unwrap();
        assert_eq!(bare.method, Method::Post);
        assert_eq!(bare.url.path, "/shutdown");
        let explicit =
            decode_request(b"POST /shutdown HTTP/1.1\r\nhost: a.com\r\ncontent-length: 0\r\n\r\n")
                .unwrap();
        assert_eq!(explicit, bare);
    }
}
