//! HTTP status codes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An HTTP status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 301 Moved Permanently.
    pub const MOVED_PERMANENTLY: StatusCode = StatusCode(301);
    /// 302 Found.
    pub const FOUND: StatusCode = StatusCode(302);
    /// 303 See Other.
    pub const SEE_OTHER: StatusCode = StatusCode(303);
    /// 307 Temporary Redirect.
    pub const TEMPORARY_REDIRECT: StatusCode = StatusCode(307);
    /// 308 Permanent Redirect.
    pub const PERMANENT_REDIRECT: StatusCode = StatusCode(308);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 500 Internal Server Error.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);

    /// Whether this is a 3xx redirect code.
    pub fn is_redirect(&self) -> bool {
        (300..400).contains(&self.0)
    }

    /// Whether this is a 2xx success code.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.0)
    }

    /// Canonical reason phrase for the codes the simulator uses.
    pub fn reason(&self) -> &'static str {
        match self.0 {
            200 => "OK",
            301 => "Moved Permanently",
            302 => "Found",
            303 => "See Other",
            307 => "Temporary Redirect",
            308 => "Permanent Redirect",
            404 => "Not Found",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redirect_classification() {
        assert!(StatusCode::FOUND.is_redirect());
        assert!(StatusCode::MOVED_PERMANENTLY.is_redirect());
        assert!(StatusCode(399).is_redirect());
        assert!(!StatusCode::OK.is_redirect());
        assert!(!StatusCode::NOT_FOUND.is_redirect());
    }

    #[test]
    fn success_classification() {
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::FOUND.is_success());
        assert!(!StatusCode::INTERNAL_SERVER_ERROR.is_success());
    }

    #[test]
    fn display() {
        assert_eq!(StatusCode::OK.to_string(), "200 OK");
        assert_eq!(StatusCode(302).to_string(), "302 Found");
        assert_eq!(StatusCode(599).to_string(), "599 Unknown");
    }
}
