//! HTTP status codes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An HTTP status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 204 No Content.
    pub const NO_CONTENT: StatusCode = StatusCode(204);
    /// 301 Moved Permanently.
    pub const MOVED_PERMANENTLY: StatusCode = StatusCode(301);
    /// 302 Found.
    pub const FOUND: StatusCode = StatusCode(302);
    /// 303 See Other.
    pub const SEE_OTHER: StatusCode = StatusCode(303);
    /// 307 Temporary Redirect.
    pub const TEMPORARY_REDIRECT: StatusCode = StatusCode(307);
    /// 308 Permanent Redirect.
    pub const PERMANENT_REDIRECT: StatusCode = StatusCode(308);
    /// 304 Not Modified (conditional revalidation hit).
    pub const NOT_MODIFIED: StatusCode = StatusCode(304);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 405 Method Not Allowed.
    pub const METHOD_NOT_ALLOWED: StatusCode = StatusCode(405);
    /// 411 Length Required (a framed body without `Content-Length`).
    pub const LENGTH_REQUIRED: StatusCode = StatusCode(411);
    /// 413 Content Too Large.
    pub const CONTENT_TOO_LARGE: StatusCode = StatusCode(413);
    /// 431 Request Header Fields Too Large.
    pub const HEADER_FIELDS_TOO_LARGE: StatusCode = StatusCode(431);
    /// 500 Internal Server Error.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable (load shedding).
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// Whether this is a 3xx redirect code.
    ///
    /// 304 is excluded: it is a conditional-revalidation response, not a
    /// navigation, and never carries a `Location`.
    pub fn is_redirect(&self) -> bool {
        (300..400).contains(&self.0) && self.0 != 304
    }

    /// Whether this is a 2xx success code.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.0)
    }

    /// Whether this is a 4xx client error.
    pub fn is_client_error(&self) -> bool {
        (400..500).contains(&self.0)
    }

    /// Whether this is a 5xx server error.
    pub fn is_server_error(&self) -> bool {
        (500..600).contains(&self.0)
    }

    /// Canonical reason phrase for the codes the simulator uses.
    pub fn reason(&self) -> &'static str {
        match self.0 {
            200 => "OK",
            204 => "No Content",
            301 => "Moved Permanently",
            302 => "Found",
            303 => "See Other",
            304 => "Not Modified",
            307 => "Temporary Redirect",
            308 => "Permanent Redirect",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            411 => "Length Required",
            413 => "Content Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redirect_classification() {
        assert!(StatusCode::FOUND.is_redirect());
        assert!(StatusCode::MOVED_PERMANENTLY.is_redirect());
        assert!(StatusCode(399).is_redirect());
        assert!(!StatusCode::OK.is_redirect());
        assert!(!StatusCode::NOT_FOUND.is_redirect());
        assert!(
            !StatusCode::NOT_MODIFIED.is_redirect(),
            "304 is a revalidation hit, not a navigation"
        );
    }

    #[test]
    fn error_classification() {
        assert!(StatusCode::BAD_REQUEST.is_client_error());
        assert!(StatusCode::LENGTH_REQUIRED.is_client_error());
        assert!(StatusCode::HEADER_FIELDS_TOO_LARGE.is_client_error());
        assert!(!StatusCode::OK.is_client_error());
        assert!(StatusCode::SERVICE_UNAVAILABLE.is_server_error());
        assert!(StatusCode::INTERNAL_SERVER_ERROR.is_server_error());
        assert!(!StatusCode::NOT_FOUND.is_server_error());
    }

    #[test]
    fn serving_reason_phrases() {
        assert_eq!(StatusCode::NOT_MODIFIED.to_string(), "304 Not Modified");
        assert_eq!(StatusCode::SERVICE_UNAVAILABLE.to_string(), "503 Service Unavailable");
        assert_eq!(StatusCode::LENGTH_REQUIRED.to_string(), "411 Length Required");
        assert_eq!(
            StatusCode::HEADER_FIELDS_TOO_LARGE.to_string(),
            "431 Request Header Fields Too Large"
        );
    }

    #[test]
    fn success_classification() {
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::FOUND.is_success());
        assert!(!StatusCode::INTERNAL_SERVER_ERROR.is_success());
    }

    #[test]
    fn display() {
        assert_eq!(StatusCode::OK.to_string(), "200 OK");
        assert_eq!(StatusCode(302).to_string(), "302 Found");
        assert_eq!(StatusCode(599).to_string(), "599 Unknown");
    }
}
