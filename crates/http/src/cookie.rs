//! Cookies and `Set-Cookie` handling.
//!
//! Cookie mechanics sit at the heart of the study: redirectors "are permitted
//! to store first party cookies" (§2), partitioned storage keys cookie jars
//! by top-level site, and the prior-work baselines classify session IDs by
//! cookie **lifetime** (Expires/Max-Age, §3.7.1 / §8.1). This module models
//! the name/value pair plus the attributes that influence any of that.

use cc_net::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The `SameSite` cookie attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SameSite {
    /// `SameSite=Strict`.
    Strict,
    /// `SameSite=Lax` (modern default).
    Lax,
    /// `SameSite=None` (cross-site; requires Secure).
    None,
}

impl SameSite {
    fn as_str(&self) -> &'static str {
        match self {
            SameSite::Strict => "Strict",
            SameSite::Lax => "Lax",
            SameSite::None => "None",
        }
    }
}

/// A plain cookie: the name/value pair sent in `Cookie:` headers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
}

impl Cookie {
    /// Build a cookie.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Cookie {
            name: name.into(),
            value: value.into(),
        }
    }
}

impl fmt::Display for Cookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// Parse a `Cookie:` request header into pairs.
pub fn parse_cookie_header(header: &str) -> Vec<Cookie> {
    header
        .split(';')
        .filter_map(|piece| {
            let piece = piece.trim();
            if piece.is_empty() {
                return None;
            }
            match piece.split_once('=') {
                Some((n, v)) => Some(Cookie::new(n.trim(), v.trim())),
                None => Some(Cookie::new(piece, "")),
            }
        })
        .collect()
}

/// Serialize cookies into a `Cookie:` header value.
pub fn format_cookie_header(cookies: &[Cookie]) -> String {
    let mut out = String::with_capacity(
        cookies
            .iter()
            .map(|c| c.name.len() + c.value.len() + 3)
            .sum(),
    );
    for (i, c) in cookies.iter().enumerate() {
        if i > 0 {
            out.push_str("; ");
        }
        out.push_str(&c.name);
        out.push('=');
        out.push_str(&c.value);
    }
    out
}

/// A `Set-Cookie` directive: a cookie plus storage attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetCookie {
    /// The cookie to store.
    pub cookie: Cookie,
    /// `Max-Age` relative lifetime (takes precedence over `Expires`).
    pub max_age: Option<SimDuration>,
    /// `Expires` absolute expiry on the simulated timeline.
    pub expires: Option<SimTime>,
    /// `Domain` scope (host-only when absent).
    pub domain: Option<String>,
    /// `Path` scope.
    pub path: Option<String>,
    /// `Secure` flag.
    pub secure: bool,
    /// `HttpOnly` flag.
    pub http_only: bool,
    /// `SameSite` attribute.
    pub same_site: Option<SameSite>,
}

impl SetCookie {
    /// A session cookie (no explicit lifetime).
    pub fn session(name: impl Into<String>, value: impl Into<String>) -> Self {
        SetCookie {
            cookie: Cookie::new(name, value),
            max_age: None,
            expires: None,
            domain: None,
            path: None,
            secure: false,
            http_only: false,
            same_site: None,
        }
    }

    /// A persistent cookie with a `Max-Age` lifetime.
    pub fn persistent(
        name: impl Into<String>,
        value: impl Into<String>,
        max_age: SimDuration,
    ) -> Self {
        let mut sc = SetCookie::session(name, value);
        sc.max_age = Some(max_age);
        sc
    }

    /// Builder: set the `Domain` attribute.
    #[must_use]
    pub fn with_domain(mut self, domain: &str) -> Self {
        self.domain = Some(domain.to_ascii_lowercase());
        self
    }

    /// Builder: set `SameSite`.
    #[must_use]
    pub fn with_same_site(mut self, ss: SameSite) -> Self {
        self.same_site = Some(ss);
        self
    }

    /// The instant this cookie expires, given when it was stored.
    ///
    /// `None` means a browser-session cookie (expires when the profile is
    /// discarded — for a crawler, at the end of the walk).
    pub fn expiry(&self, stored_at: SimTime) -> Option<SimTime> {
        if let Some(ma) = self.max_age {
            Some(stored_at.plus(ma))
        } else {
            self.expires
        }
    }

    /// The lifetime (expiry − storage instant), if persistent.
    pub fn lifetime(&self, stored_at: SimTime) -> Option<SimDuration> {
        self.expiry(stored_at).map(|e| e.since(stored_at))
    }

    /// Serialize as a `Set-Cookie` header value.
    pub fn to_header_value(&self) -> String {
        let mut out = self.cookie.to_string();
        if let Some(ma) = self.max_age {
            out.push_str(&format!("; Max-Age={}", ma.as_millis() / 1000));
        }
        if let Some(e) = self.expires {
            out.push_str(&format!("; Expires=@{}", e.as_millis()));
        }
        if let Some(d) = &self.domain {
            out.push_str(&format!("; Domain={d}"));
        }
        if let Some(p) = &self.path {
            out.push_str(&format!("; Path={p}"));
        }
        if self.secure {
            out.push_str("; Secure");
        }
        if self.http_only {
            out.push_str("; HttpOnly");
        }
        if let Some(ss) = self.same_site {
            out.push_str(&format!("; SameSite={}", ss.as_str()));
        }
        out
    }

    /// Parse a `Set-Cookie` header value.
    ///
    /// `Expires` uses the simulator's `@<millis>` notation rather than HTTP
    /// dates; unrecognized attributes are ignored (as browsers do).
    pub fn parse(header: &str) -> Option<SetCookie> {
        let mut pieces = header.split(';');
        let first = pieces.next()?.trim();
        let (name, value) = first.split_once('=')?;
        if name.is_empty() {
            return None;
        }
        let mut sc = SetCookie::session(name.trim(), value.trim());
        for piece in pieces {
            let piece = piece.trim();
            let (attr, val) = match piece.split_once('=') {
                Some((a, v)) => (a.trim().to_ascii_lowercase(), v.trim()),
                None => (piece.to_ascii_lowercase(), ""),
            };
            match attr.as_str() {
                "max-age" => {
                    if let Ok(secs) = val.parse::<u64>() {
                        sc.max_age = Some(SimDuration::from_secs(secs));
                    }
                }
                "expires" => {
                    // The simulator's own `@<millis>` notation, or a real
                    // RFC 1123 HTTP date.
                    if let Some(ms) = val.strip_prefix('@').and_then(|m| m.parse::<u64>().ok()) {
                        sc.expires = Some(SimTime(ms));
                    } else if let Some(t) = crate::date::parse_http_date(val) {
                        sc.expires = Some(t);
                    }
                }
                "domain" => sc.domain = Some(val.trim_start_matches('.').to_ascii_lowercase()),
                "path" => sc.path = Some(val.to_string()),
                "secure" => sc.secure = true,
                "httponly" => sc.http_only = true,
                "samesite" => {
                    sc.same_site = match val.to_ascii_lowercase().as_str() {
                        "strict" => Some(SameSite::Strict),
                        "lax" => Some(SameSite::Lax),
                        "none" => Some(SameSite::None),
                        _ => None,
                    }
                }
                _ => {}
            }
        }
        Some(sc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cookie_header_roundtrip() {
        let cookies = vec![Cookie::new("uid", "abc123"), Cookie::new("lang", "en-US")];
        let header = format_cookie_header(&cookies);
        assert_eq!(header, "uid=abc123; lang=en-US");
        assert_eq!(parse_cookie_header(&header), cookies);
    }

    #[test]
    fn parse_cookie_header_tolerates_mess() {
        let parsed = parse_cookie_header("a=1;; b ; c = 2 ;");
        assert_eq!(
            parsed,
            vec![
                Cookie::new("a", "1"),
                Cookie::new("b", ""),
                Cookie::new("c", "2"),
            ]
        );
        assert!(parse_cookie_header("").is_empty());
    }

    #[test]
    fn set_cookie_roundtrip_full() {
        let sc = SetCookie::persistent("uid", "xyz", SimDuration::from_days(90))
            .with_domain("example.com")
            .with_same_site(SameSite::None);
        let mut sc = sc;
        sc.secure = true;
        sc.http_only = true;
        sc.path = Some("/".into());
        let parsed = SetCookie::parse(&sc.to_header_value()).unwrap();
        assert_eq!(parsed, sc);
    }

    #[test]
    fn set_cookie_minimal() {
        let parsed = SetCookie::parse("sid=abc").unwrap();
        assert_eq!(parsed.cookie, Cookie::new("sid", "abc"));
        assert!(parsed.max_age.is_none());
        assert!(parsed.expiry(SimTime::EPOCH).is_none());
    }

    #[test]
    fn set_cookie_parse_rejects_nameless() {
        assert!(SetCookie::parse("").is_none());
        assert!(SetCookie::parse("; Secure").is_none());
        assert!(SetCookie::parse("=v").is_none());
    }

    #[test]
    fn max_age_precedence_and_expiry() {
        let mut sc = SetCookie::persistent("a", "b", SimDuration::from_days(1));
        sc.expires = Some(SimTime(5));
        let stored = SimTime(1_000);
        assert_eq!(
            sc.expiry(stored),
            Some(stored.plus(SimDuration::from_days(1)))
        );
        assert_eq!(sc.lifetime(stored), Some(SimDuration::from_days(1)));
    }

    #[test]
    fn expires_fallback() {
        let sc = SetCookie::parse("a=b; Expires=@86400000").unwrap();
        assert_eq!(sc.expiry(SimTime::EPOCH), Some(SimTime(86_400_000)));
        assert_eq!(
            sc.lifetime(SimTime::EPOCH).unwrap(),
            SimDuration::from_days(1)
        );
    }

    #[test]
    fn expires_accepts_http_dates() {
        let sc = SetCookie::parse("uid=abc; Expires=Mon, 25 Oct 2021 00:00:00 GMT").unwrap();
        assert_eq!(sc.expires, Some(SimTime(1_635_120_000_000)));
        // Garbage dates are ignored, like browsers do.
        let sc = SetCookie::parse("uid=abc; Expires=whenever").unwrap();
        assert_eq!(sc.expires, None);
    }

    #[test]
    fn domain_leading_dot_stripped() {
        let sc = SetCookie::parse("a=b; Domain=.Example.COM").unwrap();
        assert_eq!(sc.domain.as_deref(), Some("example.com"));
    }

    #[test]
    fn unknown_attributes_ignored() {
        let sc = SetCookie::parse("a=b; Priority=High; Partitioned").unwrap();
        assert_eq!(sc.cookie.value, "b");
    }

    #[test]
    fn samesite_parsing() {
        assert_eq!(
            SetCookie::parse("a=b; SameSite=lax").unwrap().same_site,
            Some(SameSite::Lax)
        );
        assert_eq!(
            SetCookie::parse("a=b; SameSite=banana").unwrap().same_site,
            None
        );
    }
}
