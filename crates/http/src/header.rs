//! A case-insensitive, order-preserving header map.
//!
//! Header order is preserved so serialized requests in the crawl dataset are
//! byte-stable; lookups are case-insensitive per RFC 9110. Multiple values
//! for the same name are kept (needed for `Set-Cookie`, which cannot be
//! comma-joined).

use serde::{Deserialize, Serialize};

/// Well-known header names used throughout the simulator.
pub mod names {
    /// `User-Agent`.
    pub const USER_AGENT: &str = "user-agent";
    /// `Cookie`.
    pub const COOKIE: &str = "cookie";
    /// `Set-Cookie`.
    pub const SET_COOKIE: &str = "set-cookie";
    /// `Location` (redirect target).
    pub const LOCATION: &str = "location";
    /// `Referer` (sic).
    pub const REFERER: &str = "referer";
    /// `Content-Type`.
    pub const CONTENT_TYPE: &str = "content-type";
}

/// An ordered multimap of headers with case-insensitive names.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeaderMap {
    entries: Vec<(String, String)>,
}

impl HeaderMap {
    /// New empty map.
    pub fn new() -> Self {
        HeaderMap::default()
    }

    /// Append a header (keeps any existing values for the name).
    pub fn append(&mut self, name: &str, value: impl Into<String>) {
        self.entries.push((name.to_ascii_lowercase(), value.into()));
    }

    /// Set a header, replacing all existing values for the name.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        let lname = name.to_ascii_lowercase();
        self.entries.retain(|(n, _)| *n != lname);
        self.entries.push((lname, value.into()));
    }

    /// First value for a name, if any.
    pub fn get(&self, name: &str) -> Option<&str> {
        let lname = name.to_ascii_lowercase();
        self.entries
            .iter()
            .find(|(n, _)| *n == lname)
            .map(|(_, v)| v.as_str())
    }

    /// All values for a name, in insertion order.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        let lname = name.to_ascii_lowercase();
        self.entries
            .iter()
            .filter(|(n, _)| *n == lname)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Whether the map contains the name.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Remove all values for a name; returns how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let lname = name.to_ascii_lowercase();
        let before = self.entries.len();
        self.entries.retain(|(n, _)| *n != lname);
        before - self.entries.len()
    }

    /// Number of header entries (not distinct names).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(name, value)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_lookup() {
        let mut h = HeaderMap::new();
        h.append("User-Agent", "Safari");
        assert_eq!(h.get("user-agent"), Some("Safari"));
        assert_eq!(h.get("USER-AGENT"), Some("Safari"));
        assert!(h.contains("uSeR-aGeNt"));
    }

    #[test]
    fn append_keeps_multiple_values() {
        let mut h = HeaderMap::new();
        h.append(names::SET_COOKIE, "a=1");
        h.append(names::SET_COOKIE, "b=2");
        assert_eq!(h.get_all("set-cookie"), vec!["a=1", "b=2"]);
        assert_eq!(h.get("set-cookie"), Some("a=1"));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn set_replaces() {
        let mut h = HeaderMap::new();
        h.append("x", "1");
        h.append("x", "2");
        h.set("X", "3");
        assert_eq!(h.get_all("x"), vec!["3"]);
    }

    #[test]
    fn remove_counts() {
        let mut h = HeaderMap::new();
        h.append("a", "1");
        h.append("a", "2");
        h.append("b", "3");
        assert_eq!(h.remove("A"), 2);
        assert_eq!(h.remove("a"), 0);
        assert_eq!(h.len(), 1);
        assert!(!h.is_empty());
    }

    #[test]
    fn iter_preserves_order() {
        let mut h = HeaderMap::new();
        h.append("b", "2");
        h.append("a", "1");
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![("b", "2"), ("a", "1")]);
    }
}
