//! HTTP requests and responses.
//!
//! The navigation engine in `cc-browser` issues [`Request`]s to the synthetic
//! web and interprets [`Response`]s: 3xx + `Location` hops build the redirect
//! chains through which UIDs are smuggled, while `Set-Cookie` headers and the
//! response [`PageBody`] (page content or a script-driven redirect) drive
//! storage writes.

use crate::cookie::SetCookie;
use crate::header::{names, HeaderMap};
use crate::status::StatusCode;
use cc_url::Url;
use serde::{Deserialize, Serialize};

/// HTTP request methods the simulator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// GET — navigations and subresource fetches.
    Get,
    /// POST — beacon-style tracker submissions.
    Post,
}

impl Method {
    /// The method name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }
}

/// Why a request was issued — the simulator's analogue of
/// `chrome.webRequest` resource types. The pipeline distinguishes top-level
/// *navigation* requests (where smuggling happens, §3.6) from *subresource*
/// requests by third parties on a page (where leaked UIDs travel, Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// Top-level navigation (link click or redirect hop).
    Navigation,
    /// Third-party subresource / beacon request issued by page content.
    Subresource,
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Target URL.
    pub url: Url,
    /// Headers (Cookie, User-Agent, Referer, …).
    pub headers: HeaderMap,
    /// Why the request was issued.
    pub kind: RequestKind,
}

impl Request {
    /// A GET navigation request.
    pub fn navigation(url: Url) -> Self {
        Request {
            method: Method::Get,
            url,
            headers: HeaderMap::new(),
            kind: RequestKind::Navigation,
        }
    }

    /// A GET subresource request.
    pub fn subresource(url: Url) -> Self {
        Request {
            method: Method::Get,
            url,
            headers: HeaderMap::new(),
            kind: RequestKind::Subresource,
        }
    }

    /// Set the `User-Agent` header (builder style).
    #[must_use]
    pub fn with_user_agent(mut self, ua: &str) -> Self {
        self.headers.set(names::USER_AGENT, ua);
        self
    }

    /// Set the `Referer` header (builder style).
    #[must_use]
    pub fn with_referer(mut self, referer: &str) -> Self {
        self.headers.set(names::REFERER, referer);
        self
    }
}

/// What a successful response carries.
///
/// Real pages are HTML + scripts; the simulator represents the *effects*
/// that matter: either a page identifier (the browser will ask the web for
/// the page's content model) or an immediate script/meta-style redirect.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PageBody {
    /// A renderable page, identified by the serving site and page path.
    Page,
    /// Client-side (JS/meta-refresh) redirect to the given URL. Unlike a
    /// 3xx, this executes after the page loads — bounce trackers use both.
    ScriptRedirect(Url),
    /// No meaningful body (beacon endpoints, errors).
    Empty,
    /// Literal payload bytes (UTF-8). The serving layer (`cc-serve`) uses
    /// this for JSON responses; the crawl simulator never produces it, so
    /// released datasets are unchanged.
    Raw(String),
}

impl PageBody {
    /// The literal bytes this body puts on the wire. Simulator bodies
    /// ([`PageBody::Page`], [`PageBody::ScriptRedirect`]) have no byte
    /// representation and frame as empty.
    pub fn wire_bytes(&self) -> &[u8] {
        match self {
            PageBody::Raw(s) => s.as_bytes(),
            _ => &[],
        }
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Headers (including `Location` for redirects).
    pub headers: HeaderMap,
    /// Parsed `Set-Cookie` directives.
    pub set_cookies: Vec<SetCookie>,
    /// Body model.
    pub body: PageBody,
}

impl Response {
    /// A 200 response carrying a page.
    pub fn page() -> Self {
        Response {
            status: StatusCode::OK,
            headers: HeaderMap::new(),
            set_cookies: Vec::new(),
            body: PageBody::Page,
        }
    }

    /// A 200 response with an empty body.
    pub fn empty() -> Self {
        Response {
            status: StatusCode::OK,
            headers: HeaderMap::new(),
            set_cookies: Vec::new(),
            body: PageBody::Empty,
        }
    }

    /// A 302 redirect to `target`.
    pub fn redirect(target: &Url) -> Self {
        let mut headers = HeaderMap::new();
        headers.set(names::LOCATION, target.to_url_string());
        Response {
            status: StatusCode::FOUND,
            headers,
            set_cookies: Vec::new(),
            body: PageBody::Empty,
        }
    }

    /// A 200 page that immediately script-redirects to `target`.
    pub fn script_redirect(target: Url) -> Self {
        Response {
            status: StatusCode::OK,
            headers: HeaderMap::new(),
            set_cookies: Vec::new(),
            body: PageBody::ScriptRedirect(target),
        }
    }

    /// A response carrying literal payload bytes (the serving layer's
    /// constructor; `Content-Type` is the caller's business).
    pub fn raw(status: StatusCode, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: HeaderMap::new(),
            set_cookies: Vec::new(),
            body: PageBody::Raw(body.into()),
        }
    }

    /// An empty-bodied response with the given status.
    pub fn status_only(status: StatusCode) -> Self {
        Response {
            status,
            headers: HeaderMap::new(),
            set_cookies: Vec::new(),
            body: PageBody::Empty,
        }
    }

    /// A 404 response.
    pub fn not_found() -> Self {
        Response {
            status: StatusCode::NOT_FOUND,
            headers: HeaderMap::new(),
            set_cookies: Vec::new(),
            body: PageBody::Empty,
        }
    }

    /// Attach a `Set-Cookie` (builder style). Also mirrors it into the
    /// header map so the dataset contains the literal header.
    #[must_use]
    pub fn with_set_cookie(mut self, sc: SetCookie) -> Self {
        self.headers.append(names::SET_COOKIE, sc.to_header_value());
        self.set_cookies.push(sc);
        self
    }

    /// The redirect target, if this is a 3xx with a parsable `Location` or a
    /// script redirect.
    pub fn redirect_target(&self) -> Option<Url> {
        if self.status.is_redirect() {
            if let Some(loc) = self.headers.get(names::LOCATION) {
                return Url::parse(loc).ok();
            }
        }
        if let PageBody::ScriptRedirect(u) = &self.body {
            return Some(u.clone());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_net::SimDuration;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn navigation_request_defaults() {
        let r = Request::navigation(url("https://a.com/x"));
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.kind, RequestKind::Navigation);
        assert_eq!(Method::Get.as_str(), "GET");
        assert_eq!(Method::Post.as_str(), "POST");
    }

    #[test]
    fn builder_headers() {
        let r = Request::navigation(url("https://a.com/"))
            .with_user_agent("Safari")
            .with_referer("https://b.com/");
        assert_eq!(r.headers.get("user-agent"), Some("Safari"));
        assert_eq!(r.headers.get("referer"), Some("https://b.com/"));
    }

    #[test]
    fn http_redirect_target() {
        let resp = Response::redirect(&url("https://t.example.net/r?uid=1"));
        assert_eq!(resp.status, StatusCode::FOUND);
        assert_eq!(
            resp.redirect_target().unwrap().to_url_string(),
            "https://t.example.net/r?uid=1"
        );
    }

    #[test]
    fn script_redirect_target() {
        let resp = Response::script_redirect(url("https://b.com/land"));
        assert!(resp.status.is_success());
        assert_eq!(resp.redirect_target().unwrap(), url("https://b.com/land"));
    }

    #[test]
    fn page_has_no_redirect() {
        assert_eq!(Response::page().redirect_target(), None);
        assert_eq!(Response::not_found().redirect_target(), None);
        assert_eq!(Response::empty().redirect_target(), None);
    }

    #[test]
    fn redirect_with_unparsable_location() {
        let mut resp = Response::redirect(&url("https://a.com/"));
        resp.headers.set(names::LOCATION, "not a url");
        assert_eq!(resp.redirect_target(), None);
    }

    #[test]
    fn set_cookie_mirrored_into_headers() {
        let resp = Response::page().with_set_cookie(SetCookie::persistent(
            "uid",
            "abc",
            SimDuration::from_days(365),
        ));
        assert_eq!(resp.set_cookies.len(), 1);
        let headers = resp.headers.get_all(names::SET_COOKIE);
        assert_eq!(headers.len(), 1);
        assert!(headers[0].starts_with("uid=abc"));
    }
}
