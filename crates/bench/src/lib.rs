//! # cc-bench
//!
//! Shared fixtures for the Criterion benchmark harness. Every table and
//! figure in the paper has a bench target that regenerates it (see
//! `benches/`), and they all operate on the fixtures built here so the
//! expensive crawl runs once per process.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::OnceLock;

use cc_core::pipeline::PipelineOutput;
use cc_crawler::{CrawlConfig, CrawlDataset, Walker};
use cc_web::{generate, SimWeb, WebConfig};

/// A fully-built study fixture: world, crawl dataset, pipeline output.
pub struct Fixture {
    /// The generated world.
    pub web: SimWeb,
    /// The crawl dataset.
    pub dataset: CrawlDataset,
    /// The pipeline output.
    pub output: PipelineOutput,
}

/// The benchmark-scale study (500 seeders), built once per process.
pub fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let web = generate(&WebConfig {
            seed: 0xBE7C4,
            n_sites: 1_500,
            n_seeders: 500,
            ..WebConfig::default()
        });
        let dataset = Walker::new(
            &web,
            CrawlConfig {
                seed: 0xBE7C4,
                ..CrawlConfig::default()
            },
        )
        .crawl();
        let output = cc_core::run_pipeline(&dataset);
        Fixture {
            web,
            dataset,
            output,
        }
    })
}

/// A small world for crawl-throughput benches.
pub fn small_web() -> &'static SimWeb {
    static WEB: OnceLock<SimWeb> = OnceLock::new();
    WEB.get_or_init(|| generate(&WebConfig::small()))
}

/// A medium world (800 sites / 250 seeders) for the parallel-executor
/// benches: big enough that per-walk work dominates thread overheads.
pub fn medium_web() -> &'static SimWeb {
    static WEB: OnceLock<SimWeb> = OnceLock::new();
    WEB.get_or_init(|| {
        generate(&WebConfig {
            seed: 0x9A7A11E1,
            n_sites: 800,
            n_seeders: 250,
            ..WebConfig::default()
        })
    })
}
