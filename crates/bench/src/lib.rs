//! # cc-bench
//!
//! Shared fixtures for the Criterion benchmark harness. Every table and
//! figure in the paper has a bench target that regenerates it (see
//! `benches/`), and they all operate on the fixtures built here so the
//! expensive crawl runs once per process.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::OnceLock;

use cc_core::pipeline::PipelineOutput;
use cc_crawler::{CrawlConfig, CrawlDataset, Walker};
use cc_web::{generate, SimWeb, WebConfig};

/// A fully-built study fixture: world, crawl dataset, pipeline output.
pub struct Fixture {
    /// The generated world.
    pub web: SimWeb,
    /// The crawl dataset.
    pub dataset: CrawlDataset,
    /// The pipeline output.
    pub output: PipelineOutput,
}

/// The benchmark-scale study (500 seeders), built once per process.
pub fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let web = generate(&WebConfig {
            seed: 0xBE7C4,
            n_sites: 1_500,
            n_seeders: 500,
            ..WebConfig::default()
        });
        let dataset = Walker::new(
            &web,
            CrawlConfig {
                seed: 0xBE7C4,
                ..CrawlConfig::default()
            },
        )
        .crawl();
        let output = cc_core::run_pipeline(&dataset);
        Fixture {
            web,
            dataset,
            output,
        }
    })
}

/// The number of CPU cores the bench harness should treat as available.
///
/// `std::thread::available_parallelism` by default; the `CC_BENCH_CORES`
/// environment variable overrides it so CI (or a curious human) can
/// exercise the scaling gates on a box whose cgroup quota lies about
/// the core count — or pretend to have one core to test the skip path.
pub fn detected_cores() -> usize {
    if let Ok(v) = std::env::var("CC_BENCH_CORES") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Lock-contention microbench: the pre-sharding telemetry hot path (a
/// process-wide mutex around a `String`-keyed map) raced against the
/// sharded registry path (per-worker atomic slots) under identical
/// multi-threaded load.
pub mod contention {
    use std::sync::Arc;
    use std::time::Instant;

    use cc_telemetry::{Collector, CounterId};
    use serde::Serialize;

    /// One contention race: N threads, each issuing `ops_per_thread`
    /// counter increments through both paths.
    #[derive(Serialize, Clone, Copy)]
    pub struct ContentionResult {
        /// Racing threads.
        pub threads: usize,
        /// Increments per thread.
        pub ops_per_thread: u64,
        /// Wall-clock for the string-keyed map path (global mutex).
        pub string_path_secs: f64,
        /// Wall-clock for the sharded registry-id path (atomic slots).
        pub sharded_path_secs: f64,
        /// string_path_secs / sharded_path_secs — how much faster the
        /// sharded path is under this load.
        pub speedup: f64,
    }

    /// Drive `threads` threads through one path. `sharded` picks the
    /// per-worker shard path (registry id + installed shard) versus the
    /// legacy path (unregistered name → global mutex + map entry).
    fn drive(threads: usize, ops_per_thread: u64, sharded: bool) -> f64 {
        let collector = Arc::new(Collector::default());
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = Arc::clone(&collector);
                scope.spawn(move || {
                    if sharded {
                        let _shard = c.install_worker_shard();
                        for _ in 0..ops_per_thread {
                            c.add_counter_id(CounterId::CRAWL_STEPS_RECORDED, 1);
                        }
                    } else {
                        for _ in 0..ops_per_thread {
                            // Unregistered name: takes the pre-sharding
                            // cold path (mutex + String-keyed map).
                            c.add_counter("bench.contention.synthetic", 1);
                        }
                    }
                });
            }
        });
        let secs = start.elapsed().as_secs_f64();
        let report = collector.report(None);
        let key = if sharded {
            CounterId::CRAWL_STEPS_RECORDED.name()
        } else {
            "bench.contention.synthetic"
        };
        let total = report.deterministic.counters.get(key).copied().unwrap_or(0);
        assert_eq!(
            total,
            threads as u64 * ops_per_thread,
            "contention race lost increments on the {} path",
            if sharded { "sharded" } else { "string" }
        );
        secs
    }

    /// Race both paths and report the ratio. Each path is timed
    /// best-of-3 so one scheduler hiccup cannot invert the result.
    pub fn race(threads: usize, ops_per_thread: u64) -> ContentionResult {
        let mut string_path_secs = f64::INFINITY;
        let mut sharded_path_secs = f64::INFINITY;
        for _ in 0..3 {
            string_path_secs = string_path_secs.min(drive(threads, ops_per_thread, false));
            sharded_path_secs = sharded_path_secs.min(drive(threads, ops_per_thread, true));
        }
        ContentionResult {
            threads,
            ops_per_thread,
            string_path_secs,
            sharded_path_secs,
            speedup: string_path_secs / sharded_path_secs,
        }
    }
}

/// A small world for crawl-throughput benches.
pub fn small_web() -> &'static SimWeb {
    static WEB: OnceLock<SimWeb> = OnceLock::new();
    WEB.get_or_init(|| generate(&WebConfig::small()))
}

/// A medium world (800 sites / 250 seeders) for the parallel-executor
/// benches: big enough that per-walk work dominates thread overheads.
pub fn medium_web() -> &'static SimWeb {
    static WEB: OnceLock<SimWeb> = OnceLock::new();
    WEB.get_or_init(|| {
        generate(&WebConfig {
            seed: 0x9A7A11E1,
            n_sites: 800,
            n_seeders: 250,
            ..WebConfig::default()
        })
    })
}
