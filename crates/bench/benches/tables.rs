//! Bench targets regenerating the paper's tables.
//!
//! * `table1/*` — Table 1 (UIDs per crawler combination)
//! * `table2/*` — Table 2 (summary counts + the 8.11% headline)
//! * `table3/*` — Table 3 (top-30 redirectors, dedicated classification)

use cc_analysis::redirectors::{classify_redirectors, table3};
use cc_analysis::report::table1;
use cc_analysis::summarize;
use cc_bench::fixture;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("table1/crawler_combinations", |b| {
        b.iter(|| {
            let t = table1(black_box(&fx.output));
            black_box(t.rows.len())
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("table2/summary", |b| {
        b.iter(|| {
            let s = summarize(black_box(&fx.output));
            black_box(s.smuggling_rate().percent())
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("table3/classify_redirectors", |b| {
        b.iter(|| black_box(classify_redirectors(black_box(&fx.output))).len())
    });
    c.bench_function("table3/top30", |b| {
        b.iter(|| black_box(table3(black_box(&fx.output), 30)).len())
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(20);
    targets = bench_table1, bench_table2, bench_table3
}
criterion_main!(tables);
