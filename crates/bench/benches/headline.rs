//! Headline-number benches: the end-to-end measurements behind "UID
//! smuggling is present on 8.11% of unique URL paths" (H1), the
//! bounce-tracking comparison (H2), the crawl-failure taxonomy (H3), and
//! the fingerprinting experiment (H5).

use cc_analysis::bounce::bounce_stats;
use cc_analysis::fingerprint::fingerprint_experiment;
use cc_analysis::report::full_report;
use cc_bench::{fixture, small_web};
use cc_crawler::{CrawlConfig, Walker};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// The full pipeline over the pre-crawled dataset (extraction → candidates
/// → classification).
fn bench_pipeline(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("headline/pipeline_end_to_end", |b| {
        b.iter(|| {
            let out = cc_core::run_pipeline(black_box(&fx.dataset));
            black_box(out.findings.len())
        })
    });
}

/// A complete 15-walk crawl with all four crawlers (the data-collection
/// side of the headline).
fn bench_crawl(c: &mut Criterion) {
    let web = small_web();
    c.bench_function("headline/crawl_15_walks", |b| {
        b.iter(|| {
            let ds = Walker::new(
                web,
                CrawlConfig {
                    seed: 7,
                    steps_per_walk: 5,
                    max_walks: Some(15),
                    ..CrawlConfig::default()
                },
            )
            .crawl();
            black_box(ds.total_steps())
        })
    });
}

fn bench_bounce(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("headline/bounce_stats", |b| {
        b.iter(|| black_box(bounce_stats(black_box(&fx.output))).bounce_only_paths)
    });
}

fn bench_fingerprint(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("headline/fingerprint_experiment", |b| {
        b.iter(|| {
            let e = fingerprint_experiment(black_box(&fx.web), black_box(&fx.output));
            black_box(e.fp_cases + e.non_fp_cases)
        })
    });
}

fn bench_full_report(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("headline/full_report", |b| {
        b.iter(|| {
            let r = full_report(
                black_box(&fx.web),
                black_box(&fx.dataset),
                black_box(&fx.output),
            );
            black_box(r.summary.unique_url_paths)
        })
    });
}

criterion_group! {
    name = headline;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline, bench_crawl, bench_bounce, bench_fingerprint, bench_full_report
}
criterion_main!(headline);
