//! Bench targets regenerating the paper's figures.
//!
//! * `fig4/*` — organizations (originators/destinations)
//! * `fig5/*` — site categories
//! * `fig6/*` — third parties receiving leaked UIDs
//! * `fig7/*` — redirector-count histogram
//! * `fig8/*` — path portions

use cc_analysis::categories::figure5;
use cc_analysis::orgs::figure4;
use cc_analysis::paths::{figure7, figure8};
use cc_analysis::third_party::figure6;
use cc_bench::fixture;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("fig4/organizations", |b| {
        b.iter(|| {
            let f = figure4(black_box(&fx.web), black_box(&fx.output), 20);
            black_box(f.originators.len() + f.destinations.len())
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("fig5/categories", |b| {
        b.iter(|| {
            let f = figure5(black_box(&fx.web), black_box(&fx.output));
            black_box(f.originators.len())
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("fig6/third_party_leaks", |b| {
        b.iter(|| black_box(figure6(black_box(&fx.dataset), black_box(&fx.output), 20)).len())
    });
}

fn bench_fig7(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("fig7/redirector_histogram", |b| {
        b.iter(|| black_box(figure7(black_box(&fx.output))).len())
    });
}

fn bench_fig8(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("fig8/path_portions", |b| {
        b.iter(|| black_box(figure8(black_box(&fx.output))).len())
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(20);
    targets = bench_fig4, bench_fig5, bench_fig6, bench_fig7, bench_fig8
}
criterion_main!(figures);
