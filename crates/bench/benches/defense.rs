//! Defense benches (experiments H7–H9, D1): blocklist coverage, query
//! stripping, debouncing, the ITP classifier, and the breakage model.

use cc_bench::fixture;
use cc_defense::breakage::run_experiment;
use cc_defense::debounce::debounce;
use cc_defense::eval::evaluate_defenses;
use cc_defense::itp::ItpClassifier;
use cc_defense::lists::ParamBlocklist;
use cc_defense::strip::strip_url;
use cc_url::Url;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// D1/H7/H8: the full defense evaluation.
fn bench_evaluate(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("defense/evaluate_all", |b| {
        b.iter(|| {
            let e = evaluate_defenses(black_box(&fx.web), black_box(&fx.output));
            black_box(e.debounce_prevented.fraction())
        })
    });
}

/// Query stripping throughput over a decorated URL.
fn bench_strip(c: &mut Criterion) {
    let url = Url::parse(
        "https://www.shop.com/deal?gclid=abc123def456&fbclid=xyz789qrs&page=2&q=shoes&utm_campaign=sweet_deal",
    )
    .unwrap();
    let list = ParamBlocklist::well_known();
    c.bench_function("defense/strip_url", |b| {
        b.iter(|| black_box(strip_url(black_box(&url), &list)).removed.len())
    });
}

/// Debouncing a nested click URL.
fn bench_debounce(c: &mut Criterion) {
    let mut click = Url::parse("https://r.trk.net/click?gclid=uid1234567890").unwrap();
    click.query_set("cc_dest", "https://www.shop.com/deal?awc=inner9876543210");
    let list = ParamBlocklist::well_known();
    c.bench_function("defense/debounce", |b| {
        b.iter(|| black_box(debounce(black_box(&click), &list)).unwrapped)
    });
}

/// H-ITP: classifying every path of the crawl.
fn bench_itp(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("defense/itp_classify_crawl", |b| {
        b.iter(|| {
            let mut itp = ItpClassifier::new();
            for p in &fx.output.paths {
                itp.observe_path(p);
            }
            black_box(itp.len())
        })
    });
}

/// H9: the breakage experiment over 50 pages.
fn bench_breakage(c: &mut Criterion) {
    let fx = fixture();
    let urls: Vec<Url> = fx
        .web
        .sites
        .iter()
        .take(50)
        .map(|s| Url::parse(&format!("https://{}/?uid=x", s.www_fqdn())).unwrap())
        .collect();
    c.bench_function("defense/breakage_50_pages", |b| {
        b.iter(|| {
            let pages: Vec<(&Url, &str)> = urls.iter().map(|u| (u, "uid")).collect();
            let (_, rep) = run_experiment(black_box(&fx.web), pages);
            black_box(rep.total())
        })
    });
}

/// The Privacy-Badger-style learner over the whole crawl.
fn bench_badger(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("defense/badger_learn_crawl", |b| {
        b.iter(|| {
            let mut badger = cc_defense::badger::Badger::new();
            for p in &fx.output.paths {
                badger.observe_path(p);
            }
            black_box(badger.learned())
        })
    });
}

/// Cookie-sync detection (§8.2) over the whole crawl.
fn bench_cookie_sync(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("defense/cookie_sync_detect", |b| {
        b.iter(|| {
            let r = cc_analysis::cookie_sync::detect_cookie_sync(black_box(&fx.dataset));
            black_box(r.synced_values)
        })
    });
}

criterion_group! {
    name = defense;
    config = Criterion::default().sample_size(20);
    targets = bench_evaluate, bench_strip, bench_debounce, bench_itp, bench_breakage,
              bench_badger, bench_cookie_sync
}
criterion_main!(defense);
