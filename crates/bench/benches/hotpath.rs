//! Hot-path microbenches: token extraction, render caching, per-walk cost.
//!
//! Three hot paths dominate crawl wall-clock: recursive token extraction
//! (`cc_core::extract`), page rendering (`SimWeb::load_page`), and the
//! per-walk setup the executor pays before a walk's first navigation. Each
//! gets a Criterion target plus a wall-clock measurement that lands in the
//! machine-readable `BENCH_hotpath.json` artifact, so regressions show up
//! as diffs.
//!
//! The extraction bench races the shipped extractor against a faithful
//! reimplementation of the pre-optimization algorithm (O(n²) `Vec::contains`
//! dedup, eager percent-decode allocations) on a duplicate-heavy nested
//! fixture, and the harness asserts the shipped one is ≥2× faster — the
//! acceptance bar for the hash-indexed sink rewrite.

use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

use cc_bench::{contention, detected_cores, medium_web};
use cc_core::extract::{extract_tokens, Extracted};
use cc_crawler::{crawl_parallel, CrawlConfig, ParallelCrawlConfig, Walker};
use cc_net::SimTime;
use cc_url::percent::{decode_component, looks_encoded};
use cc_url::Url;
use cc_util::DetRng;
use cc_web::{ScriptHost, SimWeb, StorageKind};
use criterion::{criterion_group, Criterion};
use serde::Serialize;

// ----------------------------------------------------------------------
// Extraction: shipped extractor vs the pre-optimization baseline
// ----------------------------------------------------------------------

/// Faithful reimplementation of the pre-optimization extractor: dedup via a
/// linear `Vec::contains` scan (quadratic in the leaf count) and eager
/// `decode_component` allocation for every query segment. Semantics are
/// identical to `extract_tokens`; only the costs differ.
mod naive {
    use super::*;

    const MAX_DEPTH: usize = 8;

    pub fn extract_tokens(name: &str, value: &str) -> Vec<Extracted> {
        let mut out = Vec::new();
        walk(name, value, 0, &mut out);
        out
    }

    fn push(out: &mut Vec<Extracted>, name: &str, value: &str) {
        if value.is_empty() {
            return;
        }
        let e = Extracted {
            name: name.to_string(),
            value: value.to_string(),
        };
        if !out.contains(&e) {
            out.push(e);
        }
    }

    fn walk(name: &str, value: &str, depth: usize, out: &mut Vec<Extracted>) {
        if depth >= MAX_DEPTH || value.is_empty() {
            push(out, name, value);
            return;
        }
        if value.starts_with("http://") || value.starts_with("https://") {
            push(out, name, value);
            if let Ok(u) = cc_url::Url::parse(value) {
                for (k, v) in u.query() {
                    walk(k, v, depth + 1, out);
                }
            }
            return;
        }
        let trimmed = value.trim();
        if trimmed.starts_with('{') || trimmed.starts_with('[') {
            if let Ok(json) = serde_json::from_str::<serde_json::Value>(trimmed) {
                walk_json(name, &json, depth + 1, out);
                return;
            }
        }
        if value.contains('=') && is_query_ish(value) {
            for piece in value.split('&').filter(|p| !p.is_empty()) {
                let (k, v) = match piece.split_once('=') {
                    Some((k, v)) => (decode_component(k), decode_component(v)),
                    None => (decode_component(piece), String::new()),
                };
                if v.is_empty() {
                    walk(name, &k, depth + 1, out);
                } else {
                    walk(&k, &v, depth + 1, out);
                }
            }
            return;
        }
        if looks_encoded(value) {
            let decoded = decode_component(value);
            if decoded != value {
                walk(name, &decoded, depth + 1, out);
                return;
            }
        }
        push(out, name, value);
    }

    fn is_query_ish(value: &str) -> bool {
        value.split('&').all(|seg| {
            seg.is_empty()
                || seg
                    .split_once('=')
                    .map(|(k, _)| !k.is_empty() && !k.contains(' '))
                    .unwrap_or(false)
                || !seg.contains('=') && !seg.contains(' ')
        })
    }

    fn walk_json(name: &str, json: &serde_json::Value, depth: usize, out: &mut Vec<Extracted>) {
        match json {
            serde_json::Value::String(s) => walk(name, s, depth, out),
            serde_json::Value::Number(n) => push(out, name, &n.to_string()),
            serde_json::Value::Bool(_) | serde_json::Value::Null => {}
            serde_json::Value::Array(items) => {
                for item in items {
                    walk_json(name, item, depth, out);
                }
            }
            serde_json::Value::Object(map) => {
                for (k, v) in map {
                    walk_json(k, v, depth, out);
                }
            }
        }
    }
}

/// A duplicate-heavy nested payload: a JSON envelope whose dominant leaf
/// volume is a giant URL-encoded blob cycling through a bounded
/// distinct-token vocabulary under one repeated parameter name — so nearly
/// every push is a dedup hit that the quadratic baseline pays a full value
/// scan for. This is the shape tracker beacon values actually take
/// (repeated `u=`/`uid=` parameters accumulated across hops).
fn duplicate_heavy_fixture() -> String {
    let mut rng = DetRng::new(0x4071);
    let distinct: Vec<String> = (0..2_000)
        .map(|i| format!("tok{i:04}{:08x}", rng.next() as u32))
        .collect();
    let ids: Vec<String> = (0..1_000)
        .map(|_| format!("\"{}\"", rng.pick(&distinct)))
        .collect();
    let blob: Vec<String> = (0..20_000)
        .map(|_| format!("u={}", rng.pick(&distinct)))
        .collect();
    let encoded = cc_url::percent::encode_component(&blob[..500].join("&"));
    format!(
        "{{\"ids\":[{}],\"blob\":\"{}\",\"wrapped\":\"{}\"}}",
        ids.join(","),
        blob.join("&"),
        encoded
    )
}

fn bench_extraction(c: &mut Criterion) {
    let fixture = duplicate_heavy_fixture();
    assert_eq!(
        extract_tokens("d", &fixture),
        naive::extract_tokens("d", &fixture),
        "baseline and shipped extractor must agree before racing them"
    );
    let mut group = c.benchmark_group("hotpath/extract");
    group.bench_function("optimized", |b| {
        b.iter(|| black_box(extract_tokens(black_box("d"), black_box(&fixture))).len())
    });
    group.bench_function("naive_quadratic", |b| {
        b.iter(|| black_box(naive::extract_tokens(black_box("d"), black_box(&fixture))).len())
    });
    group.finish();
}

// ----------------------------------------------------------------------
// Page loads: warm render cache vs skeleton rebuilt per load
// ----------------------------------------------------------------------

/// Minimal deterministic ScriptHost for driving `load_page` directly.
struct BenchHost {
    url: Url,
    storage: HashMap<String, String>,
    rng: DetRng,
    beacons: u64,
}

impl BenchHost {
    fn new(url: Url, seed: u64) -> Self {
        BenchHost {
            url,
            storage: HashMap::new(),
            rng: DetRng::new(seed),
            beacons: 0,
        }
    }
}

impl ScriptHost for BenchHost {
    fn page_url(&self) -> &Url {
        &self.url
    }
    fn storage_get(&self, key: &str) -> Option<String> {
        self.storage.get(key).cloned()
    }
    fn storage_set(&mut self, key: &str, value: &str, _kind: StorageKind) {
        self.storage.insert(key.to_string(), value.to_string());
    }
    fn fingerprint(&self) -> u64 {
        0xFACE
    }
    fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }
    fn send_beacon(&mut self, _url: Url) {
        self.beacons += 1;
    }
    fn now(&self) -> SimTime {
        SimTime(1_700_000)
    }
}

/// Drive one `load_page` pass over every seeder; returns total elements to
/// keep the work observable.
fn load_all_seeders(web: &SimWeb, seed: u64) -> usize {
    let mut total = 0;
    for (i, url) in web.seeder_urls().iter().enumerate() {
        let mut host = BenchHost::new(url.clone(), seed ^ i as u64);
        let page = web.load_page(url, &mut host).expect("seeder page loads");
        total += page.elements.len() + host.beacons as usize;
    }
    total
}

fn bench_page_load(c: &mut Criterion) {
    let web = medium_web();
    let mut group = c.benchmark_group("hotpath/page_load");
    group.bench_function("cached", |b| {
        web.set_render_cache(true);
        b.iter(|| black_box(load_all_seeders(web, 11)))
    });
    group.bench_function("uncached", |b| {
        web.set_render_cache(false);
        b.iter(|| black_box(load_all_seeders(web, 11)));
    });
    group.finish();
    web.set_render_cache(true);
}

// ----------------------------------------------------------------------
// Artifact
// ----------------------------------------------------------------------

#[derive(Serialize)]
struct ExtractionSection {
    fixture_bytes: usize,
    distinct_leaves: usize,
    iterations: usize,
    naive_secs: f64,
    optimized_secs: f64,
    /// naive_secs / optimized_secs — must be ≥ 2.0 (asserted).
    throughput_ratio: f64,
}

#[derive(Serialize)]
struct PageLoadSection {
    loads_per_pass: usize,
    passes: usize,
    cached_ms_per_load: f64,
    uncached_ms_per_load: f64,
    /// uncached / cached — the rebuild cost the skeleton cache amortizes.
    cache_speedup: f64,
}

#[derive(Serialize)]
struct PerWalkSection {
    walks: usize,
    serial_ms_per_walk: f64,
    executor_1w_ms_per_walk: f64,
    /// executor / serial — the executor's per-walk overhead factor.
    overhead_ratio: f64,
}

/// Schema `cc-bench/hotpath/v2` is a strict superset of v1 (adds the
/// `contention` section; everything else is unchanged).
#[derive(Serialize)]
struct HotpathArtifact {
    schema: &'static str,
    cpu_cores: usize,
    extraction: ExtractionSection,
    page_load: PageLoadSection,
    per_walk: PerWalkSection,
    /// Telemetry counter hot path: pre-sharding global string-keyed map
    /// vs the per-worker sharded registry path, raced across 4 threads.
    contention: contention::ContentionResult,
}

fn hotpath_report() {
    let cores = detected_cores();

    // Extraction throughput: the ≥2× acceptance bar for the sink rewrite.
    let fixture = duplicate_heavy_fixture();
    let distinct = extract_tokens("d", &fixture).len();
    let iterations = 30;
    let start = Instant::now();
    for _ in 0..iterations {
        black_box(naive::extract_tokens(black_box("d"), &fixture));
    }
    let naive_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for _ in 0..iterations {
        black_box(extract_tokens(black_box("d"), &fixture));
    }
    let optimized_secs = start.elapsed().as_secs_f64();
    let throughput_ratio = naive_secs / optimized_secs;
    println!(
        "extract: naive {naive_secs:.3}s optimized {optimized_secs:.3}s over {iterations} iters"
    );
    assert!(
        throughput_ratio >= 2.0,
        "extraction rewrite must be ≥2x the quadratic baseline on the \
         duplicate-heavy fixture, got {throughput_ratio:.2}x"
    );

    // Page loads: warm cache vs rebuild-per-load over every seeder.
    let web = medium_web();
    let loads = web.seeder_urls().len();
    let passes = 20;
    web.set_render_cache(true);
    load_all_seeders(web, 0); // warm the skeletons before timing
    let start = Instant::now();
    for p in 0..passes {
        black_box(load_all_seeders(web, p as u64));
    }
    let cached_ms = start.elapsed().as_secs_f64() * 1e3 / (passes * loads) as f64;
    web.set_render_cache(false);
    let start = Instant::now();
    for p in 0..passes {
        black_box(load_all_seeders(web, p as u64));
    }
    let uncached_ms = start.elapsed().as_secs_f64() * 1e3 / (passes * loads) as f64;
    web.set_render_cache(true);

    // Per-walk cost: serial Walker vs the 1-worker executor on the same
    // 50-walk prefix — the executor's per-walk overhead, isolated from
    // any parallel speedup.
    let cfg = CrawlConfig {
        seed: 0x9A7A11E1,
        steps_per_walk: 5,
        max_walks: Some(50),
        ..CrawlConfig::default()
    };
    // Best-of-N: a 50-walk crawl is ~tens of ms, so one scheduler hiccup
    // would dominate a single reading.
    let runs = 5;
    let mut serial_ms = f64::INFINITY;
    let mut serial_ds = None;
    for _ in 0..runs {
        let start = Instant::now();
        let ds = Walker::new(web, cfg.clone()).crawl();
        serial_ms = serial_ms.min(start.elapsed().as_secs_f64() * 1e3 / ds.walks.len() as f64);
        serial_ds = Some(ds);
    }
    let serial_ds = serial_ds.expect("at least one serial run");
    let mut par_ms = f64::INFINITY;
    let mut par_ds = None;
    for _ in 0..runs {
        let start = Instant::now();
        let ds = crawl_parallel(web, &cfg, ParallelCrawlConfig::with_workers(1));
        par_ms = par_ms.min(start.elapsed().as_secs_f64() * 1e3 / ds.walks.len() as f64);
        par_ds = Some(ds);
    }
    let par_ds = par_ds.expect("at least one parallel run");
    assert_eq!(serial_ds, par_ds, "1-worker executor diverged from serial");

    // Telemetry counter hot path: 4 threads hammering one counter through
    // the legacy global string-keyed path vs the sharded registry path.
    // Even on one core the sharded path must win (no mutex, no map probe,
    // no key rendering per increment); contention on a multi-core host
    // only widens the gap.
    let contention = contention::race(4, 200_000);
    println!(
        "contention: string path {:.3}s, sharded path {:.3}s over {} threads x {} ops -> {:.1}x",
        contention.string_path_secs,
        contention.sharded_path_secs,
        contention.threads,
        contention.ops_per_thread,
        contention.speedup
    );
    assert!(
        contention.speedup >= 1.5,
        "sharded telemetry hot path must be ≥1.5x the string-keyed map \
         path under threaded load, got {:.2}x",
        contention.speedup
    );

    let artifact = HotpathArtifact {
        schema: "cc-bench/hotpath/v2",
        cpu_cores: cores,
        extraction: ExtractionSection {
            fixture_bytes: fixture.len(),
            distinct_leaves: distinct,
            iterations,
            naive_secs,
            optimized_secs,
            throughput_ratio,
        },
        page_load: PageLoadSection {
            loads_per_pass: loads,
            passes,
            cached_ms_per_load: cached_ms,
            uncached_ms_per_load: uncached_ms,
            cache_speedup: uncached_ms / cached_ms,
        },
        per_walk: PerWalkSection {
            walks: serial_ds.walks.len(),
            serial_ms_per_walk: serial_ms,
            executor_1w_ms_per_walk: par_ms,
            overhead_ratio: par_ms / serial_ms,
        },
        contention,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("artifact serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    std::fs::write(path, &json).expect("BENCH_hotpath.json writes");
    println!(
        "\nhotpath: extraction {throughput_ratio:.2}x vs quadratic baseline, \
         page load {cached_ms:.3}ms cached / {uncached_ms:.3}ms uncached, \
         per-walk overhead {:.2}x",
        par_ms / serial_ms
    );
    println!("  wrote BENCH_hotpath.json");
}

criterion_group! {
    name = hotpath;
    config = Criterion::default().sample_size(10);
    targets = bench_extraction, bench_page_load
}

fn main() {
    hotpath();
    hotpath_report();
}
