//! Serving-layer benches: cc-serve request throughput under cc-loadgen.
//!
//! Criterion samples the single-request round-trip over a keep-alive
//! loopback connection (parse + route + precomputed-body write), then a
//! goose-style load run drives the full mixed task set with 4 concurrent
//! users and writes the machine-readable `BENCH_serve.json` artifact.
//! The artifact's floor is asserted here: at least 2,000 req/s aggregate
//! and zero 5xx / transport errors, since the run stays below the
//! server's shed threshold.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use cc_bench::fixture;
use cc_http::{Request, Response};
use cc_loadgen::{run_load, LoadConfig};
use cc_serve::{ServeConfig, Server, ServerHandle, ServingIndex};
use cc_url::Url;
use criterion::{criterion_group, Criterion};
use std::hint::black_box;

/// The benchmark floor: a precomputed-body server on loopback has no
/// business serving fewer requests per second than this.
const MIN_RPS: f64 = 2_000.0;

/// Tail-latency SLO for the same run: aggregate p99 at or under this.
/// Loopback round trips sit well under a millisecond; 50ms absorbs CI
/// scheduler noise while still catching a real serving regression.
const MAX_P99_MS: f64 = 50.0;

fn start_server() -> ServerHandle {
    let f = fixture();
    let index = ServingIndex::build(&f.web, &f.dataset, &f.output).expect("index builds");
    Server::start(
        index,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            max_inflight: 256,
            ..ServeConfig::default()
        },
    )
    .expect("server starts")
}

/// Single-request latency over one keep-alive connection, per endpoint
/// family: the cached fast path (`/healthz`), the biggest precomputed
/// body (`/report`), and the assembled-per-request path (`/smugglers`).
fn bench_round_trip(c: &mut Criterion) {
    let handle = start_server();
    let addr = handle.addr();
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    let mut group = c.benchmark_group("serve");
    for path in ["/healthz", "/report", "/smugglers?role=dedicated&limit=10"] {
        let req = Request::navigation(
            Url::parse(&format!("http://{addr}{path}")).expect("request url"),
        );
        let label = path.split('?').next().unwrap_or(path).trim_start_matches('/');
        group.bench_function(format!("round_trip/{label}"), |b| {
            b.iter(|| {
                req.write_to(&mut writer).expect("request writes");
                let resp = Response::read_from(&mut reader).expect("response reads");
                assert!(resp.status.is_success());
                black_box(resp.body.wire_bytes().len())
            })
        });
    }
    group.finish();
    drop(reader);
    drop(writer);
    handle.shutdown();
}

/// The load run: the `mixed` task set, 4 users on keep-alive
/// connections, request-bounded for a deterministic task sequence.
/// Writes `BENCH_serve.json` and asserts the floor.
fn load_report() {
    let handle = start_server();
    let mut cfg = LoadConfig::new(handle.addr().to_string());
    cfg.users = 4;
    cfg.requests_per_user = 2_000;
    cfg.seed = 0xBE7C4;
    let report = run_load(&cfg).expect("load run completes");
    let metrics = handle.shutdown();

    let a = &report.aggregate;
    println!("\nserve load (mixed task set, {} users x {} requests):", report.users, report.requests_per_user);
    println!(
        "  {:.0} req/s — ok {}  304 {}  4xx {}  5xx {}  transport {}",
        report.throughput_rps, a.ok, a.not_modified, a.client_errors, a.server_errors,
        a.transport_errors
    );
    println!(
        "  latency p50 {:.3}ms  p90 {:.3}ms  p99 {:.3}ms",
        a.latency.p50_ms, a.latency.p90_ms, a.latency.p99_ms
    );

    // Client-side and server-side accounting must agree before the
    // artifact is worth anything.
    let served = metrics
        .deterministic
        .counters
        .get("serve.requests")
        .copied()
        .unwrap_or(0);
    assert!(
        served >= report.total_requests,
        "server saw {served} requests, loadgen sent {}",
        report.total_requests
    );
    assert!(
        !metrics.deterministic.counters.contains_key("serve.5xx"),
        "server recorded 5xx responses below the shed threshold"
    );
    report
        .assert_floor(MIN_RPS)
        .expect("throughput floor / zero-error gate");
    report
        .assert_p99_slo(MAX_P99_MS)
        .expect("p99 latency SLO gate");
    assert!(
        !report.timeline.is_empty(),
        "load report carries no latency timeline"
    );
    println!(
        "  timeline: {} snapshots, final p99 {:.3}ms (SLO {MAX_P99_MS:.0}ms: ok)",
        report.timeline.len(),
        report.timeline.last().map(|s| s.p99_ms).unwrap_or(0.0)
    );

    let json = report.to_json().expect("artifact serializes");
    // Anchor to the workspace root, not the bench CWD, so the artifact
    // lands at a stable path (`cargo bench` runs from crates/bench).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("BENCH_serve.json writes");
    println!("  wrote BENCH_serve.json (floor {MIN_RPS:.0} req/s: ok)");
}

criterion_group! {
    name = serve;
    config = Criterion::default().sample_size(30);
    targets = bench_round_trip
}

fn main() {
    serve();
    load_report();
}
