//! Substrate microbenches: the primitives every crawl step exercises
//! thousands of times — URL parsing, token extraction, element matching,
//! cookie handling, DNS resolution, and the Ratcliff/Obershelp metric.

use cc_bench::small_web;
use cc_core::extract::extract_tokens;
use cc_crawler::matching::{select_shared, shared_elements};
use cc_http::SetCookie;
use cc_url::Url;
use cc_util::strings::ratcliff_obershelp;
use cc_util::DetRng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_url(c: &mut Criterion) {
    let raw = "https://adclick.g.doubleclick.net/click?cc_dest=https%3A%2F%2Fwww.shop.com%2Fdeal&cc_chain=r.syncpx.link&cc_cid=42&gclid=f3a9c17e2b4d5a60&utm_campaign=sweet_magnolia&ts=1666666666123";
    c.bench_function("substrate/url_parse", |b| {
        b.iter(|| black_box(Url::parse(black_box(raw)).unwrap()).query().len())
    });
    let url = Url::parse(raw).unwrap();
    c.bench_function("substrate/url_serialize", |b| {
        b.iter(|| black_box(url.to_url_string()).len())
    });
    c.bench_function("substrate/registered_domain", |b| {
        b.iter(|| {
            black_box(cc_url::registered_domain(black_box(
                "adclick.g.doubleclick.net",
            )))
        })
    });
}

fn bench_extract(c: &mut Criterion) {
    let nested =
        r#"{"blob":"uid%3Ddeadbeef0011%26lang%3Den-US","ids":["a1b2c3d4e5f6a7b8"],"n":42}"#;
    c.bench_function("substrate/extract_nested_json", |b| {
        b.iter(|| black_box(extract_tokens("payload", black_box(nested))).len())
    });
    let blob = "gclid=abcdef123456&ts=1666666666123&topic=sweet_magnolia&sid=a1b2c3d4e5";
    c.bench_function("substrate/extract_urlencoded", |b| {
        b.iter(|| black_box(extract_tokens("_rcv", black_box(blob))).len())
    });
}

fn bench_matching(c: &mut Criterion) {
    // Realistic element lists from an actual page load.
    let web = small_web();
    let mut browser = cc_browser::Browser::new(
        web,
        cc_browser::Profile::safari("bench", 1, DetRng::new(1)),
        cc_browser::Storage::new(cc_browser::StoragePolicy::Partitioned),
        cc_net::SimClock::new(),
        cc_net::FaultModel::none(DetRng::new(2)),
    );
    let seed_url = web.seeder_urls()[0].clone();
    let out = browser.navigate(seed_url).expect("load");
    let elements = out.page.elements;
    let lists = [
        elements.as_slice(),
        elements.as_slice(),
        elements.as_slice(),
    ];

    c.bench_function("substrate/shared_elements", |b| {
        b.iter(|| black_box(shared_elements(black_box(lists))).len())
    });
    c.bench_function("substrate/controller_select", |b| {
        let mut rng = DetRng::new(3);
        b.iter(|| black_box(select_shared(black_box(lists), "seed.com", &mut rng)))
    });
}

fn bench_cookies(c: &mut Criterion) {
    let header =
        "uid=f3a9c17e2b4d5a60; Max-Age=7776000; Domain=example.com; Path=/; Secure; SameSite=None";
    c.bench_function("substrate/set_cookie_parse", |b| {
        b.iter(|| black_box(SetCookie::parse(black_box(header))).is_some())
    });
}

fn bench_dns(c: &mut Criterion) {
    let web = small_web();
    let host = web.sites[0].www_fqdn();
    c.bench_function("substrate/dns_resolve", |b| {
        b.iter(|| black_box(web.dns.resolve(black_box(&host))).is_ok())
    });
}

fn bench_similarity(c: &mut Criterion) {
    let a = "f3a9c17e2b4d5a60f3a9c17e2b4d5a60";
    let b_ = "f3a9c17e2b4d5a60aabbccddeeff0011";
    c.bench_function("substrate/ratcliff_obershelp", |b| {
        b.iter(|| black_box(ratcliff_obershelp(black_box(a), black_box(b_))))
    });
}

fn bench_navigation(c: &mut Criterion) {
    let web = small_web();
    c.bench_function("substrate/navigate_and_render", |b| {
        let mut browser = cc_browser::Browser::new(
            web,
            cc_browser::Profile::safari("bench", 1, DetRng::new(9)),
            cc_browser::Storage::new(cc_browser::StoragePolicy::Partitioned),
            cc_net::SimClock::new(),
            cc_net::FaultModel::none(DetRng::new(10)),
        );
        let seed_url = web.seeder_urls()[1].clone();
        b.iter(|| {
            browser.reset_for_new_walk();
            let out = browser.navigate(black_box(seed_url.clone())).expect("nav");
            black_box(out.page.elements.len())
        })
    });
}

criterion_group! {
    name = substrate;
    config = Criterion::default().sample_size(30);
    targets = bench_url, bench_extract, bench_matching, bench_cookies, bench_dns,
              bench_similarity, bench_navigation
}
criterion_main!(substrate);
