//! Parallel-executor benches: crawl throughput at 1/2/4/8 workers.
//!
//! The crawl is embarrassingly parallel once walk randomness is keyed on
//! global walk ids (only the ground-truth ledger is shared, behind a
//! short-lived mutex), so on a multi-core host the medium-world crawl
//! should scale near-linearly until workers exceed cores. Besides the
//! per-worker-count Criterion samples, the harness prints a speedup table
//! relative to the 1-worker run — on a single-core host expect ≈1.0×
//! across the board, which is the executor's overhead check rather than
//! its scaling check.
//!
//! The speedup run also records itself through the `cc-telemetry` metrics
//! registry and writes a machine-readable `BENCH_parallel.json` artifact
//! (schema `cc-bench/parallel/v2`: serial baseline, per-worker-count
//! timings, speedups and per-core scaling efficiency, the telemetry
//! hot-path contention race, and the full telemetry run report), so the
//! perf trajectory across PRs is diffable. On a host with ≥4 cores the
//! 4-worker run is additionally gated at ≥0.8× per-core efficiency;
//! smaller hosts skip that gate with a notice.

use std::time::Instant;

use cc_bench::{contention, detected_cores, medium_web};
use cc_crawler::{crawl_parallel, CrawlConfig, ParallelCrawlConfig, Walker};
use cc_telemetry::{RunReport, Session};
use criterion::{criterion_group, Criterion};
use serde::Serialize;
use std::hint::black_box;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn crawl_cfg() -> CrawlConfig {
    CrawlConfig {
        seed: 0x9A7A11E1,
        steps_per_walk: 5,
        ..CrawlConfig::default()
    }
}

/// One Criterion target per worker count, all crawling the same medium
/// world with the same config.
fn bench_workers(c: &mut Criterion) {
    let web = medium_web();
    let cfg = crawl_cfg();
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        group.bench_function(format!("crawl_250_walks/{workers}_workers"), |b| {
            b.iter(|| {
                let ds = crawl_parallel(
                    black_box(web),
                    black_box(&cfg),
                    ParallelCrawlConfig::with_workers(workers),
                );
                black_box(ds.total_steps())
            })
        });
    }
    group.finish();
}

/// The serial `Walker::crawl` baseline the executor must match bit-for-bit
/// (and ideally beat in wall-clock).
fn bench_serial_baseline(c: &mut Criterion) {
    let web = medium_web();
    let cfg = crawl_cfg();
    c.bench_function("parallel/serial_baseline", |b| {
        b.iter(|| {
            let ds = Walker::new(web, cfg.clone()).crawl();
            black_box(ds.total_steps())
        })
    });
}

/// One row of the `BENCH_parallel.json` artifact.
#[derive(Serialize)]
struct SpeedupRow {
    workers: usize,
    secs: f64,
    /// Wall-clock speedup relative to the serial `Walker::crawl` baseline.
    speedup_vs_serial: f64,
    /// Wall-clock speedup relative to the 1-worker parallel run.
    speedup_vs_one_worker: f64,
    /// Per-core scaling efficiency: `speedup_vs_serial` divided by the
    /// cores this run could actually use (`min(workers, cpu_cores)`).
    /// 1.0 = perfect linear scaling; on a 1-core host every run's
    /// denominator is 1, so this degenerates to the overhead check.
    scaling_efficiency: f64,
    /// Worst per-worker queue starvation for this run (0 = every worker
    /// claimed its fair share of walks, 1 = a worker claimed nothing).
    max_starvation: f64,
    /// Mean `crawl.worker/crawl.walk` span for this run's walks. On a host
    /// with fewer cores than workers, contended runs inflate this (a walk
    /// span includes time descheduled while other workers hold the core);
    /// the 1-worker value is the executor's true per-walk cost and is
    /// asserted within 2× of the serial walk span.
    walk_span_mean_ms: f64,
}

/// (count, total_ms) of one span path in a report snapshot.
fn span_totals(report: &RunReport, path: &str) -> (u64, f64) {
    report
        .timing
        .spans
        .iter()
        .find(|s| s.path == path)
        .map(|s| (s.count, s.total_ms))
        .unwrap_or((0, 0.0))
}

/// Mean span duration between two rollup snapshots (the rollups only
/// accumulate, so a before/after diff isolates one run).
fn span_mean_delta(before: (u64, f64), after: (u64, f64)) -> f64 {
    let count = after.0.saturating_sub(before.0);
    if count == 0 {
        return 0.0;
    }
    (after.1 - before.1) / count as f64
}

/// The machine-readable perf artifact the speedup run writes.
///
/// Schema `cc-bench/parallel/v2` is a strict superset of v1: every v1
/// field is still present with the same meaning, so v1 readers that
/// ignore unknown fields keep working. v2 adds `scaling_efficiency`
/// per run and the `contention` section, and `cpu_cores` now honors
/// the `CC_BENCH_CORES` override.
#[derive(Serialize)]
struct BenchArtifact {
    schema: &'static str,
    bench: &'static str,
    cpu_cores: usize,
    walks: usize,
    serial_baseline_secs: f64,
    /// Mean `crawl.walk` span across the serial baseline runs — the
    /// reference for each row's `walk_span_mean_ms`.
    serial_walk_span_mean_ms: f64,
    runs: Vec<SpeedupRow>,
    /// Telemetry hot-path contention race: legacy string-keyed map path
    /// vs the per-worker sharded registry path, same thread count as
    /// the widest crawl run.
    contention: contention::ContentionResult,
    /// The full telemetry run report for the whole sweep (crawl counters,
    /// latency histograms, span rollups).
    telemetry: RunReport,
}

/// Wall-clock speedup table relative to one worker, plus a determinism
/// spot-check: every worker count must produce the same dataset. Timings
/// are recorded through the telemetry registry and written to
/// `BENCH_parallel.json` alongside the printed table.
fn speedup_report() {
    let web = medium_web();
    let cfg = crawl_cfg();
    let cores = detected_cores();
    let session = Session::start();

    // Best-of-N wall-clock: a single 250-walk crawl takes ~100ms, so one
    // scheduler hiccup on a busy CI box can triple a reading. The minimum
    // over a few runs is the standard noise-robust estimator for the
    // overhead gate.
    const TIMING_RUNS: usize = 7;

    // Serial baseline: the single-threaded `Walker::crawl` the executor
    // must match bit-for-bit.
    let serial_span_before = span_totals(&session.report(), "crawl.walk");
    let mut serial_secs = f64::INFINITY;
    let mut serial_ds = None;
    for _ in 0..TIMING_RUNS {
        let start = Instant::now();
        let ds = Walker::new(web, cfg.clone()).crawl();
        serial_secs = serial_secs.min(start.elapsed().as_secs_f64());
        serial_ds = Some(ds);
    }
    let serial_ds = serial_ds.expect("at least one serial run");
    let serial_walk_span_mean_ms =
        span_mean_delta(serial_span_before, span_totals(&session.report(), "crawl.walk"));
    let serial_json = serial_ds.to_json().expect("dataset serializes");
    cc_telemetry::observe_ms("bench.parallel.serial_baseline", serial_secs * 1e3);

    let mut rows = Vec::new();
    let mut one_worker_secs = None;
    println!("\nparallel crawl speedup (medium world, 250 walks, {cores} CPU core(s)):");
    println!("  serial baseline: {serial_secs:7.3}s  walk span {serial_walk_span_mean_ms:.2}ms");
    for workers in WORKER_COUNTS {
        let worker_span_before = span_totals(&session.report(), "crawl.worker/crawl.walk");
        let mut secs = f64::INFINITY;
        let mut last = None;
        for _ in 0..TIMING_RUNS {
            let start = Instant::now();
            let ds = crawl_parallel(web, &cfg, ParallelCrawlConfig::with_workers(workers));
            secs = secs.min(start.elapsed().as_secs_f64());
            last = Some(ds);
        }
        let ds = last.expect("at least one parallel run");
        let json = ds.to_json().expect("dataset serializes");
        assert_eq!(
            serial_json, json,
            "{workers}-worker crawl diverged from the serial crawl"
        );
        cc_telemetry::observe_ms("bench.parallel.crawl", secs * 1e3);
        cc_telemetry::gauge_labeled("bench.parallel.secs", &format!("{workers}w"), secs);

        // Work-stealing fairness: the executor reserves a quarter of each
        // worker's fair share up front, so starvation is bounded by ~0.75
        // by construction (plus integer rounding) regardless of how the
        // shared tail races. A reading above 0.85 means the reservation
        // scheme regressed.
        let walk_span_mean_ms = span_mean_delta(
            worker_span_before,
            span_totals(&session.report(), "crawl.worker/crawl.walk"),
        );
        // Uncontended (1 worker), the worker path's per-walk span is the
        // executor's true per-walk cost; keep it within 2× of the serial
        // walk span. Contended runs legitimately inflate the span (it
        // includes time descheduled while other workers hold the core), so
        // only the 1-worker run is gated.
        if workers == 1 && serial_walk_span_mean_ms > 0.0 {
            assert!(
                walk_span_mean_ms <= 2.0 * serial_walk_span_mean_ms,
                "1-worker per-walk span {walk_span_mean_ms:.3}ms exceeds 2x the \
                 serial walk span {serial_walk_span_mean_ms:.3}ms"
            );
        }

        let gauges = session.report().timing.gauges;
        let max_starvation = (0..workers)
            .filter_map(|w| {
                gauges
                    .get(&format!("crawl.worker.queue_starvation.{w}"))
                    .copied()
            })
            .fold(0.0_f64, f64::max);
        assert!(
            max_starvation <= 0.85,
            "{workers}-worker run starved a worker past the reservation \
             bound: {max_starvation:.3}"
        );

        let base = *one_worker_secs.get_or_insert(secs);
        let usable_cores = workers.min(cores).max(1);
        let scaling_efficiency = (serial_secs / secs) / usable_cores as f64;
        rows.push(SpeedupRow {
            workers,
            secs,
            speedup_vs_serial: serial_secs / secs,
            speedup_vs_one_worker: base / secs,
            scaling_efficiency,
            max_starvation,
            walk_span_mean_ms,
        });
        println!(
            "  {workers} worker(s): {secs:7.3}s  speedup {:.2}x  efficiency {scaling_efficiency:.2}  starvation {max_starvation:.2}  walk span {walk_span_mean_ms:.2}ms  ({} walks, identical output)",
            base / secs,
            ds.walks.len(),
        );
    }

    // Per-core scaling gate: on a host with ≥4 cores the 4-worker run
    // must keep at least 0.8× efficiency per core. On smaller hosts the
    // denominator would be the core count, turning this into a noisy
    // duplicate of the overhead gate — skip it with a notice instead.
    if cores >= 4 {
        let four = rows
            .iter()
            .find(|r| r.workers == 4)
            .expect("4-worker row exists");
        assert!(
            four.scaling_efficiency >= 0.8,
            "4-worker per-core scaling efficiency {:.3} fell below the \
             0.8x bar on a {cores}-core host",
            four.scaling_efficiency
        );
        println!(
            "  scaling gate: 4-worker efficiency {:.2} >= 0.80 on {cores} cores",
            four.scaling_efficiency
        );
    } else {
        println!(
            "  scaling gate: skipped ({cores} core(s) < 4 — efficiency \
             numbers above are overhead checks, not scaling checks)"
        );
    }

    // Telemetry hot-path contention: race the widest worker count
    // through the legacy string-keyed path and the sharded id path.
    let contention = contention::race(
        WORKER_COUNTS[WORKER_COUNTS.len() - 1],
        200_000,
    );
    println!(
        "  telemetry contention ({} threads x {} ops): string path {:.3}s, \
         sharded path {:.3}s -> {:.1}x",
        contention.threads,
        contention.ops_per_thread,
        contention.string_path_secs,
        contention.sharded_path_secs,
        contention.speedup
    );

    let artifact = BenchArtifact {
        schema: "cc-bench/parallel/v2",
        bench: "crawl_250_walks",
        cpu_cores: cores,
        walks: serial_ds.walks.len(),
        serial_baseline_secs: serial_secs,
        serial_walk_span_mean_ms,
        runs: rows,
        contention,
        telemetry: session.report(),
    };
    let json = serde_json::to_string_pretty(&artifact).expect("artifact serializes");
    // Anchor to the workspace root, not the bench CWD, so the artifact
    // lands at a stable path (`cargo bench` runs from crates/bench).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, &json).expect("BENCH_parallel.json writes");
    println!("  wrote BENCH_parallel.json");
}

criterion_group! {
    name = parallel;
    config = Criterion::default().sample_size(10);
    targets = bench_workers, bench_serial_baseline
}

fn main() {
    parallel();
    speedup_report();
}
