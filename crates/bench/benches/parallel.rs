//! Parallel-executor benches: crawl throughput at 1/2/4/8 workers.
//!
//! The crawl is embarrassingly parallel once walk randomness is keyed on
//! global walk ids (only the ground-truth ledger is shared, behind a
//! short-lived mutex), so on a multi-core host the medium-world crawl
//! should scale near-linearly until workers exceed cores. Besides the
//! per-worker-count Criterion samples, the harness prints a speedup table
//! relative to the 1-worker run — on a single-core host expect ≈1.0×
//! across the board, which is the executor's overhead check rather than
//! its scaling check.

use std::time::Instant;

use cc_bench::medium_web;
use cc_crawler::{crawl_parallel, CrawlConfig, ParallelCrawlConfig, Walker};
use criterion::{criterion_group, Criterion};
use std::hint::black_box;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn crawl_cfg() -> CrawlConfig {
    CrawlConfig {
        seed: 0x9A7A11E1,
        steps_per_walk: 5,
        ..CrawlConfig::default()
    }
}

/// One Criterion target per worker count, all crawling the same medium
/// world with the same config.
fn bench_workers(c: &mut Criterion) {
    let web = medium_web();
    let cfg = crawl_cfg();
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        group.bench_function(format!("crawl_250_walks/{workers}_workers"), |b| {
            b.iter(|| {
                let ds = crawl_parallel(
                    black_box(web),
                    black_box(&cfg),
                    ParallelCrawlConfig::with_workers(workers),
                );
                black_box(ds.total_steps())
            })
        });
    }
    group.finish();
}

/// The serial `Walker::crawl` baseline the executor must match bit-for-bit
/// (and ideally beat in wall-clock).
fn bench_serial_baseline(c: &mut Criterion) {
    let web = medium_web();
    let cfg = crawl_cfg();
    c.bench_function("parallel/serial_baseline", |b| {
        b.iter(|| {
            let ds = Walker::new(web, cfg.clone()).crawl();
            black_box(ds.total_steps())
        })
    });
}

/// Wall-clock speedup table relative to one worker, plus a determinism
/// spot-check: every worker count must produce the same dataset.
fn speedup_report() {
    let web = medium_web();
    let cfg = crawl_cfg();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut base_secs = None;
    let mut base_json = None;
    println!("\nparallel crawl speedup (medium world, 250 walks, {cores} CPU core(s)):");
    for workers in WORKER_COUNTS {
        let start = Instant::now();
        let ds = crawl_parallel(web, &cfg, ParallelCrawlConfig::with_workers(workers));
        let secs = start.elapsed().as_secs_f64();
        let json = ds.to_json().expect("dataset serializes");
        let base = *base_secs.get_or_insert(secs);
        let reference = base_json.get_or_insert_with(|| json.clone());
        assert_eq!(
            *reference, json,
            "{workers}-worker crawl diverged from the 1-worker crawl"
        );
        println!(
            "  {workers} worker(s): {secs:7.3}s  speedup {:.2}x  ({} walks, identical output)",
            base / secs,
            ds.walks.len(),
        );
    }
}

criterion_group! {
    name = parallel;
    config = Criterion::default().sample_size(10);
    targets = bench_workers, bench_serial_baseline
}

fn main() {
    parallel();
    speedup_report();
}
