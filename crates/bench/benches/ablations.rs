//! Ablation benches: the prior-work baselines of §8.1 against
//! CrumbCruncher's methodology (DESIGN.md experiments H4, A1, A2).

use cc_bench::fixture;
use cc_core::baselines::{fuzzy_ablation, lifetime_ablation, two_crawler_ablation};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// H4: lifetime-threshold session filtering (90-day / 30-day variants).
fn bench_lifetime(c: &mut Criterion) {
    let fx = fixture();
    let mut group = c.benchmark_group("ablation/lifetime");
    for days in [30u64, 90] {
        group.bench_function(format!("{days}d"), |b| {
            b.iter(|| {
                let a = lifetime_ablation(black_box(&fx.output.findings), days);
                black_box(a.missed_fraction())
            })
        });
    }
    group.finish();
}

/// A2: Ratcliff/Obershelp fuzzy matching at prior work's 33% and 45%
/// tolerances (the paper requires exact equality).
fn bench_fuzzy(c: &mut Criterion) {
    let fx = fixture();
    let mut group = c.benchmark_group("ablation/fuzzy_matching");
    group.sample_size(10);
    for (label, threshold) in [("33pct", 0.67), ("45pct", 0.55)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let a = fuzzy_ablation(black_box(&fx.output.findings), threshold);
                black_box(a.wrongly_merged)
            })
        });
    }
    group.finish();
}

/// A1: the two-crawler methodology of prior work.
fn bench_two_crawler(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("ablation/two_crawler", |b| {
        b.iter(|| {
            let a = two_crawler_ablation(black_box(&fx.output.findings));
            black_box(a.missed_fraction())
        })
    });
}

/// The classification stage alone (H6's manual workload included).
fn bench_classify(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("ablation/classify_only", |b| {
        b.iter(|| {
            let (groups, stats) =
                cc_core::classify::classify(black_box(&fx.output.candidates), black_box(&[]));
            black_box((groups.len(), stats.uids))
        })
    });
}

/// E2: training the §7.2 learned token classifier on the manual-stage
/// workload.
fn bench_ml_train(c: &mut Criterion) {
    let fx = fixture();
    let truth = fx.web.truth_snapshot();
    let values: Vec<String> = fx
        .output
        .groups
        .iter()
        .filter(|g| g.entered_manual)
        .flat_map(|g| g.values.values().flatten().cloned())
        .collect();
    let labeled = cc_core::ml::training_set(&truth, &values);
    let refs: Vec<(&str, bool)> = labeled.iter().map(|(s, b)| (s.as_str(), *b)).collect();
    c.bench_function("ablation/ml_train_200_epochs", |b| {
        b.iter(|| {
            let model = cc_core::ml::TokenClassifier::train(black_box(&refs), 200, 1.0, 1e-5);
            black_box(model.probability("f3a9c17e2b4d5a60"))
        })
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(20);
    targets = bench_lifetime, bench_fuzzy, bench_two_crawler, bench_classify, bench_ml_train
}
criterion_main!(ablations);
