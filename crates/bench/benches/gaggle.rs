//! Gaggle benches: distributed assembled-walk throughput at 1/2/4 workers
//! vs the single-process parallel crawl, plus the wire overhead the
//! cc-gaggle/v1 framing adds per assembled walk.
//!
//! Workers run as in-process threads speaking real TCP to the manager on
//! loopback — same codec, leases, and heartbeats as separate processes,
//! without fork/exec noise polluting the timings. Every distributed run is
//! asserted byte-identical to the single-process dataset before its timing
//! is recorded, so the artifact can never report a fast-but-wrong run.
//!
//! The speedup run writes `BENCH_gaggle.json` (schema `cc-bench/gaggle/v1`:
//! single-process baseline, per-worker-count timings and speedups, frame
//! and byte counters with per-walk overhead) so the distributed perf
//! trajectory across PRs is diffable.

use std::time::Instant;

use cc_bench::detected_cores;
use cc_crawler::StudyConfig;
use cc_gaggle::{run_worker, GaggleConfig, Manager, ManagerOptions, ManagerOutcome, WorkerConfig};
use cc_web::WebConfig;
use criterion::{criterion_group, Criterion};
use serde::Serialize;
use std::hint::black_box;

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
const WALKS: usize = 250;

fn study() -> StudyConfig {
    StudyConfig::builder()
        .web(WebConfig {
            seed: 0x9A7A11E1,
            n_sites: 800,
            n_seeders: 250,
            ..WebConfig::default()
        })
        .seed(0x9A7A11E1)
        .steps(5)
        .walks(WALKS)
        .workers(4)
        .build()
        .expect("bench study config is valid")
}

/// One full distributed run: manager + `n_workers` loopback-TCP worker
/// threads, timed end to end (world generation through final assembly —
/// the same span the single-process baseline covers).
fn run_gaggle(n_workers: usize) -> (f64, ManagerOutcome) {
    let cfg = GaggleConfig {
        bind: "127.0.0.1:0".into(),
        workers_expected: n_workers,
        lease_walks: 25,
        lease_timeout_ms: 10_000,
    };
    let start = Instant::now();
    let manager =
        Manager::start(&study(), cfg, ManagerOptions::default()).expect("manager starts");
    let addr = manager.addr().to_string();
    let workers: Vec<_> = (0..n_workers)
        .map(|i| {
            let connect = addr.clone();
            std::thread::spawn(move || {
                run_worker(&WorkerConfig {
                    connect,
                    label: format!("bench-{i}"),
                })
            })
        })
        .collect();
    let outcome = manager.join().expect("gaggle run completes");
    for handle in workers {
        handle
            .join()
            .expect("worker thread joins")
            .expect("worker finishes cleanly");
    }
    (start.elapsed().as_secs_f64(), outcome)
}

/// Single-process reference: world generation plus the `--workers 4`
/// parallel crawl, the run every gaggle must reproduce byte for byte.
fn run_single_process() -> (f64, String) {
    let study = study();
    let start = Instant::now();
    let web = cc_web::generate(&study.web);
    let dataset = cc_crawler::crawl_study(&web, &study).expect("single-process crawl runs");
    let secs = start.elapsed().as_secs_f64();
    (secs, dataset.to_json().expect("dataset serializes"))
}

/// One Criterion target per worker count — each iteration is a complete
/// manager lifecycle (bind, handshake, leases, assembly, teardown).
fn bench_gaggle(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaggle");
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        group.bench_function(format!("assemble_{WALKS}_walks/{workers}_workers"), |b| {
            b.iter(|| {
                let (_, outcome) = run_gaggle(black_box(workers));
                black_box(outcome.dataset.total_steps())
            })
        });
    }
    group.finish();
}

/// One row of the `BENCH_gaggle.json` artifact.
#[derive(Serialize)]
struct GaggleRow {
    workers: usize,
    secs: f64,
    /// Walks assembled per second of wall clock, the gaggle's headline.
    assembled_walks_per_sec: f64,
    /// Wall-clock speedup relative to the single-process crawl.
    speedup_vs_single_process: f64,
    leases_issued: u64,
    frames_sent: u64,
    frames_received: u64,
    bytes_sent: u64,
    bytes_received: u64,
    /// Total wire bytes (both directions) divided by assembled walks —
    /// what each walk costs in framing, shard JSON, and heartbeats.
    frame_overhead_bytes_per_walk: f64,
}

/// The machine-readable perf artifact the speedup run writes.
#[derive(Serialize)]
struct BenchArtifact {
    schema: &'static str,
    bench: &'static str,
    cpu_cores: usize,
    walks: usize,
    single_process_secs: f64,
    single_process_walks_per_sec: f64,
    runs: Vec<GaggleRow>,
}

/// Speedup table + wire-overhead accounting, with an in-bench
/// byte-identity assertion per worker count, written to `BENCH_gaggle.json`.
fn speedup_report() {
    let cores = detected_cores();

    // Best-of-N wall clock: the minimum over a few runs is the standard
    // noise-robust estimator on a busy CI box.
    const TIMING_RUNS: usize = 3;

    let mut single_secs = f64::INFINITY;
    let mut single_json = String::new();
    for _ in 0..TIMING_RUNS {
        let (secs, json) = run_single_process();
        single_secs = single_secs.min(secs);
        single_json = json;
    }
    let single_wps = WALKS as f64 / single_secs;
    println!("\ngaggle throughput ({WALKS} walks, {cores} CPU core(s)):");
    println!("  single-process: {single_secs:7.3}s  {single_wps:8.1} walks/s");

    let mut rows = Vec::new();
    for workers in WORKER_COUNTS {
        let mut secs = f64::INFINITY;
        let mut last = None;
        for _ in 0..TIMING_RUNS {
            let (run_secs, outcome) = run_gaggle(workers);
            assert_eq!(
                single_json,
                outcome.dataset.to_json().expect("dataset serializes"),
                "{workers}-worker gaggle diverged from the single-process crawl"
            );
            secs = secs.min(run_secs);
            last = Some(outcome);
        }
        let outcome = last.expect("at least one gaggle run");
        let stats = outcome.stats;
        let walks = outcome.dataset.walks.len();
        let wire_bytes = stats.bytes_sent + stats.bytes_received;
        let row = GaggleRow {
            workers,
            secs,
            assembled_walks_per_sec: walks as f64 / secs,
            speedup_vs_single_process: single_secs / secs,
            leases_issued: stats.leases_issued,
            frames_sent: stats.frames_sent,
            frames_received: stats.frames_received,
            bytes_sent: stats.bytes_sent,
            bytes_received: stats.bytes_received,
            frame_overhead_bytes_per_walk: wire_bytes as f64 / walks.max(1) as f64,
        };
        println!(
            "  {workers} worker(s): {secs:7.3}s  {:8.1} walks/s  speedup {:.2}x  {} leases  {} frames  {:.0} wire bytes/walk  (identical output)",
            row.assembled_walks_per_sec,
            row.speedup_vs_single_process,
            row.leases_issued,
            stats.frames_sent + stats.frames_received,
            row.frame_overhead_bytes_per_walk,
        );
        rows.push(row);
    }

    let artifact = BenchArtifact {
        schema: "cc-bench/gaggle/v1",
        bench: "assemble_250_walks",
        cpu_cores: cores,
        walks: WALKS,
        single_process_secs: single_secs,
        single_process_walks_per_sec: single_wps,
        runs: rows,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("artifact serializes");
    // Anchor to the workspace root, not the bench CWD, so the artifact
    // lands at a stable path (`cargo bench` runs from crates/bench).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gaggle.json");
    std::fs::write(path, &json).expect("BENCH_gaggle.json writes");
    println!("  wrote BENCH_gaggle.json");
}

criterion_group! {
    name = gaggle;
    config = Criterion::default().sample_size(10);
    targets = bench_gaggle
}

fn main() {
    gaggle();
    speedup_report();
}
