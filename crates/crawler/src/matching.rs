//! The central controller's element-matching heuristics.
//!
//! §3.3: the controller "compares the three lists to find elements that are
//! the same across all three instances of the page. We consider elements to
//! be the same if any of three heuristics are met:
//!
//! 1. They are anchors and their href values are the same (not including
//!    query parameters).
//! 2. They have the same HTML attribute names (the values may differ) and
//!    similar bounding boxes (the y-coordinate may differ …).
//! 3. They have the same HTML attribute names and x-path."
//!
//! "These heuristics are imperfect: they may incorrectly label elements as
//! the same when they are not" — that imperfection is load-bearing: matched
//! iframes serving different ads are exactly the divergence cases of §3.3
//! and the dynamic smuggling of §3.7.2.

use cc_util::DetRng;
use cc_web::{ElementKind, ElementModel};

/// Whether two elements are "the same" under the §3.3 heuristics.
pub fn same_element(a: &ElementModel, b: &ElementModel) -> bool {
    // Heuristic 1: anchors with equal href modulo query parameters.
    if a.kind == ElementKind::Anchor && b.kind == ElementKind::Anchor {
        if let (Some(ha), Some(hb)) = (&a.href, &b.href) {
            if ha.without_query() == hb.without_query() {
                return true;
            }
        }
    }
    if a.kind != b.kind {
        return false;
    }
    let attrs_match = {
        let mut an = a.attr_names.clone();
        let mut bn = b.attr_names.clone();
        an.sort();
        bn.sort();
        an == bn
    };
    if !attrs_match {
        return false;
    }
    // Heuristic 2: same attribute names + similar bounding box (ignoring y).
    if a.bbox.similar(&b.bbox) {
        return true;
    }
    // Heuristic 3: same attribute names + same x-path.
    a.xpath == b.xpath
}

/// An element found on all three parallel crawls: the per-crawler indices
/// into each crawler's element list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedElement {
    /// Index into each of the three lists (Safari-1, Safari-2, Chrome-3).
    pub indices: [usize; 3],
}

/// Find all elements shared across the three element lists (greedy
/// first-match, which is what a practical controller does).
pub fn shared_elements(lists: [&[ElementModel]; 3]) -> Vec<SharedElement> {
    let mut used_b = vec![false; lists[1].len()];
    let mut used_c = vec![false; lists[2].len()];
    let mut shared = Vec::new();
    for (ia, ea) in lists[0].iter().enumerate() {
        let mb = lists[1]
            .iter()
            .enumerate()
            .find(|(ib, eb)| !used_b[*ib] && same_element(ea, eb));
        let Some((ib, _)) = mb else { continue };
        let mc = lists[2]
            .iter()
            .enumerate()
            .find(|(ic, ec)| !used_c[*ic] && same_element(ea, ec));
        let Some((ic, _)) = mc else { continue };
        used_b[ib] = true;
        used_c[ic] = true;
        shared.push(SharedElement {
            indices: [ia, ib, ic],
        });
    }
    shared
}

/// Controller decision: pick the element all three crawlers will click.
///
/// §3.1: "CrumbCruncher preferentially chooses elements that navigate to a
/// URL with a different registered domain than the current page. If such an
/// element does not exist, CrumbCruncher selects one at random."
pub fn select_shared(
    lists: [&[ElementModel]; 3],
    current_domain: &str,
    rng: &mut DetRng,
) -> Option<SharedElement> {
    let shared = shared_elements(lists);
    if shared.is_empty() {
        return None;
    }
    let cross: Vec<&SharedElement> = shared
        .iter()
        .filter(|s| lists[0][s.indices[0]].is_cross_site(current_domain))
        .collect();
    if !cross.is_empty() {
        Some(*cross[rng.index(cross.len())])
    } else {
        Some(shared[rng.index(shared.len())])
    }
}

/// Find the element in a single list matching a reference element (how the
/// trailing Safari-1R locates "the same" element on its own page load).
pub fn find_matching(reference: &ElementModel, list: &[ElementModel]) -> Option<usize> {
    list.iter().position(|e| same_element(reference, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_url::Url;
    use cc_web::{BBox, ClickTarget};

    fn anchor(href: &str, xpath: &str) -> ElementModel {
        // Derive distinct geometry from the x-path so heuristics 2/3 only
        // fire when a test explicitly aligns elements.
        let x = xpath.bytes().map(i32::from).sum::<i32>();
        let u = Url::parse(href).unwrap();
        ElementModel {
            kind: ElementKind::Anchor,
            attr_names: vec!["href".into(), "class".into()],
            bbox: BBox {
                x,
                y: 0,
                w: 100,
                h: 20,
            },
            xpath: xpath.into(),
            href: Some(u.clone()),
            target: ClickTarget::Navigate(u),
        }
    }

    fn iframe(slot: &str, x: i32, y: i32) -> ElementModel {
        ElementModel {
            kind: ElementKind::Iframe,
            attr_names: vec!["src".into(), "width".into(), "height".into()],
            bbox: BBox {
                x,
                y,
                w: 300,
                h: 250,
            },
            xpath: format!("/html/body/div[2]/div[{slot}]/iframe"),
            href: None,
            target: ClickTarget::Navigate(Url::parse("https://adnet.com/click").unwrap()),
        }
    }

    #[test]
    fn heuristic1_href_ignores_query() {
        let a = anchor("https://x.com/p?uid=1", "/a");
        let b = anchor("https://x.com/p?uid=2", "/b");
        assert!(same_element(&a, &b));
        // Different href AND different geometry/x-path: no heuristic fires.
        let c = anchor("https://x.com/other", "/c");
        assert!(!same_element(&a, &c));
    }

    #[test]
    fn heuristic2_bbox_ignores_y() {
        let a = iframe("1", 300, 90);
        let b = iframe("9", 300, 500); // different xpath, same x/w/h
        assert!(same_element(&a, &b));
        let c = iframe("9", 310, 90); // x differs AND xpath differs
        assert!(!same_element(&a, &c));
    }

    #[test]
    fn heuristic3_xpath() {
        let mut a = iframe("1", 300, 90);
        let mut b = iframe("1", 720, 90); // same xpath, different x
        a.xpath = "/html/body/iframe[1]".into();
        b.xpath = "/html/body/iframe[1]".into();
        assert!(same_element(&a, &b));
    }

    #[test]
    fn attr_names_must_match_for_2_and_3() {
        let a = iframe("1", 300, 90);
        let mut b = iframe("1", 300, 90);
        b.attr_names = vec!["src".into(), "width".into()];
        assert!(!same_element(&a, &b));
    }

    #[test]
    fn attr_name_order_is_irrelevant() {
        let a = iframe("1", 300, 90);
        let mut b = iframe("1", 300, 90);
        b.attr_names.reverse();
        assert!(same_element(&a, &b));
    }

    #[test]
    fn kind_mismatch_never_matches() {
        let a = anchor("https://x.com/p", "/html/body/a");
        let mut b = iframe("1", 0, 0);
        b.attr_names = a.attr_names.clone();
        b.bbox = a.bbox;
        b.xpath = a.xpath.clone();
        assert!(!same_element(&a, &b));
    }

    #[test]
    fn shared_elements_across_three_lists() {
        let l1 = vec![anchor("https://x.com/1", "/a1"), iframe("1", 300, 90)];
        let l2 = vec![iframe("1", 300, 400), anchor("https://x.com/1?q=2", "/a1")];
        let l3 = vec![anchor("https://x.com/1", "/a1"), iframe("1", 300, 95)];
        let shared = shared_elements([&l1, &l2, &l3]);
        assert_eq!(shared.len(), 2);
        // The anchor maps to index 1 in list 2.
        let anchor_shared = shared
            .iter()
            .find(|s| l1[s.indices[0]].kind == ElementKind::Anchor)
            .unwrap();
        assert_eq!(anchor_shared.indices, [0, 1, 0]);
    }

    #[test]
    fn no_shared_elements_when_disjoint() {
        let l1 = vec![anchor("https://x.com/1", "/a1")];
        let l2 = vec![anchor("https://y.com/2", "/a2")];
        let l3 = vec![anchor("https://z.com/3", "/a3")];
        assert!(shared_elements([&l1, &l2, &l3]).is_empty());
        let mut rng = DetRng::new(1);
        assert!(select_shared([&l1, &l2, &l3], "cur.com", &mut rng).is_none());
    }

    #[test]
    fn select_prefers_cross_site() {
        let same_site = anchor("https://cur.com/inner", "/a1");
        let cross = anchor("https://other.com/x", "/a2");
        let l: Vec<ElementModel> = vec![same_site, cross];
        let mut rng = DetRng::new(3);
        for _ in 0..20 {
            let pick = select_shared([&l, &l, &l], "cur.com", &mut rng).unwrap();
            assert_eq!(pick.indices[0], 1, "must always prefer the cross-site link");
        }
    }

    #[test]
    fn select_falls_back_to_random_same_site() {
        let a = anchor("https://cur.com/a", "/a1");
        let b = anchor("https://cur.com/b", "/a2");
        let l = vec![a, b];
        let mut rng = DetRng::new(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            seen.insert(
                select_shared([&l, &l, &l], "cur.com", &mut rng)
                    .unwrap()
                    .indices[0],
            );
        }
        assert_eq!(seen.len(), 2, "random fallback should vary");
    }

    #[test]
    fn find_matching_for_trailing_crawler() {
        let reference = iframe("1", 300, 90);
        let list = vec![anchor("https://x.com/1", "/a"), iframe("1", 300, 800)];
        assert_eq!(find_matching(&reference, &list), Some(1));
        assert_eq!(find_matching(&reference, &list[..1]), None);
    }

    #[test]
    fn greedy_matching_does_not_reuse_elements() {
        // Two identical iframes in list 1 must map to two distinct
        // elements in lists 2 and 3.
        let l1 = vec![iframe("1", 300, 90), iframe("1", 300, 95)];
        let l2 = vec![iframe("1", 300, 10)];
        let l3 = vec![iframe("1", 300, 20), iframe("1", 300, 30)];
        let shared = shared_elements([&l1, &l2, &l3]);
        assert_eq!(shared.len(), 1, "only one b-list element to go around");
    }
}
