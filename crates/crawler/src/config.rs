//! The unified study configuration.
//!
//! [`StudyConfig`] is the one serde-able description of an entire study:
//! the world to generate, the crawl parameters, the fault-tolerance
//! policies, the executor's worker count, and the checkpoint schedule.
//! It replaces the old positional plumbing (a `WebConfig` here, a
//! `CrawlConfig` there, a worker count passed separately) with a builder:
//!
//! ```
//! use cc_crawler::StudyConfig;
//! use cc_net::RetryPolicy;
//!
//! let study = StudyConfig::builder()
//!     .seeders(100)
//!     .steps(10)
//!     .retry(RetryPolicy::default())
//!     .build()
//!     .unwrap();
//! assert_eq!(study.steps, 10);
//! ```
//!
//! Because the whole thing serializes, a crawl checkpoint embeds the exact
//! configuration it was produced under and `--resume` can refuse a
//! mismatched one.

use cc_browser::StoragePolicy;
use cc_net::{BreakerPolicy, RetryPolicy};
use cc_util::CcError;
use cc_web::WebConfig;
use serde::{Deserialize, Serialize};

use crate::walker::{CrawlConfig, DriverMode};

/// When and where the executor writes crawl checkpoints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Checkpoint file path (written atomically via temp-file + rename).
    pub path: String,
    /// Completed walks between checkpoint writes (>= 1). A final
    /// checkpoint is always written when the crawl stops.
    pub every: usize,
}

/// How the `serve` subcommand exposes a finished study over HTTP.
///
/// Lowered into `cc-serve`'s server configuration by the CLI; kept here
/// so one serde-able [`StudyConfig`] describes the whole deployment,
/// crawl and serving alike.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServePolicy {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Server worker threads (each owns one connection session).
    pub workers: usize,
    /// Admission bound: connections beyond `inflight + queued` are shed
    /// with `503`.
    pub max_inflight: usize,
    /// Keep-alive idle timeout per connection, in milliseconds.
    pub keep_alive_ms: u64,
}

impl Default for ServePolicy {
    fn default() -> Self {
        ServePolicy {
            addr: "127.0.0.1:8040".into(),
            workers: 8,
            max_inflight: 64,
            keep_alive_ms: 5_000,
        }
    }
}

impl ServePolicy {
    /// Check the policy for nonsense (mirrors `cc-serve`'s own
    /// validation, which cannot be referenced from here without a
    /// dependency cycle).
    pub fn validate(&self) -> Result<(), CcError> {
        if self.addr.is_empty() {
            return Err(CcError::Config("serve.addr must not be empty".into()));
        }
        if self.workers == 0 {
            return Err(CcError::Config("serve.workers must be at least 1".into()));
        }
        if self.max_inflight < self.workers {
            return Err(CcError::Config(format!(
                "serve.max_inflight ({}) must be at least serve.workers ({})",
                self.max_inflight, self.workers
            )));
        }
        if self.keep_alive_ms == 0 {
            return Err(CcError::Config("serve.keep_alive_ms must be nonzero".into()));
        }
        Ok(())
    }
}

/// Everything a study needs, in one serde-able value.
///
/// Construct through [`StudyConfig::builder`]; `build()` validates the
/// combination and returns [`CcError::Config`] on nonsense.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// The synthetic world to generate and crawl.
    pub web: WebConfig,
    /// Master crawl seed (independent of the world seed).
    pub seed: u64,
    /// Steps per walk (the paper uses 10).
    pub steps: usize,
    /// Walk-count limit (`None` = one walk per seeder).
    pub walks: Option<usize>,
    /// Per-connection failure probability (the paper observed 3.3%).
    pub failure_rate: f64,
    /// Concurrency structure of the three parallel crawlers.
    pub mode: DriverMode,
    /// Browser storage policy (the paper's subject is `Partitioned`).
    pub storage: StoragePolicy,
    /// Machine fingerprint shared by all four crawlers.
    pub fingerprint: u64,
    /// Retry policy for transient connection faults.
    pub retry: RetryPolicy,
    /// Per-host circuit-breaker policy.
    pub breaker: BreakerPolicy,
    /// Executor worker threads (1 = serial).
    pub workers: usize,
    /// Checkpoint schedule (`None` = no checkpointing).
    pub checkpoint: Option<CheckpointPolicy>,
    /// How the `serve` subcommand exposes the finished study.
    pub serve: ServePolicy,
}

impl StudyConfig {
    /// Start building a study from the defaults (a default world, the
    /// paper's crawl parameters, fault tolerance disabled, one worker).
    pub fn builder() -> StudyConfigBuilder {
        StudyConfigBuilder::default()
    }

    /// The number of walks this study will run.
    pub fn total_walks(&self) -> usize {
        self.walks
            .unwrap_or(self.web.n_seeders)
            .min(self.web.n_seeders)
    }

    /// Lower into the walker-level crawl configuration.
    pub fn crawl_config(&self) -> CrawlConfig {
        CrawlConfig {
            seed: self.seed,
            steps_per_walk: self.steps,
            max_walks: self.walks,
            connect_failure_rate: self.failure_rate,
            mode: self.mode,
            storage_policy: self.storage,
            fingerprint: self.fingerprint,
            retry: self.retry.clone(),
            breaker: self.breaker,
            rewriter: None,
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> Result<String, CcError> {
        serde_json::to_string(self).map_err(|e| CcError::Serde(e.to_string()))
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, CcError> {
        serde_json::from_str(s).map_err(|e| CcError::Serde(e.to_string()))
    }

    /// Check the configuration for nonsense. Called by
    /// [`StudyConfigBuilder::build`]; callers that assemble a
    /// `StudyConfig` field-by-field (the CLI) call it directly.
    pub fn validate(&self) -> Result<(), CcError> {
        let bad = |msg: String| Err(CcError::Config(msg));
        if self.steps == 0 {
            return bad("steps must be >= 1".into());
        }
        if self.walks == Some(0) {
            return bad("walks must be >= 1 when limited".into());
        }
        if !(0.0..=1.0).contains(&self.failure_rate) {
            return bad(format!(
                "failure_rate must be in [0, 1], got {}",
                self.failure_rate
            ));
        }
        if self.workers == 0 {
            return bad("workers must be >= 1".into());
        }
        if self.web.n_seeders == 0 {
            return bad("the world needs at least one seeder".into());
        }
        if self.web.n_seeders > self.web.n_sites {
            return bad(format!(
                "n_seeders ({}) cannot exceed n_sites ({})",
                self.web.n_seeders, self.web.n_sites
            ));
        }
        self.retry.validate().or_else(bad)?;
        self.breaker.validate().or_else(bad)?;
        if let Some(ck) = &self.checkpoint {
            if ck.path.is_empty() {
                return bad("checkpoint path must not be empty".into());
            }
            if ck.every == 0 {
                return bad("checkpoint interval must be >= 1 walk".into());
            }
        }
        self.serve.validate()?;
        Ok(())
    }
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            web: WebConfig::default(),
            seed: 7,
            steps: 10,
            walks: None,
            failure_rate: 0.033,
            mode: DriverMode::Lockstep,
            storage: StoragePolicy::Partitioned,
            fingerprint: 0x51_AB_17_E5,
            retry: RetryPolicy::disabled(),
            breaker: BreakerPolicy::disabled(),
            workers: 1,
            checkpoint: None,
            serve: ServePolicy::default(),
        }
    }
}

/// Builder for [`StudyConfig`]. Every setter is optional; `build()`
/// validates the final combination.
#[derive(Debug, Clone, Default)]
pub struct StudyConfigBuilder {
    cfg: StudyConfig,
}

impl StudyConfigBuilder {
    /// Replace the world configuration wholesale.
    pub fn web(mut self, web: WebConfig) -> Self {
        self.cfg.web = web;
        self
    }

    /// Number of seeder sites (walk starting points). Grows the world's
    /// site count when needed, preserving the default 1:5 seeder:site
    /// ratio, so `.seeders(10_000)` alone yields a paper-scale world.
    pub fn seeders(mut self, n: usize) -> Self {
        self.cfg.web.n_seeders = n;
        self.cfg.web.n_sites = self.cfg.web.n_sites.max(n.saturating_mul(5));
        self
    }

    /// Master crawl seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Steps per walk.
    pub fn steps(mut self, steps: usize) -> Self {
        self.cfg.steps = steps;
        self
    }

    /// Limit the number of walks (default: one per seeder).
    pub fn walks(mut self, walks: usize) -> Self {
        self.cfg.walks = Some(walks);
        self
    }

    /// Per-connection failure probability.
    pub fn failure_rate(mut self, rate: f64) -> Self {
        self.cfg.failure_rate = rate;
        self
    }

    /// Concurrency structure of the three parallel crawlers.
    pub fn mode(mut self, mode: DriverMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Browser storage policy.
    pub fn storage(mut self, storage: StoragePolicy) -> Self {
        self.cfg.storage = storage;
        self
    }

    /// Machine fingerprint shared by the crawlers.
    pub fn fingerprint(mut self, fp: u64) -> Self {
        self.cfg.fingerprint = fp;
        self
    }

    /// Retry policy for transient connection faults.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.cfg.retry = retry;
        self
    }

    /// Per-host circuit-breaker policy.
    pub fn breaker(mut self, breaker: BreakerPolicy) -> Self {
        self.cfg.breaker = breaker;
        self
    }

    /// Executor worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Checkpoint to `path` every `every` completed walks.
    pub fn checkpoint(mut self, path: impl Into<String>, every: usize) -> Self {
        self.cfg.checkpoint = Some(CheckpointPolicy {
            path: path.into(),
            every,
        });
        self
    }

    /// How the `serve` subcommand exposes the finished study.
    pub fn serve(mut self, serve: ServePolicy) -> Self {
        self.cfg.serve = serve;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<StudyConfig, CcError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_happy_path_matches_issue_shape() {
        let study = StudyConfig::builder()
            .seeders(10_000)
            .steps(10)
            .retry(RetryPolicy::default())
            .build()
            .unwrap();
        assert_eq!(study.web.n_seeders, 10_000);
        assert!(study.web.n_sites >= 10_000, "world grew with the seeders");
        assert_eq!(study.steps, 10);
        assert!(study.retry.enabled());
        assert_eq!(study.total_walks(), 10_000);
    }

    #[test]
    fn defaults_preserve_the_historical_crawl_config() {
        let lowered = StudyConfig::default().crawl_config();
        let historical = CrawlConfig::default();
        assert_eq!(lowered.seed, historical.seed);
        assert_eq!(lowered.steps_per_walk, historical.steps_per_walk);
        assert_eq!(
            lowered.connect_failure_rate,
            historical.connect_failure_rate
        );
        assert_eq!(lowered.retry, historical.retry);
        assert_eq!(lowered.breaker, historical.breaker);
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(StudyConfig::builder().steps(0).build().is_err());
        assert!(StudyConfig::builder().failure_rate(1.5).build().is_err());
        assert!(StudyConfig::builder().workers(0).build().is_err());
        assert!(StudyConfig::builder().walks(0).build().is_err());
        assert!(StudyConfig::builder().checkpoint("x.json", 0).build().is_err());
        assert!(StudyConfig::builder().checkpoint("", 5).build().is_err());
        let mut bad_retry = RetryPolicy::standard();
        bad_retry.jitter = 7.0;
        assert!(StudyConfig::builder().retry(bad_retry).build().is_err());
        let zero_workers = ServePolicy {
            workers: 0,
            ..ServePolicy::default()
        };
        assert!(StudyConfig::builder().serve(zero_workers).build().is_err());
        let starved = ServePolicy {
            workers: 8,
            max_inflight: 2,
            ..ServePolicy::default()
        };
        assert!(StudyConfig::builder().serve(starved).build().is_err());
    }

    #[test]
    fn seeders_never_shrink_an_explicit_world() {
        let study = StudyConfig::builder()
            .web(WebConfig {
                n_sites: 1_000,
                ..WebConfig::default()
            })
            .seeders(10)
            .build()
            .unwrap();
        assert_eq!(study.web.n_sites, 1_000);
        assert_eq!(study.web.n_seeders, 10);
    }

    #[test]
    fn config_round_trips_through_json() {
        let study = StudyConfig::builder()
            .seed(42)
            .walks(500)
            .failure_rate(0.2)
            .retry(RetryPolicy::standard())
            .breaker(BreakerPolicy::standard())
            .workers(4)
            .checkpoint("/tmp/ck.json", 100)
            .build()
            .unwrap();
        let back = StudyConfig::from_json(&study.to_json().unwrap()).unwrap();
        assert_eq!(study, back);
    }

    #[test]
    fn total_walks_clamps_to_seeder_count() {
        let study = StudyConfig::builder().walks(1_000_000).build().unwrap();
        assert_eq!(study.total_walks(), study.web.n_seeders);
    }
}
