//! Crawl checkpoint/resume (`cc-checkpoint/v1`).
//!
//! Every walk is a pure function of `(StudyConfig, walk_id)`, so a crawl
//! interrupted at any point can be resumed from just three things: the
//! configuration, the set of walks already recorded, and the ground-truth
//! ledger accumulated so far. A [`CrawlCheckpoint`] bundles exactly that —
//! the embedded config lets `--resume` refuse a checkpoint produced under
//! different parameters, and the truth ledger makes the resumed run's
//! analysis report (not just its dataset) identical to an uninterrupted
//! run's.
//!
//! Checkpoints are written atomically (temp file + rename) so a crash
//! mid-write never leaves a truncated checkpoint behind.

use std::collections::HashSet;
use std::path::Path;

use cc_util::CcError;
use cc_web::TruthLog;
use serde::{Deserialize, Serialize};

use crate::config::StudyConfig;
use crate::record::CrawlDataset;

/// The checkpoint format identifier. Bump on incompatible change.
pub const CHECKPOINT_SCHEMA: &str = "cc-checkpoint/v1";

/// A resumable snapshot of a crawl in progress.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrawlCheckpoint {
    /// Format identifier, always [`CHECKPOINT_SCHEMA`].
    pub schema: String,
    /// The configuration the crawl ran under.
    pub study: StudyConfig,
    /// Total walks the full crawl comprises.
    pub total_walks: usize,
    /// Walks recorded so far (any subset; ids key the remainder).
    pub partial: CrawlDataset,
    /// Ground-truth ledger at checkpoint time.
    pub truth: TruthLog,
}

impl CrawlCheckpoint {
    /// Bundle a partial crawl into a checkpoint.
    pub fn new(study: &StudyConfig, partial: CrawlDataset, truth: TruthLog) -> Self {
        CrawlCheckpoint {
            schema: CHECKPOINT_SCHEMA.to_string(),
            study: study.clone(),
            total_walks: study.total_walks(),
            partial,
            truth,
        }
    }

    /// Ids of the walks already recorded.
    pub fn completed(&self) -> HashSet<u32> {
        self.partial.walks.iter().map(|w| w.walk_id).collect()
    }

    /// Ids of the walks still to run, in order.
    pub fn remaining(&self) -> Vec<u32> {
        let done = self.completed();
        (0..self.total_walks as u32)
            .filter(|id| !done.contains(id))
            .collect()
    }

    /// Refuse to resume under a different configuration.
    pub fn validate_against(&self, study: &StudyConfig) -> Result<(), CcError> {
        if self.schema != CHECKPOINT_SCHEMA {
            return Err(CcError::Checkpoint(format!(
                "unsupported schema {:?} (expected {CHECKPOINT_SCHEMA:?})",
                self.schema
            )));
        }
        if &self.study != study {
            return Err(CcError::Checkpoint(
                "checkpoint was produced under a different study configuration".into(),
            ));
        }
        if self.partial.walks.len() > self.total_walks {
            return Err(CcError::Checkpoint(format!(
                "checkpoint holds {} walks but claims a total of {}",
                self.partial.walks.len(),
                self.total_walks
            )));
        }
        Ok(())
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> Result<String, CcError> {
        serde_json::to_string(self).map_err(|e| CcError::Serde(e.to_string()))
    }

    /// Deserialize from JSON, checking the schema tag first.
    pub fn from_json(s: &str) -> Result<Self, CcError> {
        let ck: CrawlCheckpoint =
            serde_json::from_str(s).map_err(|e| CcError::Checkpoint(e.to_string()))?;
        if ck.schema != CHECKPOINT_SCHEMA {
            return Err(CcError::Checkpoint(format!(
                "unsupported schema {:?} (expected {CHECKPOINT_SCHEMA:?})",
                ck.schema
            )));
        }
        Ok(ck)
    }

    /// Write atomically: serialize to a `.tmp`-suffixed sibling, then
    /// rename over `path`, so an interrupted write never corrupts the
    /// previous checkpoint (and a follower polling the file never reads
    /// a torn one).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CcError> {
        let path = path.as_ref();
        let json = self.to_json()?;
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, &json).map_err(|e| CcError::io(tmp.display().to_string(), e))?;
        std::fs::rename(&tmp, path).map_err(|e| CcError::io(path.display().to_string(), e))?;
        cc_telemetry::counter("crawl.checkpoint.writes", 1);
        Ok(())
    }

    /// Load a checkpoint from disk.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CcError> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path)
            .map_err(|e| CcError::io(path.display().to_string(), e))?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{WalkRecord, WalkTermination};
    use cc_net::RecoveryStats;

    fn walk(id: u32) -> WalkRecord {
        WalkRecord {
            walk_id: id,
            seeder: format!("s{id}.com").into(),
            steps: Vec::new(),
            termination: WalkTermination::Completed,
            recovery: RecoveryStats::default(),
        }
    }

    fn study() -> StudyConfig {
        StudyConfig::builder().walks(5).build().unwrap()
    }

    #[test]
    fn remaining_is_the_complement_of_completed() {
        let mut partial = CrawlDataset::default();
        partial.walks.push(walk(0));
        partial.walks.push(walk(3));
        let ck = CrawlCheckpoint::new(&study(), partial, TruthLog::new());
        assert_eq!(ck.total_walks, 5);
        assert_eq!(ck.remaining(), vec![1, 2, 4]);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let mut partial = CrawlDataset::default();
        partial.walks.push(walk(1));
        let ck = CrawlCheckpoint::new(&study(), partial, TruthLog::new());
        let back = CrawlCheckpoint::from_json(&ck.to_json().unwrap()).unwrap();
        assert_eq!(back.schema, CHECKPOINT_SCHEMA);
        assert_eq!(back.study, ck.study);
        assert_eq!(back.partial, ck.partial);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let ck = CrawlCheckpoint::new(&study(), CrawlDataset::default(), TruthLog::new());
        let json = ck.to_json().unwrap().replace("cc-checkpoint/v1", "cc-checkpoint/v0");
        let err = CrawlCheckpoint::from_json(&json).unwrap_err();
        assert!(matches!(err, CcError::Checkpoint(_)), "{err}");
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let ck = CrawlCheckpoint::new(&study(), CrawlDataset::default(), TruthLog::new());
        let other = StudyConfig::builder().walks(5).seed(999).build().unwrap();
        assert!(ck.validate_against(&study()).is_ok());
        let err = ck.validate_against(&other).unwrap_err();
        assert!(matches!(err, CcError::Checkpoint(_)), "{err}");
    }

    #[test]
    fn save_and_load_round_trip_atomically() {
        let dir = std::env::temp_dir().join("cc-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.json");
        let path = path.to_str().unwrap();
        let mut partial = CrawlDataset::default();
        partial.walks.push(walk(2));
        let ck = CrawlCheckpoint::new(&study(), partial, TruthLog::new());
        ck.save(path).unwrap();
        assert!(!std::path::Path::new(&format!("{path}.tmp")).exists());
        let back = CrawlCheckpoint::load(path).unwrap();
        assert_eq!(back.partial, ck.partial);
        std::fs::remove_file(path).ok();
    }
}
