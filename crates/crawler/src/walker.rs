//! Ten-step random walks with four synchronized crawlers.
//!
//! The execution model mirrors §3.1–§3.3:
//!
//! 1. Safari-1, Safari-2, and Chrome-3 load the same URL **in parallel**
//!    (scoped threads joined at each controller rendezvous — the moral
//!    equivalent of the paper's local-HTTP-server controller).
//! 2. Each sends its element list to the controller, which applies the
//!    three matching heuristics and picks one shared element, preferring
//!    cross-site navigation.
//! 3. All three click; each follows its own redirect chain (dynamic ads
//!    mean the "same" iframe can lead to different places).
//! 4. Safari-1R — the *same user* as Safari-1, realized by cloning
//!    Safari-1's storage — repeats the step immediately after Safari-1
//!    finishes it.
//! 5. The controller compares final FQDNs; disagreement terminates the
//!    walk (but the data is kept, because those steps often contain
//!    separate instances of UID smuggling).
//!
//! Browser state persists for the duration of a walk and is discarded when
//! a new walk begins (§3.1).

use cc_browser::{Browser, Profile, Storage, StoragePolicy};
use cc_http::RequestKind;
use cc_net::{BreakerPolicy, FaultModel, RecoveryStats, RetryPolicy, SimClock, SimTime};
use cc_url::Url;
use cc_util::{DetRng, IStr};
use cc_web::{ClickTarget, ElementModel, SimWeb};

use crate::matching::{find_matching, select_shared};
use crate::names::CrawlerName;
use crate::record::{
    ClickedElement, CrawlDataset, CrawlObservation, FailureStats, StepRecord, WalkRecord,
    WalkTermination,
};

/// A navigation-rewriting hook: what a privacy defense installed in the
/// browser does to a click target before the navigation fires (Brave's
/// debouncing and query stripping are exactly this shape — §7.1).
#[derive(Clone)]
pub struct NavigationRewriter(pub std::sync::Arc<dyn Fn(&Url) -> Url + Send + Sync>);

impl NavigationRewriter {
    /// Wrap a rewriting function.
    pub fn new(f: impl Fn(&Url) -> Url + Send + Sync + 'static) -> Self {
        NavigationRewriter(std::sync::Arc::new(f))
    }

    /// Apply the rewrite.
    pub fn rewrite(&self, url: &Url) -> Url {
        (self.0)(url)
    }
}

impl std::fmt::Debug for NavigationRewriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("NavigationRewriter(..)")
    }
}

/// How the three parallel crawlers are scheduled.
///
/// All three modes produce **bit-identical datasets** (every browser owns
/// its own clock and randomness stream), which the determinism tests
/// assert; they differ only in concurrency structure.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize,
)]
pub enum DriverMode {
    /// Single-threaded deterministic execution (fastest for tests).
    #[default]
    Lockstep,
    /// Scoped threads spawned per controller phase.
    ScopedThreads,
    /// The paper's architecture: persistent crawler workers living for the
    /// whole walk, exchanging messages with the central controller over
    /// crossbeam channels (the stand-in for the local HTTP server of
    /// §3.3).
    PersistentWorkers,
}

/// Crawl parameters.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Master seed.
    pub seed: u64,
    /// Steps per walk (the paper uses 10).
    pub steps_per_walk: usize,
    /// Limit on the number of walks (None = one per seeder).
    pub max_walks: Option<usize>,
    /// Per-connection failure probability (the paper observed 3.3%).
    pub connect_failure_rate: f64,
    /// Concurrency structure for the three parallel crawlers.
    pub mode: DriverMode,
    /// Browser storage policy (the paper's subject is `Partitioned`).
    pub storage_policy: StoragePolicy,
    /// Machine fingerprint shared by all four crawlers (one machine).
    pub fingerprint: u64,
    /// Retry policy for transient connection faults. The default is
    /// [`RetryPolicy::disabled`] so historical datasets stay byte-stable;
    /// enable via `StudyConfig::builder().retry(..)`.
    pub retry: RetryPolicy,
    /// Per-host circuit-breaker policy (disabled by default, same reason).
    pub breaker: BreakerPolicy,
    /// Optional in-browser defense applied to every click target before
    /// navigation (None = the paper's unprotected measurement).
    pub rewriter: Option<NavigationRewriter>,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            seed: 7,
            steps_per_walk: 10,
            max_walks: None,
            connect_failure_rate: 0.033,
            mode: DriverMode::Lockstep,
            storage_policy: StoragePolicy::Partitioned,
            fingerprint: 0x51_AB_17_E5,
            retry: RetryPolicy::disabled(),
            breaker: BreakerPolicy::disabled(),
            rewriter: None,
        }
    }
}

/// The simulated study start: late October 2021 in epoch milliseconds, so
/// timestamp parameters minted by trackers have realistic shapes.
pub const STUDY_EPOCH_MS: u64 = 1_635_000_000_000;

/// The crawl driver.
pub struct Walker<'w> {
    web: &'w SimWeb,
    cfg: CrawlConfig,
    /// Reusable per-worker browser set. Between walks the browsers are
    /// rebound via [`Browser::prepare_walk`] — observationally identical
    /// to fresh construction, but the storage maps and request-log
    /// buffers keep their allocations, which removes most of the fixed
    /// per-walk overhead the executor pays on top of the walk itself.
    pool: Option<Box<WalkPool<'w>>>,
}

/// The four browsers of one walk, reused across walks by inline driver
/// modes (`Lockstep`, `ScopedThreads`). `PersistentWorkers` moves its
/// browsers into worker threads, so it always constructs fresh ones.
struct WalkPool<'w> {
    browsers: [Browser<'w>; 3],
    trailing: Browser<'w>,
}

/// A controller→worker command (all-owned data: channel-safe).
enum Cmd {
    /// Load a page (seeder or post-click continuation).
    Navigate(Url),
    /// Snapshot the current page, click the chosen element, follow it.
    Click {
        page_url: Url,
        kind: cc_web::ElementKind,
        xpath: String,
        target: Url,
    },
    /// Snapshot the page without clicking (sync-failure bookkeeping).
    PageObs(Url),
    /// Ship a clone of the browser's storage to the controller (Safari-1R
    /// cloning).
    ExportStorage,
    /// Ship the browser's retry/breaker accounting to the controller
    /// (end-of-walk recovery rollup).
    ExportRecovery,
}

/// A worker→controller event.
enum Event {
    Nav(Box<Result<cc_browser::NavigationOutcome, cc_browser::NavError>>),
    Leg(Box<CrawlLegAndPage>),
    Obs(Box<(cc_browser::StorageSnapshot, Vec<(IStr, Url)>)>),
    Storage(Box<Storage>),
    Recovery(RecoveryStats),
}

/// Execute one command against one browser — the single implementation all
/// three scheduling modes share.
fn exec_cmd(b: &mut Browser<'_>, cmd: Cmd) -> Event {
    match cmd {
        Cmd::Navigate(url) => Event::Nav(Box::new(b.navigate(url))),
        Cmd::Click {
            page_url,
            kind,
            xpath,
            target,
        } => Event::Leg(Box::new(click_leg(b, page_url, kind, xpath, target))),
        Cmd::PageObs(page_url) => {
            let snapshot = b.snapshot(&page_url.registered_domain_interned());
            let beacons = drain_beacons(b);
            Event::Obs(Box::new((snapshot, beacons)))
        }
        Cmd::ExportStorage => Event::Storage(Box::new(b.storage.clone())),
        Cmd::ExportRecovery => Event::Recovery(b.recovery),
    }
}

/// Snapshot, click, and follow: one crawler's half of a walk step.
fn click_leg(
    b: &mut Browser<'_>,
    page_url: Url,
    kind: cc_web::ElementKind,
    xpath: String,
    target: Url,
) -> CrawlLegAndPage {
    let page_snapshot = b.snapshot(&page_url.registered_domain_interned());
    let clicked = Some(ClickedElement { kind, xpath });
    match b.navigate(target) {
        Ok(mut out) => {
            let dest_snapshot = Some(b.snapshot(&out.final_url.registered_domain_interned()));
            let beacons = drain_beacons(b);
            // The hop list is only needed in the record; the outcome that
            // continues the walk only needs the final URL and page, so the
            // hops move rather than copy.
            let nav_hops = std::mem::take(&mut out.hops);
            CrawlLeg {
                page_url,
                page_snapshot,
                clicked,
                nav_hops,
                final_url: Some(out.final_url.clone()),
                dest_snapshot,
                beacons,
                error: None,
            }
            .with_outcome(out)
        }
        Err(e) => CrawlLegAndPage {
            leg: CrawlLeg {
                page_url,
                page_snapshot,
                clicked,
                nav_hops: Vec::new(),
                final_url: None,
                dest_snapshot: None,
                beacons: drain_beacons(b),
                error: Some(e.to_string()),
            },
            outcome: None,
        },
    }
}

/// One persistent worker: a channel pair to a thread owning a browser.
struct Worker {
    tx: crossbeam::channel::Sender<Cmd>,
    rx: crossbeam::channel::Receiver<Event>,
}

/// The three parallel crawlers, behind one of the scheduling modes.
enum Squad<'w, 'env> {
    /// Controller-thread execution, optionally on per-phase scoped threads.
    Inline {
        browsers: &'env mut [Browser<'w>; 3],
        scoped: bool,
    },
    /// Persistent worker threads + channels (the paper's architecture).
    Channels { workers: Vec<Worker> },
}

impl<'w, 'env> Squad<'w, 'env> {
    /// Issue one command to each crawler and collect the three events.
    fn exec3(&mut self, cmds: [Cmd; 3]) -> [Event; 3] {
        match self {
            Squad::Inline { browsers, scoped } => {
                let [b0, b1, b2] = &mut **browsers;
                let [c0, c1, c2] = cmds;
                if *scoped {
                    std::thread::scope(|s| {
                        let h1 = s.spawn(move || exec_cmd(b1, c1));
                        let h2 = s.spawn(move || exec_cmd(b2, c2));
                        let e0 = exec_cmd(b0, c0);
                        [
                            e0,
                            h1.join().expect("crawler thread"),
                            h2.join().expect("crawler thread"),
                        ]
                    })
                } else {
                    [exec_cmd(b0, c0), exec_cmd(b1, c1), exec_cmd(b2, c2)]
                }
            }
            Squad::Channels { workers } => {
                for (w, cmd) in workers.iter().zip(cmds) {
                    w.tx.send(cmd).expect("worker alive");
                }
                let collect = |w: &Worker| w.rx.recv().expect("worker alive");
                [
                    collect(&workers[0]),
                    collect(&workers[1]),
                    collect(&workers[2]),
                ]
            }
        }
    }

    /// Issue one command to a single crawler.
    fn exec1(&mut self, idx: usize, cmd: Cmd) -> Event {
        match self {
            Squad::Inline { browsers, .. } => exec_cmd(&mut browsers[idx], cmd),
            Squad::Channels { workers } => {
                workers[idx].tx.send(cmd).expect("worker alive");
                workers[idx].rx.recv().expect("worker alive")
            }
        }
    }
}

fn expect_nav(e: Event) -> Result<cc_browser::NavigationOutcome, cc_browser::NavError> {
    match e {
        Event::Nav(r) => *r,
        _ => unreachable!("protocol violation: expected Nav"),
    }
}

fn expect_leg(e: Event) -> CrawlLegAndPage {
    match e {
        Event::Leg(l) => *l,
        _ => unreachable!("protocol violation: expected Leg"),
    }
}

fn expect_obs(e: Event) -> (cc_browser::StorageSnapshot, Vec<(IStr, Url)>) {
    match e {
        Event::Obs(o) => *o,
        _ => unreachable!("protocol violation: expected Obs"),
    }
}

fn expect_storage(e: Event) -> Storage {
    match e {
        Event::Storage(s) => *s,
        _ => unreachable!("protocol violation: expected Storage"),
    }
}

fn expect_recovery(e: Event) -> RecoveryStats {
    match e {
        Event::Recovery(r) => r,
        _ => unreachable!("protocol violation: expected Recovery"),
    }
}

/// Outcome of one crawler finishing one navigation within a step.
struct CrawlLeg {
    page_url: Url,
    page_snapshot: cc_browser::StorageSnapshot,
    clicked: Option<ClickedElement>,
    nav_hops: Vec<Url>,
    final_url: Option<Url>,
    dest_snapshot: Option<cc_browser::StorageSnapshot>,
    beacons: Vec<(IStr, Url)>,
    error: Option<String>,
}

impl<'w> Walker<'w> {
    /// Build a walker over a world.
    pub fn new(web: &'w SimWeb, cfg: CrawlConfig) -> Self {
        Walker {
            web,
            cfg,
            pool: None,
        }
    }

    /// The world this walker crawls.
    pub(crate) fn web(&self) -> &'w SimWeb {
        self.web
    }

    /// Run one walk by global id (the sharding entry point).
    pub(crate) fn walk_public(
        &mut self,
        walk_id: u32,
        seeder: Url,
        failures: &mut FailureStats,
    ) -> WalkRecord {
        self.walk(walk_id, seeder, failures)
    }

    /// Run the full crawl: one walk per seeder (§3.1's depth-first
    /// strategy: maximize distinct pages, one click per page).
    pub fn crawl(&mut self) -> CrawlDataset {
        let mut dataset = CrawlDataset::default();
        let seeders = self.web.seeder_urls();
        let limit = self.cfg.max_walks.unwrap_or(seeders.len());
        for (walk_id, seeder) in seeders.iter().take(limit).enumerate() {
            let walk = self.walk(walk_id as u32, seeder.clone(), &mut dataset.failures);
            dataset.ledger.note(&walk);
            dataset.walks.push(walk);
        }
        dataset
    }

    /// The per-walk deterministic streams: profile (with its embedded RNG
    /// stream), fault process, and retry-jitter stream. Keyed only by the
    /// global walk id and crawler name, never by worker identity.
    fn walk_streams(&self, walk_id: u32, crawler: CrawlerName) -> (Profile, FaultModel, DetRng) {
        let root = DetRng::new(self.cfg.seed);
        let stream = root.fork_indexed("walk-crawler", u64::from(walk_id) * 16 + crawler as u64);
        let profile = match crawler {
            CrawlerName::Chrome3 => Profile::chrome(crawler.label(), self.cfg.fingerprint, stream),
            _ => Profile::safari(crawler.label(), self.cfg.fingerprint, stream),
        };
        // The fault salt is shared by all four crawlers of a walk: a down
        // site is down for everyone, so connect failures never masquerade
        // as divergence (§3.3 counts failures per site visited). The retry
        // jitter stream forks off the same walk-keyed stream (forks are
        // non-consuming, so the salt draw is untouched): all four crawlers
        // wait identical backoffs and their retry outcomes stay in step.
        let fault_stream = root.fork_indexed("fault", u64::from(walk_id));
        let retry_rng = fault_stream.fork("retry");
        let fault = FaultModel::new(fault_stream, self.cfg.connect_failure_rate);
        (profile, fault, retry_rng)
    }

    fn make_browser(&self, walk_id: u32, crawler: CrawlerName) -> Browser<'w> {
        let (profile, fault, retry_rng) = self.walk_streams(walk_id, crawler);
        Browser::new(
            self.web,
            profile,
            Storage::new(self.cfg.storage_policy),
            SimClock::starting_at(SimTime(STUDY_EPOCH_MS)),
            fault,
        )
        .with_fault_tolerance(self.cfg.retry.clone(), self.cfg.breaker, retry_rng)
    }

    /// Rebind one pooled browser to a new walk (same streams as
    /// [`Self::make_browser`], fresh per-walk state, kept allocations).
    fn rebind_browser(&self, b: &mut Browser<'w>, walk_id: u32, crawler: CrawlerName) {
        let (profile, fault, retry_rng) = self.walk_streams(walk_id, crawler);
        b.prepare_walk(
            profile,
            SimClock::starting_at(SimTime(STUDY_EPOCH_MS)),
            fault,
            self.cfg.retry.clone(),
            self.cfg.breaker,
            retry_rng,
        );
    }

    /// Take the reusable browser pool, rebound to `walk_id` (building it
    /// on the first walk). The caller puts it back after the walk.
    fn take_pool(&mut self, walk_id: u32) -> Box<WalkPool<'w>> {
        match self.pool.take() {
            Some(mut pool) => {
                for (b, name) in pool.browsers.iter_mut().zip(CrawlerName::PARALLEL) {
                    self.rebind_browser(b, walk_id, name);
                }
                self.rebind_browser(&mut pool.trailing, walk_id, CrawlerName::Safari1R);
                pool
            }
            None => Box::new(WalkPool {
                browsers: [
                    self.make_browser(walk_id, CrawlerName::Safari1),
                    self.make_browser(walk_id, CrawlerName::Safari2),
                    self.make_browser(walk_id, CrawlerName::Chrome3),
                ],
                trailing: self.make_browser(walk_id, CrawlerName::Safari1R),
            }),
        }
    }

    /// Execute one ten-step walk from a seeder.
    fn walk(&mut self, walk_id: u32, seeder: Url, failures: &mut FailureStats) -> WalkRecord {
        let _walk_span = cc_telemetry::span("crawl.walk");
        let walk_started = std::time::Instant::now();
        let record = match self.cfg.mode {
            DriverMode::PersistentWorkers => {
                // The paper's architecture: crawler workers live for the
                // whole walk; the controller mediates via channels. The
                // browsers move into their threads, so this mode always
                // constructs them fresh.
                let browsers = [
                    self.make_browser(walk_id, CrawlerName::Safari1),
                    self.make_browser(walk_id, CrawlerName::Safari2),
                    self.make_browser(walk_id, CrawlerName::Chrome3),
                ];
                let mut trailing = self.make_browser(walk_id, CrawlerName::Safari1R);
                crossbeam::thread::scope(|scope| {
                    let workers = browsers
                        .into_iter()
                        .map(|mut b| {
                            let (cmd_tx, cmd_rx) = crossbeam::channel::unbounded::<Cmd>();
                            let (evt_tx, evt_rx) = crossbeam::channel::unbounded::<Event>();
                            scope.spawn(move |_| {
                                for cmd in cmd_rx {
                                    if evt_tx.send(exec_cmd(&mut b, cmd)).is_err() {
                                        break;
                                    }
                                }
                            });
                            Worker {
                                tx: cmd_tx,
                                rx: evt_rx,
                            }
                        })
                        .collect();
                    let mut squad = Squad::Channels { workers };
                    self.walk_with(&mut squad, &mut trailing, walk_id, seeder, failures)
                })
                .expect("crawler worker panicked")
            }
            mode => {
                let mut pool = self.take_pool(walk_id);
                let record = {
                    let mut squad = Squad::Inline {
                        browsers: &mut pool.browsers,
                        scoped: mode == DriverMode::ScopedThreads,
                    };
                    self.walk_with(&mut squad, &mut pool.trailing, walk_id, seeder, failures)
                };
                self.pool = Some(pool);
                record
            }
        };
        // Observation-only accounting: totals depend on the seed, never on
        // which worker ran the walk, so these stay in the deterministic
        // report section (the duration histogram is timing data).
        let kind = match &record.termination {
            WalkTermination::Completed => cc_telemetry::EventId::CRAWL_WALK_COMPLETED,
            WalkTermination::SyncFailure { .. } => cc_telemetry::EventId::CRAWL_WALK_SYNC_FAILURE,
            WalkTermination::Divergence { .. } => cc_telemetry::EventId::CRAWL_WALK_DIVERGENCE,
            WalkTermination::ConnectFailure { .. } => {
                cc_telemetry::EventId::CRAWL_WALK_CONNECT_FAILURE
            }
        };
        cc_telemetry::event_id(kind);
        cc_telemetry::counter_id(
            cc_telemetry::CounterId::CRAWL_STEPS_RECORDED,
            record.steps.len() as u64,
        );
        cc_telemetry::observe_ms_id(
            cc_telemetry::HistogramId::CRAWL_WALK_DURATION,
            walk_started.elapsed().as_secs_f64() * 1e3,
        );
        record
    }

    /// The walk loop plus the end-of-walk recovery rollup: whatever way
    /// the walk terminated, collect retry/breaker accounting from all four
    /// crawlers into the record.
    fn walk_with(
        &self,
        squad: &mut Squad<'w, '_>,
        trailing: &mut Browser<'w>,
        walk_id: u32,
        seeder: Url,
        failures: &mut FailureStats,
    ) -> WalkRecord {
        let mut record = self.walk_inner(squad, trailing, walk_id, seeder, failures);
        let mut recovery = trailing.recovery;
        for i in 0..3 {
            recovery.absorb(&expect_recovery(squad.exec1(i, Cmd::ExportRecovery)));
        }
        record.recovery = recovery;
        if recovery.retries > 0 {
            cc_telemetry::counter_id(cc_telemetry::CounterId::CRAWL_WALKS_WITH_RETRIES, 1);
        }
        record
    }

    /// The walk loop proper, scheduling-agnostic.
    fn walk_inner(
        &self,
        squad: &mut Squad<'w, '_>,
        trailing: &mut Browser<'w>,
        walk_id: u32,
        seeder: Url,
        failures: &mut FailureStats,
    ) -> WalkRecord {
        let seeder_domain = seeder.registered_domain_interned();
        let mut controller_rng =
            DetRng::new(self.cfg.seed).fork_indexed("controller", walk_id.into());

        let mut record = WalkRecord {
            walk_id,
            seeder: seeder_domain,
            steps: Vec::new(),
            termination: WalkTermination::Completed,
            recovery: RecoveryStats::default(),
        };

        // Initial parallel load of the seeder page.
        failures.steps_attempted += 1;
        let initial = squad
            .exec3([
                Cmd::Navigate(seeder.clone()),
                Cmd::Navigate(seeder.clone()),
                Cmd::Navigate(seeder),
            ])
            .map(expect_nav);
        let mut pages = match split_ok(initial) {
            Ok(outcomes) => outcomes,
            Err(e) => {
                failures.connect_failures += 1;
                record.termination = WalkTermination::ConnectFailure { step: 0, error: e };
                return record;
            }
        };

        for step in 0..self.cfg.steps_per_walk {
            let _step_span = cc_telemetry::span("crawl.step");
            if step > 0 {
                failures.steps_attempted += 1;
            }
            let current_domain = pages[0].final_url.registered_domain_interned();

            // Controller rendezvous: match the three element lists.
            let lists = [
                pages[0].page.elements.as_slice(),
                pages[1].page.elements.as_slice(),
                pages[2].page.elements.as_slice(),
            ];
            let pick = select_shared(lists, &current_domain, &mut controller_rng);
            let Some(shared) = pick else {
                failures.sync_failures += 1;
                record.termination = WalkTermination::SyncFailure { step };
                record.steps.push(page_only_step(squad, step, &pages));
                return record;
            };

            // Resolve per-crawler click targets (through the installed
            // defense, when any). Elements are borrowed from the live
            // pages — only the navigation URL is owned, because the
            // rewriter may produce a fresh one.
            let mut targets: Vec<Option<(&ElementModel, Url)>> = Vec::with_capacity(3);
            for (i, page) in pages.iter().enumerate() {
                let el = &page.page.elements[shared.indices[i]];
                match &el.target {
                    ClickTarget::Navigate(u) => {
                        let u = match &self.cfg.rewriter {
                            Some(r) => r.rewrite(u),
                            None => u.clone(),
                        };
                        targets.push(Some((el, u)))
                    }
                    ClickTarget::Inert => targets.push(None),
                }
            }
            if targets.iter().any(Option::is_none) {
                // An inert "shared" element is unusable; treat like a
                // synchronization failure.
                failures.sync_failures += 1;
                record.termination = WalkTermination::SyncFailure { step };
                record.steps.push(page_only_step(squad, step, &pages));
                return record;
            }
            let targets: Vec<(&ElementModel, Url)> =
                targets.into_iter().map(Option::unwrap).collect();

            // All three click in parallel.
            let mut cmds = Vec::with_capacity(3);
            for (i, (el, url)) in targets.iter().enumerate() {
                cmds.push(Cmd::Click {
                    page_url: pages[i].final_url.clone(),
                    kind: el.kind,
                    xpath: el.xpath.clone(),
                    target: url.clone(),
                });
            }
            let cmds: [Cmd; 3] = cmds.try_into().unwrap_or_else(|_| unreachable!());
            let legs = squad.exec3(cmds).map(expect_leg);

            // Safari-1R replay: become the same user as Safari-1 (clone its
            // post-step state) and repeat the step.
            trailing.storage = expect_storage(squad.exec1(0, Cmd::ExportStorage));
            let trailing_leg = self.replay_step(trailing, &pages[0].final_url, targets[0].0);

            // Assemble the step record.
            let mut step_record = StepRecord {
                index: step,
                observations: Vec::new(),
            };
            let mut new_pages = Vec::new();
            let mut connect_error: Option<String> = None;
            for (i, lp) in legs.into_iter().enumerate() {
                let crawler = CrawlerName::PARALLEL[i];
                if let Some(e) = &lp.leg.error {
                    connect_error = Some(e.clone());
                }
                step_record.observations.push(observation(crawler, lp.leg));
                if let Some(out) = lp.outcome {
                    new_pages.push(out);
                }
            }
            step_record
                .observations
                .push(observation(CrawlerName::Safari1R, trailing_leg));
            record.steps.push(step_record);

            if let Some(e) = connect_error {
                failures.connect_failures += 1;
                record.termination = WalkTermination::ConnectFailure { step, error: e };
                return record;
            }

            // FQDN agreement check (§3.3). Data is retained either way.
            let fqdns: Vec<&str> = new_pages
                .iter()
                .map(|p| p.final_url.host.as_str())
                .collect();
            if fqdns.len() == 3 && (fqdns[0] != fqdns[1] || fqdns[1] != fqdns[2]) {
                failures.divergence_failures += 1;
                record.termination = WalkTermination::Divergence { step };
                return record;
            }

            failures.steps_completed += 1;
            pages = match new_pages.try_into() {
                Ok(p) => p,
                Err(_) => {
                    // A leg failed without a network error (can't happen,
                    // but never panic inside a crawl).
                    record.termination = WalkTermination::ConnectFailure {
                        step,
                        error: "missing navigation outcome".into(),
                    };
                    return record;
                }
            };
        }

        record
    }

    /// Safari-1R's step replay: revisit the page Safari-1 clicked on, find
    /// the matching element on the *fresh* load (dynamic content may have
    /// rotated), and click it.
    fn replay_step(
        &self,
        trailing: &mut Browser<'_>,
        page_url: &Url,
        reference: &ElementModel,
    ) -> CrawlLeg {
        match trailing.navigate(page_url.clone()) {
            Ok(out) => {
                let page_snapshot = trailing.snapshot(&out.final_url.registered_domain_interned());
                let matched = find_matching(reference, &out.page.elements);
                // Only the clicked element's kind and xpath survive into
                // the record; cloning the whole model (href, geometry)
                // would be waste.
                let click = matched.and_then(|idx| {
                    let el = &out.page.elements[idx];
                    match &el.target {
                        ClickTarget::Navigate(u) => {
                            let u = match &self.cfg.rewriter {
                                Some(r) => r.rewrite(u),
                                None => u.clone(),
                            };
                            Some((el.kind, el.xpath.clone(), u))
                        }
                        ClickTarget::Inert => None,
                    }
                });
                match click {
                    Some((kind, xpath, url)) => match trailing.navigate(url) {
                        Ok(out2) => CrawlLeg {
                            page_url: page_url.clone(),
                            page_snapshot,
                            clicked: Some(ClickedElement { kind, xpath }),
                            nav_hops: out2.hops,
                            final_url: Some(out2.final_url.clone()),
                            dest_snapshot: Some(
                                trailing.snapshot(&out2.final_url.registered_domain_interned()),
                            ),
                            beacons: drain_beacons(trailing),
                            error: None,
                        },
                        Err(e) => CrawlLeg {
                            page_url: page_url.clone(),
                            page_snapshot,
                            clicked: None,
                            nav_hops: Vec::new(),
                            final_url: None,
                            dest_snapshot: None,
                            beacons: drain_beacons(trailing),
                            error: Some(e.to_string()),
                        },
                    },
                    None => CrawlLeg {
                        page_url: page_url.clone(),
                        page_snapshot,
                        clicked: None,
                        nav_hops: Vec::new(),
                        final_url: None,
                        dest_snapshot: None,
                        beacons: drain_beacons(trailing),
                        error: None,
                    },
                }
            }
            Err(e) => CrawlLeg {
                page_url: page_url.clone(),
                page_snapshot: cc_browser::StorageSnapshot::default(),
                clicked: None,
                nav_hops: Vec::new(),
                final_url: None,
                dest_snapshot: None,
                beacons: Vec::new(),
                error: Some(e.to_string()),
            },
        }
    }
}

/// Build a page-only step record through the squad.
fn page_only_step(
    squad: &mut Squad<'_, '_>,
    step: usize,
    pages: &[cc_browser::NavigationOutcome; 3],
) -> StepRecord {
    let cmds = [
        Cmd::PageObs(pages[0].final_url.clone()),
        Cmd::PageObs(pages[1].final_url.clone()),
        Cmd::PageObs(pages[2].final_url.clone()),
    ];
    let observed = squad.exec3(cmds).map(expect_obs);
    let mut rec = StepRecord {
        index: step,
        observations: Vec::new(),
    };
    for (i, (snapshot, beacons)) in observed.into_iter().enumerate() {
        rec.observations.push(CrawlObservation {
            crawler: CrawlerName::PARALLEL[i],
            page_url: pages[i].final_url.clone(),
            page_snapshot: snapshot,
            clicked: None,
            nav_hops: Vec::new(),
            final_url: None,
            dest_snapshot: None,
            beacons,
        });
    }
    rec
}

/// A leg plus the navigation outcome needed to continue the walk.
struct CrawlLegAndPage {
    leg: CrawlLeg,
    outcome: Option<cc_browser::NavigationOutcome>,
}

impl CrawlLeg {
    fn with_outcome(self, out: cc_browser::NavigationOutcome) -> CrawlLegAndPage {
        CrawlLegAndPage {
            leg: self,
            outcome: Some(out),
        }
    }
}

fn observation(crawler: CrawlerName, leg: CrawlLeg) -> CrawlObservation {
    CrawlObservation {
        crawler,
        page_url: leg.page_url,
        page_snapshot: leg.page_snapshot,
        clicked: leg.clicked,
        nav_hops: leg.nav_hops,
        final_url: leg.final_url,
        dest_snapshot: leg.dest_snapshot,
        beacons: leg.beacons,
    }
}

/// Pull accumulated beacon (subresource) requests out of the browser log.
///
/// The log is taken whole and repartitioned by move — the former
/// filter-then-retain pair cloned every beacon's URL and top site only to
/// drop the originals one statement later.
fn drain_beacons(b: &mut Browser<'_>) -> Vec<(IStr, Url)> {
    let log = std::mem::take(&mut b.request_log);
    let mut beacons = Vec::new();
    for r in log {
        if r.kind == RequestKind::Subresource {
            beacons.push((r.top_site, r.url));
        } else {
            b.request_log.push(r);
        }
    }
    beacons
}

/// Split three navigation results into outcomes or the first error.
fn split_ok(
    results: [Result<cc_browser::NavigationOutcome, cc_browser::NavError>; 3],
) -> Result<[cc_browser::NavigationOutcome; 3], String> {
    let mut out = Vec::with_capacity(3);
    for r in results {
        match r {
            Ok(o) => out.push(o),
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(out.try_into().map_err(|_| "arity".to_string()).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_web::{generate, WebConfig};

    fn quick_cfg() -> CrawlConfig {
        CrawlConfig {
            seed: 11,
            steps_per_walk: 4,
            max_walks: Some(8),
            connect_failure_rate: 0.0,
            mode: DriverMode::Lockstep,
            ..CrawlConfig::default()
        }
    }

    #[test]
    fn crawl_produces_walks_and_steps() {
        let web = generate(&WebConfig::small());
        let ds = Walker::new(&web, quick_cfg()).crawl();
        assert_eq!(ds.walks.len(), 8);
        assert!(ds.total_steps() > 0, "no steps recorded");
        // Every completed step has all four crawler observations.
        for w in &ds.walks {
            for s in &w.steps {
                if s.observations.iter().any(|o| o.clicked.is_some()) {
                    assert_eq!(
                        s.observations.len(),
                        4,
                        "walk {} step {}",
                        w.walk_id,
                        s.index
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_crawl() {
        let web = generate(&WebConfig::small());
        let a = Walker::new(&web, quick_cfg()).crawl();
        let web2 = generate(&WebConfig::small());
        let b = Walker::new(&web2, quick_cfg()).crawl();
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.walks.len(), b.walks.len());
        for (wa, wb) in a.walks.iter().zip(&b.walks) {
            assert_eq!(wa.termination, wb.termination);
            assert_eq!(wa.steps.len(), wb.steps.len());
        }
    }

    #[test]
    fn all_driver_modes_produce_identical_datasets() {
        // Every browser owns its clock and randomness stream, so the three
        // scheduling modes must agree byte-for-byte.
        let web = generate(&WebConfig::small());
        let lock = Walker::new(&web, quick_cfg()).crawl();
        for mode in [DriverMode::ScopedThreads, DriverMode::PersistentWorkers] {
            let other = Walker::new(
                &web,
                CrawlConfig {
                    mode,
                    ..quick_cfg()
                },
            )
            .crawl();
            assert_eq!(lock, other, "driver mode {mode:?} diverged from lockstep");
        }
    }

    #[test]
    fn connect_failures_terminate_walks() {
        let web = generate(&WebConfig::small());
        let cfg = CrawlConfig {
            connect_failure_rate: 1.0,
            ..quick_cfg()
        };
        let ds = Walker::new(&web, cfg).crawl();
        assert_eq!(ds.failures.connect_failures, 8);
        for w in &ds.walks {
            assert!(matches!(
                w.termination,
                WalkTermination::ConnectFailure { step: 0, .. }
            ));
            assert!(w.steps.is_empty());
        }
    }

    #[test]
    fn trailing_crawler_sees_same_persistent_uids() {
        let web = generate(&WebConfig::small());
        let ds = Walker::new(&web, quick_cfg()).crawl();
        let mut compared = 0;
        for w in &ds.walks {
            for s in &w.steps {
                let s1 = s
                    .observations
                    .iter()
                    .find(|o| o.crawler == CrawlerName::Safari1);
                let s1r = s
                    .observations
                    .iter()
                    .find(|o| o.crawler == CrawlerName::Safari1R);
                let (Some(s1), Some(s1r)) = (s1, s1r) else {
                    continue;
                };
                for (name, value, _) in &s1.page_snapshot.cookies {
                    if name.ends_with("_uid") {
                        if let Some((_, v2, _)) =
                            s1r.page_snapshot.cookies.iter().find(|(n, _, _)| n == name)
                        {
                            assert_eq!(v2, value, "same-user UID changed: {name}");
                            compared += 1;
                        }
                    }
                }
            }
        }
        assert!(compared > 0, "no same-user UID comparisons happened");
    }

    #[test]
    fn session_cookies_rotate_for_trailing_crawler() {
        let web = generate(&WebConfig::small());
        let ds = Walker::new(&web, quick_cfg()).crawl();
        let mut rotations = 0;
        for w in &ds.walks {
            for s in &w.steps {
                let s1 = s
                    .observations
                    .iter()
                    .find(|o| o.crawler == CrawlerName::Safari1);
                let s1r = s
                    .observations
                    .iter()
                    .find(|o| o.crawler == CrawlerName::Safari1R);
                let (Some(s1), Some(s1r)) = (s1, s1r) else {
                    continue;
                };
                let v1 = s1
                    .page_snapshot
                    .cookies
                    .iter()
                    .find(|(n, _, _)| n == "_sessid");
                let v2 = s1r
                    .page_snapshot
                    .cookies
                    .iter()
                    .find(|(n, _, _)| n == "_sessid");
                if let (Some((_, v1, _)), Some((_, v2, _))) = (v1, v2) {
                    if v1 != v2 {
                        rotations += 1;
                    }
                }
            }
        }
        assert!(
            rotations > 0,
            "session IDs never rotated for the repeat visitor"
        );
    }

    #[test]
    fn failure_accounting_is_consistent() {
        let web = generate(&WebConfig::small());
        let cfg = CrawlConfig {
            connect_failure_rate: 0.05,
            max_walks: Some(15),
            ..quick_cfg()
        };
        let ds = Walker::new(&web, cfg).crawl();
        let f = ds.failures;
        assert_eq!(
            f.steps_attempted,
            f.steps_completed + f.sync_failures + f.divergence_failures + f.connect_failures // walks that ran out of steps: attempted counts only failed
                                                                                             // or completed steps, so the equation balances exactly.
        );
    }

    #[test]
    fn navigation_hops_recorded_for_redirect_chains() {
        let web = generate(&WebConfig::small());
        let cfg = CrawlConfig {
            steps_per_walk: 6,
            max_walks: Some(15),
            ..quick_cfg()
        };
        let ds = Walker::new(&web, cfg).crawl();
        let max_hops = ds
            .observations()
            .map(|o| o.nav_hops.len())
            .max()
            .unwrap_or(0);
        assert!(
            max_hops >= 3,
            "expected at least one multi-hop redirect chain, max was {max_hops}"
        );
    }
}
