//! Sharded crawling — the paper's deployment model.
//!
//! §3.8: "CrumbCruncher runs on twelve Amazon EC2 t2.large instances. Each
//! EC2 instance has a different set of 834 seeder domains. The full crawl
//! of 10,000 seeder domains takes approximately three days." Shards crawl
//! disjoint contiguous seeder ranges and their datasets merge losslessly:
//! because every walk derives its randomness from its *global* walk id, a
//! sharded crawl is bit-identical to the single-instance crawl.

use crate::record::CrawlDataset;
use crate::walker::{CrawlConfig, Walker};
use cc_web::SimWeb;

/// A plan dividing the seeder list among `n_shards` instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of crawler instances.
    pub n_shards: usize,
    /// Total seeders to crawl.
    pub n_seeders: usize,
}

impl ShardPlan {
    /// Build a plan (shards get contiguous ranges, like the paper's 834
    /// seeders per instance).
    pub fn new(n_shards: usize, n_seeders: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        ShardPlan {
            n_shards,
            n_seeders,
        }
    }

    /// The `[start, end)` seeder range of one shard.
    pub fn range(&self, shard: usize) -> (usize, usize) {
        assert!(shard < self.n_shards, "shard index out of range");
        let per = self.n_seeders.div_ceil(self.n_shards);
        let start = (shard * per).min(self.n_seeders);
        let end = ((shard + 1) * per).min(self.n_seeders);
        (start, end)
    }
}

impl<'w> Walker<'w> {
    /// Crawl one contiguous range of seeders `[start, end)`, using the
    /// *global* walk ids so the result merges losslessly with other shards.
    pub fn crawl_range(&mut self, start: usize, end: usize) -> CrawlDataset {
        let mut dataset = CrawlDataset::default();
        let seeders = self.web().seeder_urls();
        for (walk_id, seeder) in seeders
            .iter()
            .enumerate()
            .skip(start)
            .take(end.saturating_sub(start))
        {
            let walk = self.walk_public(walk_id as u32, seeder.clone(), &mut dataset.failures);
            dataset.ledger.note(&walk);
            dataset.walks.push(walk);
        }
        dataset
    }
}

/// Crawl all shards of a plan (sequentially here; each shard is what one
/// EC2 instance would run) and merge the results.
pub fn crawl_sharded(web: &SimWeb, cfg: &CrawlConfig, plan: ShardPlan) -> CrawlDataset {
    let shards: Vec<CrawlDataset> = (0..plan.n_shards)
        .map(|s| {
            let (start, end) = plan.range(s);
            Walker::new(web, cfg.clone()).crawl_range(start, end)
        })
        .collect();
    merge(shards)
}

/// Merge shard datasets into one, summing the failure accounting (an
/// alias for [`CrawlDataset::merge`], kept as the shard-level entry
/// point).
pub fn merge(shards: Vec<CrawlDataset>) -> CrawlDataset {
    CrawlDataset::merge(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_web::{generate, WebConfig};

    fn cfg() -> CrawlConfig {
        CrawlConfig {
            seed: 3,
            steps_per_walk: 3,
            max_walks: None,
            connect_failure_rate: 0.02,
            ..CrawlConfig::default()
        }
    }

    #[test]
    fn plan_ranges_cover_everything_once() {
        let plan = ShardPlan::new(12, 10_000);
        let mut covered = 0;
        let mut prev_end = 0;
        for s in 0..12 {
            let (start, end) = plan.range(s);
            assert_eq!(start, prev_end);
            covered += end - start;
            prev_end = end;
        }
        assert_eq!(covered, 10_000);
        // The paper's per-instance share: 834 (ceil(10000/12)).
        assert_eq!(plan.range(0), (0, 834));
    }

    #[test]
    fn uneven_plans_truncate_cleanly() {
        let plan = ShardPlan::new(4, 10);
        assert_eq!(plan.range(0), (0, 3));
        assert_eq!(plan.range(3), (9, 10));
        let empty = ShardPlan::new(5, 3);
        assert_eq!(empty.range(4), (3, 3));
    }

    #[test]
    fn sharded_crawl_equals_single_instance() {
        let web = generate(&WebConfig::small());
        let single = Walker::new(&web, cfg()).crawl();
        let sharded = crawl_sharded(&web, &cfg(), ShardPlan::new(4, web.seeders.len()));
        assert_eq!(single.walks.len(), sharded.walks.len());
        assert_eq!(single.failures, sharded.failures);
        for (a, b) in single.walks.iter().zip(&sharded.walks) {
            assert_eq!(a, b, "walk {} differs across sharding", a.walk_id);
        }
    }

    #[test]
    fn merge_is_order_insensitive() {
        let web = generate(&WebConfig::small());
        let mut w = Walker::new(&web, cfg());
        let a = w.crawl_range(0, 5);
        let b = w.crawl_range(5, 10);
        let ab = merge(vec![a.clone(), b.clone()]);
        let ba = merge(vec![b, a]);
        assert_eq!(ab, ba);
    }
}
