//! # cc-crawler
//!
//! CrumbCruncher's crawling framework: four synchronized crawlers walking
//! the (simulated) web.
//!
//! * [`names`] — the four crawlers (§3.2): Safari-1, Safari-2, Chrome-3
//!   (three distinct users crawling in parallel) and Safari-1R (the
//!   trailing crawler that repeats each of Safari-1's steps as the *same*
//!   user to unmask session IDs).
//! * [`matching`] — the central controller's three element-matching
//!   heuristics (§3.3): anchors by href-sans-query, and any elements by
//!   attribute names + similar bounding box or attribute names + x-path.
//! * [`walker`] — ten-step random walks (§3.1) with the full failure
//!   taxonomy: synchronization failure (no shared element, 7.6% in the
//!   paper), divergence (clicked elements led to different FQDNs, 1.8%),
//!   and connection failures (3.3%). Three interchangeable drivers
//!   ([`DriverMode`]): deterministic lockstep, scoped threads, and the
//!   paper's architecture — persistent crawler workers exchanging
//!   messages with the central controller over crossbeam channels. All
//!   three produce byte-identical datasets.
//! * [`shard`] — the paper's deployment model (§3.8): twelve instances
//!   crawling disjoint seeder ranges, merged losslessly.
//! * [`executor`] — the parallel work-stealing executor: worker threads
//!   claim global walk ids from a shared atomic counter, so the merged
//!   dataset is bit-identical to a serial crawl at any worker count.
//! * [`record`] — the crawl dataset (serde-serializable, like the paper's
//!   released dataset): per-step observations of storage snapshots,
//!   clicked elements, navigation hops, and beacon requests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod config;
pub mod executor;
pub mod matching;
pub mod names;
pub mod record;
pub mod shard;
pub mod walker;

pub use checkpoint::{CrawlCheckpoint, CHECKPOINT_SCHEMA};
pub use config::{CheckpointPolicy, ServePolicy, StudyConfig, StudyConfigBuilder};
pub use executor::{
    crawl_parallel, crawl_parallel_instrumented, crawl_parallel_with_progress, crawl_study,
    crawl_walk_ids, crawl_walk_ids_with_progress, ParallelCrawlConfig, PublishPolicy,
    SnapshotSink, StudyRun, StudyRunOptions,
};
pub use matching::{same_element, select_shared};
pub use names::{CrawlerName, UserId};
pub use record::{
    ClickedElement, CrawlDataset, CrawlObservation, FailureEntry, FailureLedger, FailureStats,
    StepRecord, WalkRecord, WalkTermination,
};
pub use shard::{crawl_sharded, merge, ShardPlan};
pub use walker::{CrawlConfig, DriverMode, NavigationRewriter, Walker};
