//! Crawler identities.
//!
//! §3.2: "Three of the four crawlers — named Safari-1, Safari-2, and
//! Chrome-3 — each simulate a different user … The fourth crawler,
//! Safari-1R, simulates the same user as Safari-1."

use serde::{Deserialize, Serialize};

/// One of the four crawlers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CrawlerName {
    /// Safari-spoofing crawler, user 1.
    Safari1,
    /// Safari-spoofing crawler, user 2.
    Safari2,
    /// Chrome crawler, user 3.
    Chrome3,
    /// The trailing repeat crawler: same user as Safari-1.
    Safari1R,
}

/// The simulated user behind a crawler. Safari-1 and Safari-1R share one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u8);

impl CrawlerName {
    /// All four crawlers in execution order.
    pub const ALL: [CrawlerName; 4] = [
        CrawlerName::Safari1,
        CrawlerName::Safari2,
        CrawlerName::Chrome3,
        CrawlerName::Safari1R,
    ];

    /// The three *parallel* crawlers (distinct users).
    pub const PARALLEL: [CrawlerName; 3] = [
        CrawlerName::Safari1,
        CrawlerName::Safari2,
        CrawlerName::Chrome3,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            CrawlerName::Safari1 => "Safari-1",
            CrawlerName::Safari2 => "Safari-2",
            CrawlerName::Chrome3 => "Chrome-3",
            CrawlerName::Safari1R => "Safari-1R",
        }
    }

    /// Which simulated user this crawler represents.
    pub fn user(&self) -> UserId {
        match self {
            CrawlerName::Safari1 | CrawlerName::Safari1R => UserId(1),
            CrawlerName::Safari2 => UserId(2),
            CrawlerName::Chrome3 => UserId(3),
        }
    }

    /// Whether the crawler spoofs Safari (vs. presenting as Chrome).
    pub fn spoofs_safari(&self) -> bool {
        !matches!(self, CrawlerName::Chrome3)
    }
}

impl std::fmt::Display for CrawlerName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn users_and_labels() {
        assert_eq!(CrawlerName::Safari1.user(), CrawlerName::Safari1R.user());
        assert_ne!(CrawlerName::Safari1.user(), CrawlerName::Safari2.user());
        assert_ne!(CrawlerName::Safari2.user(), CrawlerName::Chrome3.user());
        assert_eq!(CrawlerName::Safari1R.label(), "Safari-1R");
        assert_eq!(CrawlerName::Chrome3.to_string(), "Chrome-3");
    }

    #[test]
    fn ua_spoofing() {
        assert!(CrawlerName::Safari1.spoofs_safari());
        assert!(CrawlerName::Safari1R.spoofs_safari());
        assert!(CrawlerName::Safari2.spoofs_safari());
        assert!(!CrawlerName::Chrome3.spoofs_safari());
    }

    #[test]
    fn three_distinct_users() {
        let users: std::collections::HashSet<_> =
            CrawlerName::ALL.iter().map(|c| c.user()).collect();
        assert_eq!(users.len(), 3);
    }
}
