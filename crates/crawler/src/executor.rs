//! The parallel crawl executor: work-stealing walk scheduling.
//!
//! The paper scales its crawl by running twelve EC2 instances over disjoint
//! seeder ranges (§3.8, modeled by [`crate::shard`]). This module scales
//! the *same* crawl over threads instead: workers share one atomic walk
//! index and claim the next unstarted walk as soon as they finish their
//! current one, so long walks and short walks balance automatically — no
//! worker idles while another still holds a backlog, the dynamic-stealing
//! property static per-shard ranges lack.
//!
//! Determinism is preserved by construction, not by scheduling:
//!
//! * every stream of randomness in a walk is forked from the **global**
//!   walk id (`DetRng::fork_indexed`), never from thread identity or
//!   claim order, so a walk's record is the same whichever worker runs it;
//! * the ground-truth ledger resolves concurrent labels by precedence
//!   ([`cc_web`]'s `TruthLog::note` commutes), so interleaved mint
//!   notifications converge to one ledger;
//! * per-worker datasets merge through [`CrawlDataset::merge`], which
//!   re-sorts by walk id and sums failure counters commutatively.
//!
//! Net effect: `crawl_parallel` with any worker count is **bit-identical**
//! to [`Walker::crawl`] — the parallel-equivalence integration tests
//! assert this on serialized JSON.

use std::sync::atomic::{AtomicUsize, Ordering};

use cc_util::{ProgressCounters, ProgressSnapshot};
use cc_web::SimWeb;

use crate::record::CrawlDataset;
use crate::walker::{CrawlConfig, Walker};

/// Configuration of the parallel executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelCrawlConfig {
    /// Worker threads claiming walks. `1` degenerates to a serial crawl
    /// (still through the executor path, useful for comparisons).
    pub n_workers: usize,
}

impl ParallelCrawlConfig {
    /// A config with an explicit worker count (panics on zero).
    pub fn with_workers(n_workers: usize) -> Self {
        assert!(n_workers > 0, "need at least one worker");
        ParallelCrawlConfig { n_workers }
    }
}

impl Default for ParallelCrawlConfig {
    /// One worker per available CPU.
    fn default() -> Self {
        ParallelCrawlConfig {
            n_workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// Crawl every walk of `cfg` using `par.n_workers` work-stealing workers.
///
/// Returns a dataset bit-identical to `Walker::new(web, cfg).crawl()`.
pub fn crawl_parallel(web: &SimWeb, cfg: &CrawlConfig, par: ParallelCrawlConfig) -> CrawlDataset {
    let progress = ProgressCounters::new(par.n_workers);
    crawl_parallel_with_progress(web, cfg, par, &progress)
}

/// [`crawl_parallel`] plus a final throughput snapshot (walks/sec,
/// steps/sec, per-worker shares).
pub fn crawl_parallel_instrumented(
    web: &SimWeb,
    cfg: &CrawlConfig,
    par: ParallelCrawlConfig,
) -> (CrawlDataset, ProgressSnapshot) {
    let progress = ProgressCounters::new(par.n_workers);
    let dataset = crawl_parallel_with_progress(web, cfg, par, &progress);
    let snapshot = progress.snapshot();
    (dataset, snapshot)
}

/// The executor proper, updating caller-owned progress counters (so a
/// monitor thread can snapshot a live crawl).
pub fn crawl_parallel_with_progress(
    web: &SimWeb,
    cfg: &CrawlConfig,
    par: ParallelCrawlConfig,
    progress: &ProgressCounters,
) -> CrawlDataset {
    assert!(par.n_workers > 0, "need at least one worker");
    let seeders = web.seeder_urls();
    let limit = cfg.max_walks.unwrap_or(seeders.len()).min(seeders.len());

    // The work queue is just an index: claiming walk i is one fetch_add.
    // Walks are claimed in id order, so early (often longer) walks start
    // first and stragglers fill the tail — classic self-balancing.
    let next_walk = AtomicUsize::new(0);
    let seeders = &seeders[..limit];

    let shards: Vec<CrawlDataset> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..par.n_workers)
            .map(|worker| {
                let next_walk = &next_walk;
                let cfg = cfg.clone();
                scope.spawn(move || {
                    // Root span of this worker thread's trace: walk spans
                    // nest under it.
                    let _worker_span = cc_telemetry::span("crawl.worker");
                    let walker = Walker::new(web, cfg);
                    let mut shard = CrawlDataset::default();
                    let mut claimed: u64 = 0;
                    loop {
                        let walk_id = next_walk.fetch_add(1, Ordering::Relaxed);
                        if walk_id >= seeders.len() {
                            break;
                        }
                        claimed += 1;
                        let walk = walker.walk_public(
                            walk_id as u32,
                            seeders[walk_id].clone(),
                            &mut shard.failures,
                        );
                        progress.record_walk(worker, walk.steps.len() as u64);
                        shard.walks.push(walk);
                    }
                    // Scheduling-dependent readings are gauges (timing
                    // section), never counters: which worker claimed how
                    // many walks varies run to run. Starvation compares a
                    // worker's claims to its fair share — 0.0 is a fair
                    // split, 1.0 a fully starved worker.
                    if cc_telemetry::enabled() {
                        let label = worker.to_string();
                        let fair = seeders.len() as f64 / par.n_workers as f64;
                        let starvation = if fair > 0.0 {
                            (1.0 - claimed as f64 / fair).max(0.0)
                        } else {
                            0.0
                        };
                        cc_telemetry::gauge_labeled(
                            "crawl.worker.walks_claimed",
                            &label,
                            claimed as f64,
                        );
                        cc_telemetry::gauge_labeled(
                            "crawl.worker.queue_starvation",
                            &label,
                            starvation,
                        );
                    }
                    shard
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("crawl worker panicked"))
            .collect()
    });

    CrawlDataset::merge(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_web::{generate, WebConfig};

    fn cfg() -> CrawlConfig {
        CrawlConfig {
            seed: 5,
            steps_per_walk: 3,
            max_walks: Some(10),
            connect_failure_rate: 0.02,
            ..CrawlConfig::default()
        }
    }

    #[test]
    fn parallel_equals_serial_exactly() {
        let serial = {
            let web = generate(&WebConfig::small());
            Walker::new(&web, cfg()).crawl()
        };
        for workers in [1, 2, 3, 8] {
            // Fresh world per run: truth-ledger state must not leak
            // between crawls being compared.
            let web = generate(&WebConfig::small());
            let parallel =
                crawl_parallel(&web, &cfg(), ParallelCrawlConfig::with_workers(workers));
            assert_eq!(serial, parallel, "{workers} workers diverged from serial");
        }
    }

    #[test]
    fn parallel_truth_ledger_matches_serial() {
        let web_a = generate(&WebConfig::small());
        Walker::new(&web_a, cfg()).crawl();
        let web_b = generate(&WebConfig::small());
        crawl_parallel(&web_b, &cfg(), ParallelCrawlConfig::with_workers(4));
        let (ta, tb) = (web_a.truth_snapshot(), web_b.truth_snapshot());
        assert_eq!(ta.len(), tb.len());
        assert_eq!(ta.uid_count(), tb.uid_count());
    }

    #[test]
    fn workers_beyond_walks_are_harmless() {
        let web = generate(&WebConfig::small());
        let few = CrawlConfig {
            max_walks: Some(2),
            ..cfg()
        };
        let ds = crawl_parallel(&web, &few, ParallelCrawlConfig::with_workers(16));
        assert_eq!(ds.walks.len(), 2);
        assert_eq!(ds.walks[0].walk_id, 0);
        assert_eq!(ds.walks[1].walk_id, 1);
    }

    #[test]
    fn instrumented_run_reports_progress() {
        let web = generate(&WebConfig::small());
        let (ds, snap) = crawl_parallel_instrumented(
            &web,
            &cfg(),
            ParallelCrawlConfig::with_workers(2),
        );
        assert_eq!(snap.walks as usize, ds.walks.len());
        assert_eq!(snap.steps as usize, ds.total_steps());
        assert_eq!(snap.per_worker.len(), 2);
        let worker_sum: u64 = snap.per_worker.iter().map(|w| w.walks).sum();
        assert_eq!(worker_sum, snap.walks);
    }

    #[test]
    fn default_config_uses_available_parallelism() {
        assert!(ParallelCrawlConfig::default().n_workers >= 1);
    }
}
