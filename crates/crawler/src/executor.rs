//! The parallel crawl executor: work-stealing walk scheduling.
//!
//! The paper scales its crawl by running twelve EC2 instances over disjoint
//! seeder ranges (§3.8, modeled by [`crate::shard`]). This module scales
//! the *same* crawl over threads instead, through a [`WalkQueue`]: each
//! worker first drains a small contiguous block reserved for it, then
//! claims adaptive batches from the shared tail as soon as it finishes,
//! so long walks and short walks balance automatically — no worker idles
//! while another still holds a backlog, the dynamic-stealing property
//! static per-shard ranges lack — while the reservation bounds how
//! lopsided the claim distribution can get (see [`WalkQueue`]).
//!
//! Determinism is preserved by construction, not by scheduling:
//!
//! * every stream of randomness in a walk is forked from the **global**
//!   walk id (`DetRng::fork_indexed`), never from thread identity or
//!   claim order, so a walk's record is the same whichever worker runs it;
//! * the ground-truth ledger resolves concurrent labels by precedence
//!   ([`cc_web`]'s `TruthLog::note` commutes), so interleaved mint
//!   notifications converge to one ledger;
//! * per-worker datasets merge through [`CrawlDataset::merge`], which
//!   re-sorts by walk id and sums failure counters commutatively.
//!
//! Net effect: `crawl_parallel` with any worker count is **bit-identical**
//! to [`Walker::crawl`] — the parallel-equivalence integration tests
//! assert this on serialized JSON.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use cc_util::{CcError, ProgressCounters, ProgressSnapshot};
use cc_web::SimWeb;

use crate::checkpoint::CrawlCheckpoint;
use crate::config::{CheckpointPolicy, StudyConfig};
use crate::record::{CrawlDataset, FailureStats, WalkRecord};
use crate::walker::{CrawlConfig, Walker};

/// Configuration of the parallel executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelCrawlConfig {
    /// Worker threads claiming walks. `1` degenerates to a serial crawl
    /// (still through the executor path, useful for comparisons).
    pub n_workers: usize,
}

impl ParallelCrawlConfig {
    /// A config with an explicit worker count (panics on zero).
    pub fn with_workers(n_workers: usize) -> Self {
        assert!(n_workers > 0, "need at least one worker");
        ParallelCrawlConfig { n_workers }
    }
}

impl Default for ParallelCrawlConfig {
    /// One worker per available CPU.
    fn default() -> Self {
        ParallelCrawlConfig {
            n_workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// The shared walk queue: per-worker reserved prefixes plus a batched
/// common tail.
///
/// The former design was a single `fetch_add(1)` per walk, which is
/// maximally dynamic but lets scheduling luck hand one worker a wildly
/// skewed share — starvation gauges up to ~0.4 on short queues. This
/// queue splits the index range `0..total` in two:
///
/// * indices `0 .. reserve × n_workers` are **reserved**: worker `w` owns
///   the contiguous block `w×reserve .. (w+1)×reserve` (a quarter of its
///   fair share) and drains it without touching shared state;
/// * the remaining tail is claimed in batches sized
///   `remaining / (2 × n_workers)`, clamped to `1..=8` — large batches
///   while the tail is long (fewer contended claims), single walks near
///   the end (stragglers balance).
///
/// Every worker therefore executes at least its reserved quarter-share,
/// so the `crawl.worker.queue_starvation` gauge is bounded by ~0.75 by
/// construction instead of by scheduling luck. Which worker runs which
/// walk still varies run to run — outputs don't care, because walks are
/// keyed by global id and merged order-independently.
struct WalkQueue {
    total: usize,
    n_workers: usize,
    reserve: usize,
    next: AtomicUsize,
}

impl WalkQueue {
    fn new(total: usize, n_workers: usize) -> Self {
        let n_workers = n_workers.max(1);
        let reserve = total / (4 * n_workers);
        WalkQueue {
            total,
            n_workers,
            reserve,
            next: AtomicUsize::new(reserve * n_workers),
        }
    }

    /// Worker `w`'s view of the queue: an iterator over the indices it
    /// claims.
    fn worker(&self, w: usize) -> WorkerClaims<'_> {
        WorkerClaims {
            queue: self,
            reserved: (w * self.reserve)..((w + 1) * self.reserve),
            batch: 0..0,
        }
    }
}

/// One worker's claim stream: reserved block first, then shared batches.
struct WorkerClaims<'q> {
    queue: &'q WalkQueue,
    reserved: std::ops::Range<usize>,
    batch: std::ops::Range<usize>,
}

impl Iterator for WorkerClaims<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if let Some(i) = self.reserved.next() {
            return Some(i);
        }
        if let Some(i) = self.batch.next() {
            return Some(i);
        }
        loop {
            let start = self.queue.next.load(Ordering::Relaxed);
            if start >= self.queue.total {
                return None;
            }
            let remaining = self.queue.total - start;
            let size = (remaining / (2 * self.queue.n_workers)).clamp(1, 8).min(remaining);
            if self
                .queue
                .next
                .compare_exchange(start, start + size, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                self.batch = start..start + size;
                return self.batch.next();
            }
            // Lost the race; retry with the new head.
        }
    }
}

/// Crawl every walk of `cfg` using `par.n_workers` work-stealing workers.
///
/// Returns a dataset bit-identical to `Walker::new(web, cfg).crawl()`.
pub fn crawl_parallel(web: &SimWeb, cfg: &CrawlConfig, par: ParallelCrawlConfig) -> CrawlDataset {
    let progress = ProgressCounters::new(par.n_workers);
    crawl_parallel_with_progress(web, cfg, par, &progress)
}

/// [`crawl_parallel`] plus a final throughput snapshot (walks/sec,
/// steps/sec, per-worker shares).
pub fn crawl_parallel_instrumented(
    web: &SimWeb,
    cfg: &CrawlConfig,
    par: ParallelCrawlConfig,
) -> (CrawlDataset, ProgressSnapshot) {
    let progress = ProgressCounters::new(par.n_workers);
    let dataset = crawl_parallel_with_progress(web, cfg, par, &progress);
    let snapshot = progress.snapshot();
    (dataset, snapshot)
}

/// The executor proper, updating caller-owned progress counters (so a
/// monitor thread can snapshot a live crawl).
pub fn crawl_parallel_with_progress(
    web: &SimWeb,
    cfg: &CrawlConfig,
    par: ParallelCrawlConfig,
    progress: &ProgressCounters,
) -> CrawlDataset {
    assert!(par.n_workers > 0, "need at least one worker");
    let seeders = web.seeder_urls();
    let limit = cfg.max_walks.unwrap_or(seeders.len()).min(seeders.len());

    let queue = WalkQueue::new(limit, par.n_workers);
    let seeders = &seeders[..limit];

    let shards: Vec<CrawlDataset> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..par.n_workers)
            .map(|worker| {
                let queue = &queue;
                let cfg = cfg.clone();
                scope.spawn(move || {
                    // Per-worker telemetry shard: every ID-addressed
                    // counter/event/histogram touch in the walk loop stays
                    // thread-private until the shard drains at worker
                    // exit. Declared before the span so the worker span
                    // drops (and records) into the shard, not after it.
                    let _telemetry_shard = cc_telemetry::worker_shard();
                    // Root span of this worker thread's trace: walk spans
                    // nest under it.
                    let _worker_span = cc_telemetry::span("crawl.worker");
                    let mut walker = Walker::new(web, cfg);
                    let mut shard = CrawlDataset::default();
                    let mut claimed: u64 = 0;
                    for walk_id in queue.worker(worker) {
                        claimed += 1;
                        let walk = walker.walk_public(
                            walk_id as u32,
                            seeders[walk_id].clone(),
                            &mut shard.failures,
                        );
                        progress.record_walk(worker, walk.steps.len() as u64);
                        shard.ledger.note(&walk);
                        shard.walks.push(walk);
                    }
                    // Scheduling-dependent readings are gauges (timing
                    // section), never counters: which worker claimed how
                    // many walks varies run to run. Starvation compares a
                    // worker's claims to its fair share — 0.0 is a fair
                    // split, 1.0 a fully starved worker.
                    if cc_telemetry::enabled() {
                        let label = worker.to_string();
                        let fair = seeders.len() as f64 / par.n_workers as f64;
                        let starvation = if fair > 0.0 {
                            (1.0 - claimed as f64 / fair).max(0.0)
                        } else {
                            0.0
                        };
                        cc_telemetry::gauge_labeled(
                            "crawl.worker.walks_claimed",
                            &label,
                            claimed as f64,
                        );
                        cc_telemetry::gauge_labeled(
                            "crawl.worker.queue_starvation",
                            &label,
                            starvation,
                        );
                    }
                    shard
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("crawl worker panicked"))
            .collect()
    });

    CrawlDataset::merge(shards)
}

/// A consumer of in-memory crawl snapshots — the in-process twin of the
/// checkpoint file. The executor hands each subscribed sink a complete
/// [`CrawlCheckpoint`] (config + walks so far + truth ledger) every
/// [`PublishPolicy::every`] walks, plus a final one after the last walk.
///
/// Snapshots are **monotone**: each one's walk set is a superset of the
/// previous one's, and the final snapshot holds the whole study. A sink
/// that only keeps the latest snapshot it has seen (coalescing) loses
/// nothing — that is what lets cc-serve's `IndexPublisher` fold batches
/// into fresh `ServingIndex` epochs without ever blocking a crawl worker.
pub trait SnapshotSink: Send + Sync {
    /// Receive a snapshot of the crawl so far. Called from whichever
    /// worker thread completed the triggering walk, under the executor's
    /// accumulator lock — implementations must hand off quickly (queue,
    /// don't build).
    fn publish(&self, snapshot: CrawlCheckpoint);
}

/// Publish a merged snapshot to `sink` every `every` walks (same hook
/// family as [`CheckpointPolicy`], but in-memory instead of on-disk).
#[derive(Clone)]
pub struct PublishPolicy {
    /// Snapshot cadence, in completed walks (must be ≥ 1).
    pub every: usize,
    /// Where snapshots go.
    pub sink: Arc<dyn SnapshotSink>,
}

impl PublishPolicy {
    /// Publish to `sink` every `every` walks (panics on a zero cadence).
    pub fn new(every: usize, sink: Arc<dyn SnapshotSink>) -> PublishPolicy {
        assert!(every > 0, "publish cadence must be at least one walk");
        PublishPolicy { every, sink }
    }
}

impl std::fmt::Debug for PublishPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PublishPolicy").field("every", &self.every).finish()
    }
}

/// How a [`crawl_study`] run starts and stops.
#[derive(Debug, Default)]
pub struct StudyRunOptions {
    /// Resume from a checkpoint: its walks are kept, the truth ledger is
    /// restored, and only the remaining walk ids run.
    pub resume: Option<CrawlCheckpoint>,
    /// Stop claiming after this many *new* walks (graceful drain): the
    /// simulated `kill -TERM` used to exercise checkpoint/resume. Because
    /// walks are claimed in id order, the surviving set is deterministic.
    pub stop_after: Option<usize>,
    /// Publish in-memory snapshots while the crawl runs (the live-serving
    /// hook; independent of the on-disk [`CheckpointPolicy`]).
    pub publish: Option<PublishPolicy>,
}

/// Shared per-walk sink: workers report each finished walk into one
/// accumulator; every `checkpoint.every`-th completion serializes
/// base + accumulated walks to disk (atomic temp-file + rename), and
/// every `publish.every`-th completion hands the same merged snapshot to
/// the in-memory [`SnapshotSink`]. One accumulator serves both cadences,
/// so a walk is counted exactly once however many sinks are subscribed.
struct WalkSinks<'a> {
    checkpoint: Option<&'a CheckpointPolicy>,
    publish: Option<&'a PublishPolicy>,
    study: &'a StudyConfig,
    web: &'a SimWeb,
    base: &'a CrawlDataset,
    acc: Mutex<CrawlDataset>,
    error: Mutex<Option<CcError>>,
}

impl WalkSinks<'_> {
    fn active(&self) -> bool {
        self.checkpoint.is_some() || self.publish.is_some()
    }

    fn record(&self, walk: WalkRecord, failures: FailureStats) {
        let mut acc = self.acc.lock().expect("walk-sink accumulator poisoned");
        acc.ledger.note(&walk);
        acc.walks.push(walk);
        acc.failures.absorb(failures);
        let done = acc.walks.len();
        let save_due = self.checkpoint.is_some_and(|p| done.is_multiple_of(p.every));
        let publish_due = self.publish.is_some_and(|p| done.is_multiple_of(p.every));
        if save_due || publish_due {
            let partial = CrawlDataset::merge([self.base.clone(), acc.clone()]);
            // Emit while still holding the lock: checkpoint writes share
            // one temp file, so concurrent writers would race on the
            // write-then-rename pair — and serialized emission also keeps
            // both the on-disk checkpoint and the published snapshot
            // stream monotonically growing.
            self.emit(partial, save_due, publish_due);
        }
    }

    fn emit(&self, partial: CrawlDataset, save: bool, publish: bool) {
        let ck = CrawlCheckpoint::new(self.study, partial, self.web.truth_snapshot());
        if save {
            if let Some(policy) = self.checkpoint {
                if let Err(e) = ck.save(&policy.path) {
                    self.error
                        .lock()
                        .expect("walk-sink error slot poisoned")
                        .get_or_insert(e);
                }
            }
        }
        if publish {
            if let Some(policy) = self.publish {
                policy.sink.publish(ck);
            }
        }
    }
}

/// Run (or resume) a whole study through the work-stealing executor.
///
/// This is the [`StudyConfig`]-driven entry point: worker count, retry and
/// breaker policies, and the checkpoint schedule all come from the config.
/// The result is byte-identical to [`Walker::crawl`] with the lowered
/// [`CrawlConfig`] — at any worker count, and whether the crawl ran
/// uninterrupted or was killed and resumed.
///
/// For resume / graceful-stop / snapshot-publishing / progress control,
/// chain options onto [`StudyRun`] instead.
pub fn crawl_study(web: &SimWeb, study: &StudyConfig) -> Result<CrawlDataset, CcError> {
    StudyRun::new(web, study).run()
}

/// A configured study run: the builder face of the executor.
///
/// Replaces the widening `crawl_study_with_options` /
/// `crawl_study_with_progress` parameter lists — chain exactly the
/// options a call site needs:
///
/// ```ignore
/// let dataset = StudyRun::new(&web, &study)
///     .resume(checkpoint)
///     .progress(&counters)
///     .publish(PublishPolicy::new(25, publisher))
///     .run()?;
/// ```
#[derive(Debug)]
#[must_use = "a StudyRun does nothing until .run() is called"]
pub struct StudyRun<'a> {
    web: &'a SimWeb,
    study: &'a StudyConfig,
    opts: StudyRunOptions,
    progress: Option<&'a ProgressCounters>,
}

impl<'a> StudyRun<'a> {
    /// A run of `study` over `web` with default options (fresh start, no
    /// publishing, internal progress counters).
    pub fn new(web: &'a SimWeb, study: &'a StudyConfig) -> StudyRun<'a> {
        StudyRun {
            web,
            study,
            opts: StudyRunOptions::default(),
            progress: None,
        }
    }

    /// Resume from `checkpoint`: its walks are kept, the truth ledger
    /// restored, and only the remaining walk ids run.
    pub fn resume(mut self, checkpoint: CrawlCheckpoint) -> Self {
        self.opts.resume = Some(checkpoint);
        self
    }

    /// Stop claiming after `n` *new* walks (deterministic graceful drain).
    pub fn stop_after(mut self, n: usize) -> Self {
        self.opts.stop_after = Some(n);
        self
    }

    /// Publish in-memory [`CrawlCheckpoint`] snapshots to `policy.sink`
    /// every `policy.every` walks, plus a final complete one.
    pub fn publish(mut self, policy: PublishPolicy) -> Self {
        self.opts.publish = Some(policy);
        self
    }

    /// Replace the whole option block at once (the escape hatch shims
    /// lower onto).
    pub fn options(mut self, opts: StudyRunOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Update caller-owned progress counters (so a monitor thread can
    /// snapshot the live crawl). Must be sized to `study.workers`.
    pub fn progress(mut self, progress: &'a ProgressCounters) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Execute the run.
    pub fn run(self) -> Result<CrawlDataset, CcError> {
        match self.progress {
            Some(p) => run_study(self.web, self.study, self.opts, p),
            None => {
                let progress = ProgressCounters::new(self.study.workers);
                run_study(self.web, self.study, self.opts, &progress)
            }
        }
    }
}

/// Crawl exactly the given walk ids of `study` over `web`.
///
/// This is the **lease-ranged** entry point the cc-gaggle worker runs on
/// each lease: the manager partitions the walk-id space, and each worker
/// crawls its slice through the same work-stealing executor (with
/// `study.workers` threads) that a single-process run uses. Because every
/// walk is a pure function of `(study, walk_id)`, shards produced from
/// disjoint leases merge byte-identically to one uninterrupted run —
/// whatever the lease sizes, interleaving, or re-issue history.
///
/// Unlike [`crawl_study`], the returned dataset holds *only* the requested
/// ids (no resume base), and no checkpoint or publish sinks fire: the
/// lease holder owns transport, the lessor owns durability. Ids outside
/// the seeder range are skipped, matching [`run_study`]'s clamping.
pub fn crawl_walk_ids(web: &SimWeb, study: &StudyConfig, ids: &[u32]) -> CrawlDataset {
    let progress = ProgressCounters::new(study.workers);
    crawl_walk_ids_with_progress(web, study, ids, &progress)
}

/// [`crawl_walk_ids`], updating caller-owned progress counters (sized to
/// `study.workers`).
pub fn crawl_walk_ids_with_progress(
    web: &SimWeb,
    study: &StudyConfig,
    ids: &[u32],
    progress: &ProgressCounters,
) -> CrawlDataset {
    let seeders = web.seeder_urls();
    let mut ids: Vec<u32> = ids.to_vec();
    ids.retain(|&id| (id as usize) < seeders.len());
    let shards = crawl_ids_sharded(web, study, &ids, progress, None);
    CrawlDataset::merge(shards)
}

/// The shared shard loop: crawl `ids` over `study.workers` work-stealing
/// threads and return the per-worker shards (unmerged, so callers choose
/// whether a resume base joins the merge).
fn crawl_ids_sharded(
    web: &SimWeb,
    study: &StudyConfig,
    ids: &[u32],
    progress: &ProgressCounters,
    sinks: Option<&WalkSinks<'_>>,
) -> Vec<CrawlDataset> {
    let seeders = web.seeder_urls();
    let queue = WalkQueue::new(ids.len(), study.workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..study.workers)
            .map(|worker| {
                let queue = &queue;
                let cfg = study.crawl_config();
                scope.spawn(move || {
                    // Shard before span: the worker span must drop into
                    // the shard before the shard drains.
                    let _telemetry_shard = cc_telemetry::worker_shard();
                    let _worker_span = cc_telemetry::span("crawl.worker");
                    let mut walker = Walker::new(web, cfg);
                    let mut shard = CrawlDataset::default();
                    for i in queue.worker(worker) {
                        let walk_id = ids[i];
                        // Fresh per-walk failure accounting so checkpoints
                        // carry exact counts for exactly the walks they
                        // hold (sums commute into the same totals).
                        let mut wf = FailureStats::default();
                        let walk =
                            walker.walk_public(walk_id, seeders[walk_id as usize].clone(), &mut wf);
                        progress.record_walk(worker, walk.steps.len() as u64);
                        if let Some(s) = sinks {
                            s.record(walk.clone(), wf);
                        }
                        shard.failures.absorb(wf);
                        shard.ledger.note(&walk);
                        shard.walks.push(walk);
                    }
                    shard
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("crawl worker panicked"))
            .collect()
    })
}

/// The study runner proper (every public entry point lowers to this).
fn run_study(
    web: &SimWeb,
    study: &StudyConfig,
    opts: StudyRunOptions,
    progress: &ProgressCounters,
) -> Result<CrawlDataset, CcError> {
    let seeders = web.seeder_urls();
    let total = study.total_walks().min(seeders.len());

    let (base, mut ids) = match opts.resume {
        Some(ck) => {
            ck.validate_against(study)?;
            // Restore the ground-truth ledger so the resumed run's report
            // (not only its dataset) matches an uninterrupted run.
            web.absorb_truth(&ck.truth);
            let remaining = ck.remaining();
            cc_telemetry::counter("crawl.resume.walks_restored", ck.partial.walks.len() as u64);
            cc_telemetry::counter("crawl.resume.walks_remaining", remaining.len() as u64);
            (ck.partial, remaining)
        }
        None => (CrawlDataset::default(), (0..total as u32).collect()),
    };
    ids.retain(|&id| (id as usize) < seeders.len());
    if let Some(n) = opts.stop_after {
        ids.truncate(n);
    }

    let sinks = WalkSinks {
        checkpoint: study.checkpoint.as_ref(),
        publish: opts.publish.as_ref(),
        study,
        web,
        base: &base,
        acc: Mutex::new(CrawlDataset::default()),
        error: Mutex::new(None),
    };
    let sinks = sinks.active().then_some(&sinks);

    let shards = crawl_ids_sharded(web, study, &ids, progress, sinks);

    if let Some(s) = sinks {
        if let Some(e) = s.error.lock().expect("walk-sink error slot poisoned").take() {
            return Err(e);
        }
    }

    let merged = CrawlDataset::merge(std::iter::once(base).chain(shards));
    if study.checkpoint.is_some() || opts.publish.is_some() {
        // Final emission: a crawl stopped between intervals (or drained by
        // stop_after) still leaves a current checkpoint behind, and
        // subscribers always see one snapshot holding every walk run.
        let final_ck = CrawlCheckpoint::new(study, merged.clone(), web.truth_snapshot());
        if let Some(policy) = &study.checkpoint {
            final_ck.save(&policy.path)?;
        }
        if let Some(policy) = &opts.publish {
            policy.sink.publish(final_ck);
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_web::{generate, WebConfig};

    fn cfg() -> CrawlConfig {
        CrawlConfig {
            seed: 5,
            steps_per_walk: 3,
            max_walks: Some(10),
            connect_failure_rate: 0.02,
            ..CrawlConfig::default()
        }
    }

    #[test]
    fn parallel_equals_serial_exactly() {
        let serial = {
            let web = generate(&WebConfig::small());
            Walker::new(&web, cfg()).crawl()
        };
        for workers in [1, 2, 3, 8] {
            // Fresh world per run: truth-ledger state must not leak
            // between crawls being compared.
            let web = generate(&WebConfig::small());
            let parallel =
                crawl_parallel(&web, &cfg(), ParallelCrawlConfig::with_workers(workers));
            assert_eq!(serial, parallel, "{workers} workers diverged from serial");
        }
    }

    #[test]
    fn parallel_truth_ledger_matches_serial() {
        let web_a = generate(&WebConfig::small());
        Walker::new(&web_a, cfg()).crawl();
        let web_b = generate(&WebConfig::small());
        crawl_parallel(&web_b, &cfg(), ParallelCrawlConfig::with_workers(4));
        let (ta, tb) = (web_a.truth_snapshot(), web_b.truth_snapshot());
        assert_eq!(ta.len(), tb.len());
        assert_eq!(ta.uid_count(), tb.uid_count());
    }

    #[test]
    fn workers_beyond_walks_are_harmless() {
        let web = generate(&WebConfig::small());
        let few = CrawlConfig {
            max_walks: Some(2),
            ..cfg()
        };
        let ds = crawl_parallel(&web, &few, ParallelCrawlConfig::with_workers(16));
        assert_eq!(ds.walks.len(), 2);
        assert_eq!(ds.walks[0].walk_id, 0);
        assert_eq!(ds.walks[1].walk_id, 1);
    }

    #[test]
    fn instrumented_run_reports_progress() {
        let web = generate(&WebConfig::small());
        let (ds, snap) = crawl_parallel_instrumented(
            &web,
            &cfg(),
            ParallelCrawlConfig::with_workers(2),
        );
        assert_eq!(snap.walks as usize, ds.walks.len());
        assert_eq!(snap.steps as usize, ds.total_steps());
        assert_eq!(snap.per_worker.len(), 2);
        let worker_sum: u64 = snap.per_worker.iter().map(|w| w.walks).sum();
        assert_eq!(worker_sum, snap.walks);
    }

    #[test]
    fn default_config_uses_available_parallelism() {
        assert!(ParallelCrawlConfig::default().n_workers >= 1);
    }

    fn faulty_study(workers: usize, checkpoint: Option<(&str, usize)>) -> StudyConfig {
        use cc_net::{BreakerPolicy, RetryPolicy};
        let mut b = StudyConfig::builder()
            .web(WebConfig::small())
            .seed(5)
            .steps(3)
            .walks(12)
            .failure_rate(0.2)
            .retry(RetryPolicy::standard())
            .breaker(BreakerPolicy::standard())
            .workers(workers);
        if let Some((path, every)) = checkpoint {
            b = b.checkpoint(path, every);
        }
        b.build().unwrap()
    }

    #[test]
    fn study_runner_matches_serial_walker_under_faults() {
        let study = faulty_study(4, None);
        let serial = {
            let web = generate(&study.web);
            Walker::new(&web, study.crawl_config()).crawl()
        };
        let web = generate(&study.web);
        let parallel = crawl_study(&web, &study).unwrap();
        assert_eq!(serial, parallel);
        assert!(
            parallel.recovery_totals().retries > 0,
            "a 20% fault rate with retries enabled should retry somewhere"
        );
    }

    #[test]
    fn killed_and_resumed_crawl_matches_uninterrupted() {
        let path = std::env::temp_dir().join("cc-exec-kill-resume.json");
        let path = path.to_str().unwrap().to_string();
        let study = faulty_study(2, Some((&path, 2)));

        // The uninterrupted reference run (its checkpoint write is
        // harmless; the kill run below overwrites the file anyway).
        let web_full = generate(&study.web);
        let full = crawl_study(&web_full, &study).unwrap();

        // Kill after 5 walks, then resume from the checkpoint on a fresh
        // world.
        let web_killed = generate(&study.web);
        let killed = StudyRun::new(&web_killed, &study).stop_after(5).run().unwrap();
        assert_eq!(killed.walks.len(), 5, "graceful drain stopped early");

        let ck = CrawlCheckpoint::load(&path).unwrap();
        assert_eq!(ck.remaining().len(), 12 - 5);
        let web_resumed = generate(&study.web);
        let resumed = StudyRun::new(&web_resumed, &study).resume(ck).run().unwrap();

        assert_eq!(full, resumed, "resumed dataset diverged");
        assert_eq!(
            full.to_json().unwrap(),
            resumed.to_json().unwrap(),
            "resumed dataset bytes diverged"
        );
        // The restored truth ledger converges too, so analysis reports
        // (precision/recall against ground truth) match.
        let (ta, tb) = (web_full.truth_snapshot(), web_resumed.truth_snapshot());
        assert_eq!(ta.len(), tb.len());
        assert_eq!(ta.uid_count(), tb.uid_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_with_mismatched_config_is_refused() {
        let study = faulty_study(1, None);
        let ck = CrawlCheckpoint::new(&study, CrawlDataset::default(), cc_web::TruthLog::new());
        let other = faulty_study(2, None); // differs in worker count
        let web = generate(&other.web);
        let err = StudyRun::new(&web, &other).resume(ck).run().unwrap_err();
        assert!(matches!(err, CcError::Checkpoint(_)), "{err}");
    }

    /// Collects every published snapshot for inspection.
    struct RecordingSink {
        snapshots: Mutex<Vec<CrawlCheckpoint>>,
    }

    impl SnapshotSink for RecordingSink {
        fn publish(&self, snapshot: CrawlCheckpoint) {
            self.snapshots.lock().unwrap().push(snapshot);
        }
    }

    #[test]
    fn published_snapshots_are_monotone_and_end_complete() {
        let study = faulty_study(3, None);
        let sink = Arc::new(RecordingSink {
            snapshots: Mutex::new(Vec::new()),
        });
        let web = generate(&study.web);
        let ds = StudyRun::new(&web, &study)
            .publish(PublishPolicy::new(4, Arc::clone(&sink) as Arc<dyn SnapshotSink>))
            .run()
            .unwrap();

        let snaps = sink.snapshots.lock().unwrap();
        assert!(!snaps.is_empty(), "a 12-walk study publishing every 4 must snapshot");
        let mut last = 0usize;
        for s in snaps.iter() {
            assert!(s.partial.walks.len() >= last, "snapshot walk counts regressed");
            last = s.partial.walks.len();
            assert_eq!(s.total_walks, 12);
            s.validate_against(&study).expect("snapshot carries the study config");
        }
        let final_snap = snaps.last().unwrap();
        assert_eq!(final_snap.partial.walks.len(), ds.walks.len());
        assert_eq!(
            final_snap.partial.to_json().unwrap(),
            ds.to_json().unwrap(),
            "final published snapshot must hold the exact final dataset"
        );
    }

    #[test]
    fn publishing_does_not_perturb_crawl_bytes() {
        struct NullSink;
        impl SnapshotSink for NullSink {
            fn publish(&self, _snapshot: CrawlCheckpoint) {}
        }
        let study = faulty_study(2, None);
        let web_plain = generate(&study.web);
        let plain = crawl_study(&web_plain, &study).unwrap();
        let web_pub = generate(&study.web);
        let published = StudyRun::new(&web_pub, &study)
            .publish(PublishPolicy::new(1, Arc::new(NullSink)))
            .run()
            .unwrap();
        assert_eq!(plain.to_json().unwrap(), published.to_json().unwrap());
    }

    #[test]
    fn lease_partitions_merge_to_the_full_study() {
        let study = faulty_study(2, None);
        let web_full = generate(&study.web);
        let full = crawl_study(&web_full, &study).unwrap();

        // Crawl the same study as three disjoint leases (uneven sizes, out
        // of order) on a fresh world and merge the shards — the gaggle
        // manager's exact recipe.
        let web_leased = generate(&study.web);
        let leases: [&[u32]; 3] = [&[7, 8, 9, 10, 11], &[0, 1, 2], &[3, 4, 5, 6]];
        let shards: Vec<CrawlDataset> = leases
            .iter()
            .map(|ids| crawl_walk_ids(&web_leased, &study, ids))
            .collect();
        let merged = CrawlDataset::merge(shards);
        assert_eq!(full, merged, "lease-partitioned crawl diverged");
        assert_eq!(full.to_json().unwrap(), merged.to_json().unwrap());
    }

    #[test]
    fn out_of_range_lease_ids_are_skipped() {
        let study = faulty_study(1, None);
        let web = generate(&study.web);
        let ds = crawl_walk_ids(&web, &study, &[0, 1, 9_999_999]);
        assert_eq!(ds.walks.len(), 2);
    }
}
