//! The crawl dataset: what CrumbCruncher records and releases.
//!
//! §3.1: at each step CrumbCruncher records "all first-party cookies, local
//! storage values, and web requests on the originator page", the clicked
//! element, "all navigation web requests" through the redirect chain, and
//! the same records on the destination. The paper publishes this dataset;
//! ours is serde-serializable for the same purpose.

use cc_browser::StorageSnapshot;
use cc_net::RecoveryStats;
use cc_url::Url;
use cc_util::IStr;
use cc_web::ElementKind;
use serde::{Deserialize, Serialize};

use crate::names::CrawlerName;

/// Summary of the element a crawler clicked.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClickedElement {
    /// Anchor or iframe.
    pub kind: ElementKind,
    /// The element's x-path on that crawler's page instance.
    pub xpath: String,
}

/// Everything one crawler observed during one walk step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlObservation {
    /// Which crawler.
    pub crawler: CrawlerName,
    /// The page the step started on (where the click happened).
    pub page_url: Url,
    /// First-party storage on the start page after load.
    pub page_snapshot: StorageSnapshot,
    /// The clicked element, if a click happened on this crawler.
    pub clicked: Option<ClickedElement>,
    /// Every navigation-request URL of the click: clicked URL, redirector
    /// hops, final destination (empty when no click or navigation failed).
    pub nav_hops: Vec<Url>,
    /// Where this crawler ended up.
    pub final_url: Option<Url>,
    /// First-party storage on the destination after load.
    pub dest_snapshot: Option<StorageSnapshot>,
    /// Beacon/subresource requests observed during the step, with the
    /// top-level site they were sent from (interned: the vocabulary is
    /// the world's registered domains).
    pub beacons: Vec<(IStr, Url)>,
}

/// One step of a walk: observations from every crawler that executed it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct StepRecord {
    /// Step index within the walk (0-based).
    pub index: usize,
    /// Per-crawler observations.
    pub observations: Vec<CrawlObservation>,
}

/// Why a walk ended before its ten steps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalkTermination {
    /// All ten steps completed.
    Completed,
    /// The controller found no element shared across the three parallel
    /// crawls (§3.3; 7.6% of steps in the paper).
    SyncFailure {
        /// The step at which matching failed.
        step: usize,
    },
    /// The clicked elements "were not actually the same, and led to
    /// different destination websites" (1.8% in the paper). Data retained.
    Divergence {
        /// The step at which the FQDNs disagreed.
        step: usize,
    },
    /// A network error prevented connecting (3.3% of site visits).
    ConnectFailure {
        /// The step at which the connection failed.
        step: usize,
        /// The rendered error (e.g. `ECONNREFUSED`).
        error: String,
    },
}

/// One ten-step random walk from a seeder domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkRecord {
    /// Walk number.
    pub walk_id: u32,
    /// The seeder domain the walk started from (interned).
    pub seeder: IStr,
    /// Completed steps.
    pub steps: Vec<StepRecord>,
    /// How the walk ended.
    pub termination: WalkTermination,
    /// Retry/breaker activity across the walk's four crawlers (all zeros
    /// when fault tolerance is disabled).
    pub recovery: RecoveryStats,
}

/// Aggregate failure accounting (the §3.3 evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FailureStats {
    /// Steps the controller attempted to synchronize.
    pub steps_attempted: u64,
    /// Steps that completed with agreeing FQDNs.
    pub steps_completed: u64,
    /// Steps lost to no-shared-element failures.
    pub sync_failures: u64,
    /// Steps lost to FQDN divergence after the click.
    pub divergence_failures: u64,
    /// Walks lost to connection errors.
    pub connect_failures: u64,
}

impl FailureStats {
    /// Add another accounting into this one. Sums commute, so per-worker
    /// stats aggregate to the same totals in any order.
    pub fn absorb(&mut self, other: FailureStats) {
        self.steps_attempted += other.steps_attempted;
        self.steps_completed += other.steps_completed;
        self.sync_failures += other.sync_failures;
        self.divergence_failures += other.divergence_failures;
        self.connect_failures += other.connect_failures;
    }

    /// Fraction of attempted steps that failed to synchronize.
    pub fn sync_failure_rate(&self) -> f64 {
        ratio(self.sync_failures, self.steps_attempted)
    }

    /// Fraction of attempted steps that diverged after the click.
    pub fn divergence_rate(&self) -> f64 {
        ratio(self.divergence_failures, self.steps_attempted)
    }

    /// Fraction of attempted steps lost to connection errors.
    pub fn connect_failure_rate(&self) -> f64 {
        ratio(self.connect_failures, self.steps_attempted)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One degraded walk in the [`FailureLedger`]: a walk that ended before
/// its full step count, kept as *partial data* rather than silently
/// dropped (the paper keeps divergent steps for exactly this reason).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureEntry {
    /// The degraded walk.
    pub walk_id: u32,
    /// Its seeder domain (interned; shares the walk record's handle).
    pub seeder: IStr,
    /// Steps that were recorded before termination.
    pub steps_recorded: usize,
    /// How the walk ended.
    pub termination: WalkTermination,
    /// Retry/breaker activity during the walk.
    pub recovery: RecoveryStats,
}

/// The audit trail of degraded walks, consumed by the analysis report.
///
/// Entries are keyed by global walk id and re-sorted on merge, so the
/// ledger — like the dataset — is identical for serial and parallel runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FailureLedger {
    /// Degraded walks, ordered by walk id.
    pub entries: Vec<FailureEntry>,
}

impl FailureLedger {
    /// Record a walk if it degraded (non-`Completed` termination).
    pub fn note(&mut self, walk: &WalkRecord) {
        if walk.termination == WalkTermination::Completed {
            return;
        }
        self.entries.push(FailureEntry {
            walk_id: walk.walk_id,
            seeder: walk.seeder.clone(),
            steps_recorded: walk.steps.len(),
            termination: walk.termination.clone(),
            recovery: walk.recovery,
        });
    }

    /// Fold another ledger in, restoring walk-id order (commutative).
    pub fn absorb(&mut self, other: FailureLedger) {
        self.entries.extend(other.entries);
        self.entries.sort_by_key(|e| e.walk_id);
    }

    /// Number of degraded walks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether any walk degraded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A complete crawl: every walk plus the failure accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CrawlDataset {
    /// All walks.
    pub walks: Vec<WalkRecord>,
    /// Failure accounting.
    pub failures: FailureStats,
    /// Degraded-walk audit trail (empty when every walk completed).
    pub ledger: FailureLedger,
}

impl CrawlDataset {
    /// Merge partial datasets (shards, parallel-worker outputs) into one.
    ///
    /// Deterministic regardless of input order: walks are keyed by their
    /// *global* walk id and re-sorted, and the failure counters sum
    /// commutatively — so a merged parallel crawl is byte-identical to
    /// the serial crawl of the same walk set.
    pub fn merge(parts: impl IntoIterator<Item = CrawlDataset>) -> CrawlDataset {
        let parts: Vec<CrawlDataset> = parts.into_iter().collect();
        let mut out = CrawlDataset::default();
        // One allocation for the merged vectors instead of doubling-growth
        // reallocations as shards stream in.
        out.walks
            .reserve(parts.iter().map(|p| p.walks.len()).sum());
        out.ledger
            .entries
            .reserve(parts.iter().map(|p| p.ledger.len()).sum());
        for part in parts {
            out.walks.extend(part.walks);
            out.failures.absorb(part.failures);
            out.ledger.absorb(part.ledger);
        }
        // Walk ids are globally unique, so the faster unstable sort is
        // still deterministic.
        out.walks.sort_unstable_by_key(|w| w.walk_id);
        out
    }

    /// Sum of every walk's retry/breaker accounting.
    pub fn recovery_totals(&self) -> RecoveryStats {
        let mut total = RecoveryStats::default();
        for w in &self.walks {
            total.absorb(&w.recovery);
        }
        total
    }

    /// Total completed steps across all walks.
    pub fn total_steps(&self) -> usize {
        self.walks.iter().map(|w| w.steps.len()).sum()
    }

    /// Iterate over every observation in the dataset.
    pub fn observations(&self) -> impl Iterator<Item = &CrawlObservation> {
        self.walks
            .iter()
            .flat_map(|w| w.steps.iter())
            .flat_map(|s| s.observations.iter())
    }

    /// Serialize to JSON (the released-dataset format).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> CrawlObservation {
        CrawlObservation {
            crawler: CrawlerName::Safari1,
            page_url: Url::parse("https://www.a.com/").unwrap(),
            page_snapshot: StorageSnapshot::default(),
            clicked: Some(ClickedElement {
                kind: ElementKind::Iframe,
                xpath: "/html/body/iframe".into(),
            }),
            nav_hops: vec![
                Url::parse("https://t.net/click?uid=1").unwrap(),
                Url::parse("https://www.b.com/?uid=1").unwrap(),
            ],
            final_url: Some(Url::parse("https://www.b.com/?uid=1").unwrap()),
            dest_snapshot: Some(StorageSnapshot::default()),
            beacons: vec![],
        }
    }

    #[test]
    fn dataset_roundtrips_through_json() {
        let ds = CrawlDataset {
            walks: vec![WalkRecord {
                walk_id: 0,
                seeder: "a.com".into(),
                steps: vec![StepRecord {
                    index: 0,
                    observations: vec![obs()],
                }],
                termination: WalkTermination::Completed,
                recovery: RecoveryStats::default(),
            }],
            failures: FailureStats {
                steps_attempted: 10,
                steps_completed: 9,
                sync_failures: 1,
                divergence_failures: 0,
                connect_failures: 0,
            },
            ledger: FailureLedger::default(),
        };
        let json = ds.to_json().unwrap();
        let back = CrawlDataset::from_json(&json).unwrap();
        assert_eq!(back, ds);
        assert_eq!(back.total_steps(), 1);
        assert_eq!(back.observations().count(), 1);
        // The released format carries the fault-tolerance fields even for
        // clean runs, so consumers see an explicit all-zero accounting.
        assert!(json.contains("recovery") && json.contains("ledger"));
    }

    #[test]
    fn ledger_notes_only_degraded_walks_and_merges_sorted() {
        let walk = |id: u32, termination: WalkTermination| WalkRecord {
            walk_id: id,
            seeder: format!("s{id}.com").into(),
            steps: Vec::new(),
            termination,
            recovery: RecoveryStats {
                retries: u64::from(id),
                ..RecoveryStats::default()
            },
        };
        let mut a = FailureLedger::default();
        a.note(&walk(3, WalkTermination::SyncFailure { step: 1 }));
        a.note(&walk(1, WalkTermination::Completed)); // not recorded
        let mut b = FailureLedger::default();
        b.note(&walk(
            0,
            WalkTermination::ConnectFailure {
                step: 0,
                error: "network error: ECONNRESET".into(),
            },
        ));
        a.absorb(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.entries[0].walk_id, 0);
        assert_eq!(a.entries[1].walk_id, 3);
        assert_eq!(a.entries[1].recovery.retries, 3);
    }

    #[test]
    fn failure_rates() {
        let f = FailureStats {
            steps_attempted: 1000,
            steps_completed: 900,
            sync_failures: 76,
            divergence_failures: 18,
            connect_failures: 33,
        };
        assert!((f.sync_failure_rate() - 0.076).abs() < 1e-12);
        assert!((f.divergence_rate() - 0.018).abs() < 1e-12);
        assert!((f.connect_failure_rate() - 0.033).abs() < 1e-12);
        let empty = FailureStats::default();
        assert_eq!(empty.sync_failure_rate(), 0.0);
    }
}
