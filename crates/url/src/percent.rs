//! Percent-encoding and decoding.
//!
//! We implement the subset of RFC 3986 the measurement needs: encoding of
//! query components (where smuggled payloads — often URL-encoded JSON — live)
//! and lossy-tolerant decoding, because real trackers emit sloppy encodings
//! and the token extractor (§3.6) must not crash on them.

/// Characters that never need escaping in a query component.
#[inline]
fn is_query_safe(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~')
}

/// Percent-encode a string for use as a query key or value.
pub fn encode_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        if is_query_safe(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push(hex_digit(b >> 4));
            out.push(hex_digit(b & 0x0F));
        }
    }
    out
}

#[inline]
fn hex_digit(nibble: u8) -> char {
    match nibble {
        0..=9 => (b'0' + nibble) as char,
        _ => (b'A' + nibble - 10) as char,
    }
}

#[inline]
fn from_hex(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Percent-decode a string.
///
/// Tolerant: malformed escapes (`%G1`, trailing `%`) pass through verbatim
/// rather than erroring, and `+` decodes to a space as in
/// `application/x-www-form-urlencoded` (trackers use both conventions).
/// Invalid UTF-8 byte sequences are replaced with U+FFFD.
pub fn decode_component(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                // A valid escape needs two hex digits after the '%'.
                if i + 2 < bytes.len() {
                    if let (Some(hi), Some(lo)) = (from_hex(bytes[i + 1]), from_hex(bytes[i + 2])) {
                        out.push((hi << 4) | lo);
                        i += 3;
                        continue;
                    }
                }
                out.push(b'%');
                i += 1;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Whether a string contains any percent escape that would decode to a
/// different string — used by the token extractor to decide whether another
/// decode round is worthwhile.
pub fn looks_encoded(s: &str) -> bool {
    let bytes = s.as_bytes();
    bytes.iter().enumerate().any(|(i, &b)| {
        b == b'%'
            && i + 2 < bytes.len()
            && from_hex(bytes[i + 1]).is_some()
            && from_hex(bytes[i + 2]).is_some()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ascii() {
        let s = "hello world/?&=#";
        assert_eq!(decode_component(&encode_component(s)), s);
    }

    #[test]
    fn roundtrip_unicode() {
        let s = "héllo, wörld ✓";
        assert_eq!(decode_component(&encode_component(s)), s);
    }

    #[test]
    fn encode_safe_chars_untouched() {
        assert_eq!(encode_component("abc-XYZ_0.9~"), "abc-XYZ_0.9~");
    }

    #[test]
    fn encode_reserved() {
        assert_eq!(encode_component("a=b&c"), "a%3Db%26c");
        assert_eq!(encode_component(" "), "%20");
    }

    #[test]
    fn decode_plus_as_space() {
        assert_eq!(decode_component("a+b"), "a b");
    }

    #[test]
    fn decode_malformed_passthrough() {
        assert_eq!(decode_component("100%"), "100%");
        assert_eq!(decode_component("%G1ok"), "%G1ok");
        assert_eq!(decode_component("%2"), "%2");
        assert_eq!(decode_component("%%41"), "%A");
    }

    #[test]
    fn decode_case_insensitive_hex() {
        assert_eq!(decode_component("%2f%2F"), "//");
    }

    #[test]
    fn decode_invalid_utf8_replaced() {
        let out = decode_component("%FF%FE");
        assert!(out.contains('\u{FFFD}'));
    }

    #[test]
    fn looks_encoded_detection() {
        assert!(looks_encoded("a%3Db"));
        assert!(!looks_encoded("plain"));
        assert!(!looks_encoded("100%"));
        assert!(!looks_encoded("%zz"));
    }
}
