//! Host names.
//!
//! The crawler compares the **FQDN** each crawler lands on at the end of a
//! step (§3.3), while the pipeline compares **registered domains** when
//! deciding whether a token crossed a first-party boundary (§3.6). A [`Host`]
//! owns a normalized (lowercased) FQDN and exposes both views.

use crate::psl;
use cc_util::{intern, IStr};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// A validated, lowercase host name (FQDN).
///
/// Hosts are drawn from the generated world's bounded vocabulary, so the
/// inner storage is an interned handle ([`IStr`]): cloning a `Host` — which
/// the crawler does on every request-log entry and navigation hop — is a
/// refcount bump, and equality between two copies of the same host is a
/// pointer compare. Serialization is unchanged (a plain string).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Host(IStr);

/// Errors from [`Host::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// Empty host string.
    Empty,
    /// A label (dot-separated piece) was empty or too long.
    BadLabel(String),
    /// The host contained a character outside `[a-z0-9.-]`.
    BadChar(char),
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::Empty => write!(f, "empty host"),
            HostError::BadLabel(l) => write!(f, "bad host label: {l:?}"),
            HostError::BadChar(c) => write!(f, "bad host character: {c:?}"),
        }
    }
}

impl std::error::Error for HostError {}

impl Host {
    /// Parse and normalize a host name.
    pub fn parse(raw: &str) -> Result<Self, HostError> {
        if raw.is_empty() {
            return Err(HostError::Empty);
        }
        // Hot path: hosts produced by the world generator are already
        // lowercase, so normalization is usually a no-op — validate in place
        // and only allocate for mixed-case input.
        let needs_lowering = raw.bytes().any(|b| b.is_ascii_uppercase());
        let lowered;
        let lower: &str = if needs_lowering {
            lowered = raw.to_ascii_lowercase();
            &lowered
        } else {
            raw
        };
        for c in lower.chars() {
            if !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '-') {
                return Err(HostError::BadChar(c));
            }
        }
        for label in lower.split('.') {
            if label.is_empty()
                || label.len() > 63
                || label.starts_with('-')
                || label.ends_with('-')
            {
                return Err(HostError::BadLabel(label.to_string()));
            }
        }
        Ok(Host(intern(lower)))
    }

    /// The full FQDN as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The registered domain (eTLD+1) of this host.
    pub fn registered_domain(&self) -> String {
        self.registered_domain_interned().as_str().to_string()
    }

    /// The registered domain as an interned handle.
    ///
    /// The public-suffix walk runs once per distinct host for the life of
    /// the process; every later call is a shared-map lookup returning a
    /// refcount bump. This is the form the hot paths (navigation partition
    /// keys, cookie jars, observation records) use.
    pub fn registered_domain_interned(&self) -> IStr {
        static CACHE: OnceLock<RwLock<HashMap<IStr, IStr>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
        if let Some(rd) = cache
            .read()
            .expect("rd cache poisoned")
            .get(self.0.as_str())
        {
            return rd.clone();
        }
        let rd = intern(&psl::registered_domain(&self.0));
        cache
            .write()
            .expect("rd cache poisoned")
            .insert(self.0.clone(), rd.clone());
        rd
    }

    /// Whether two hosts share a registered domain — i.e. are the *same*
    /// first-party context in the paper's sense.
    pub fn same_site(&self, other: &Host) -> bool {
        self.registered_domain_interned() == other.registered_domain_interned()
    }

    /// Whether `self` is a subdomain of (or equal to) `parent`.
    pub fn is_subdomain_of(&self, parent: &str) -> bool {
        let parent = parent.to_ascii_lowercase();
        self.0.as_str() == parent
            || (self.0.len() > parent.len()
                && self.0.ends_with(parent.as_str())
                && self.0.as_bytes()[self.0.len() - parent.len() - 1] == b'.')
    }

    /// The dot-separated labels, leftmost first.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Host {
    type Err = HostError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Host::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_normalizes_case() {
        let h = Host::parse("WWW.Example.COM").unwrap();
        assert_eq!(h.as_str(), "www.example.com");
        assert_eq!(h.to_string(), "www.example.com");
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert_eq!(Host::parse(""), Err(HostError::Empty));
        assert!(matches!(Host::parse("a..b"), Err(HostError::BadLabel(_))));
        assert!(matches!(Host::parse("-a.com"), Err(HostError::BadLabel(_))));
        assert!(matches!(Host::parse("a-.com"), Err(HostError::BadLabel(_))));
        assert!(matches!(
            Host::parse("a b.com"),
            Err(HostError::BadChar(' '))
        ));
        assert!(matches!(
            Host::parse("exämple.com"),
            Err(HostError::BadChar(_))
        ));
    }

    #[test]
    fn long_label_rejected() {
        let long = "a".repeat(64);
        assert!(matches!(
            Host::parse(&format!("{long}.com")),
            Err(HostError::BadLabel(_))
        ));
        let ok = "a".repeat(63);
        assert!(Host::parse(&format!("{ok}.com")).is_ok());
    }

    #[test]
    fn registered_domain_and_same_site() {
        let a = Host::parse("ads.tracker.example.com").unwrap();
        let b = Host::parse("www.example.com").unwrap();
        let c = Host::parse("example.org").unwrap();
        assert_eq!(a.registered_domain(), "example.com");
        assert!(a.same_site(&b));
        assert!(!a.same_site(&c));
    }

    #[test]
    fn subdomain_check() {
        let h = Host::parse("l.instagram.com").unwrap();
        assert!(h.is_subdomain_of("instagram.com"));
        assert!(h.is_subdomain_of("l.instagram.com"));
        assert!(!h.is_subdomain_of("nstagram.com"));
        assert!(!h.is_subdomain_of("gram.com"));
    }

    #[test]
    fn labels_iterate() {
        let h = Host::parse("a.b.c").unwrap();
        assert_eq!(h.labels().collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }

    #[test]
    fn from_str_works() {
        let h: Host = "shop.example.co.uk".parse().unwrap();
        assert_eq!(h.registered_domain(), "example.co.uk");
    }
}
