//! # cc-url
//!
//! A from-scratch URL model for CrumbCruncher-RS.
//!
//! The paper's measurement hinges on URL mechanics: UIDs are smuggled in
//! **query parameters** of navigation requests (§3.6), "different first-party
//! contexts" are defined by the **registered domain** (eTLD+1) of the sites
//! involved, and crawler synchronization compares anchors by **href without
//! query parameters** (§3.3). This crate provides exactly those primitives:
//!
//! * [`percent`] — percent-encoding/decoding for path and query components;
//! * [`host`] — host names, FQDNs, and label validation;
//! * [`psl`] — an embedded miniature public-suffix list and the
//!   eTLD+1 (registered domain) computation;
//! * [`Url`] — parse / serialize / manipulate URLs, including ordered query
//!   parameter editing (the defense crate strips and rewrites parameters).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod host;
pub mod percent;
pub mod psl;
mod url;

pub use host::Host;
pub use psl::registered_domain;
pub use url::{parse_query, ParseError, Scheme, Url};
