//! The [`Url`] type: parse, serialize, and edit URLs.
//!
//! Supports the `http`/`https` subset the study needs, with ordered query
//! parameters. Order matters twice: serialization must round-trip so crawler
//! records are comparable, and the defenses (query stripping, debouncing)
//! must rewrite parameters without disturbing the rest.

use crate::host::{Host, HostError};
use crate::percent::{decode_component, encode_component};
use serde::{Deserialize, Serialize};
use std::fmt;

/// URL scheme; the simulated web speaks HTTP(S) only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Scheme {
    /// Plain HTTP.
    Http,
    /// HTTP over TLS.
    Https,
}

impl Scheme {
    /// Scheme name without the `://`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }

    /// Default port for the scheme.
    pub fn default_port(&self) -> u16 {
        match self {
            Scheme::Http => 80,
            Scheme::Https => 443,
        }
    }
}

/// Errors from [`Url::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The URL did not start with a supported scheme.
    BadScheme,
    /// Host failed validation.
    BadHost(HostError),
    /// Port was present but not a valid u16.
    BadPort,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadScheme => write!(f, "unsupported or missing scheme"),
            ParseError::BadHost(e) => write!(f, "invalid host: {e}"),
            ParseError::BadPort => write!(f, "invalid port"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed absolute URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    /// Scheme (http/https).
    pub scheme: Scheme,
    /// Host (FQDN).
    pub host: Host,
    /// Explicit port, if any.
    pub port: Option<u16>,
    /// Path, always beginning with `/`.
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    query: Vec<(String, String)>,
    /// Fragment, without the `#`.
    pub fragment: Option<String>,
}

impl Url {
    /// Parse an absolute URL string.
    pub fn parse(raw: &str) -> Result<Self, ParseError> {
        let raw = raw.trim();
        let (scheme, rest) = if let Some(r) = raw.strip_prefix("https://") {
            (Scheme::Https, r)
        } else if let Some(r) = raw.strip_prefix("http://") {
            (Scheme::Http, r)
        } else {
            return Err(ParseError::BadScheme);
        };

        // Split off fragment first, then query, then path.
        let (rest, fragment) = match rest.split_once('#') {
            Some((r, f)) => (r, Some(f.to_string())),
            None => (rest, None),
        };
        let (rest, query_str) = match rest.split_once('?') {
            Some((r, q)) => (r, Some(q)),
            None => (rest, None),
        };
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], rest[i..].to_string()),
            None => (rest, "/".to_string()),
        };
        let (host_str, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p.parse().map_err(|_| ParseError::BadPort)?;
                (h, Some(port))
            }
            None => (authority, None),
        };
        let host = Host::parse(host_str).map_err(ParseError::BadHost)?;
        let query = query_str.map(parse_query).unwrap_or_default();
        Ok(Url {
            scheme,
            host,
            port,
            path,
            query,
            fragment,
        })
    }

    /// Construct a URL programmatically from parts.
    ///
    /// # Panics
    /// Panics if `host` is not a valid host name (builder misuse).
    pub fn build(scheme: Scheme, host: &str, path: &str) -> Self {
        let path = if path.starts_with('/') {
            path.to_string()
        } else {
            format!("/{path}")
        };
        Url {
            scheme,
            host: Host::parse(host).expect("Url::build requires a valid host"),
            port: None,
            path,
            query: Vec::new(),
            fragment: None,
        }
    }

    /// Shorthand for `Url::build(Scheme::Https, host, path)`.
    pub fn https(host: &str, path: &str) -> Self {
        Url::build(Scheme::Https, host, path)
    }

    /// Construct a URL from an already-validated [`Host`], skipping the
    /// parse/validation pass of [`Url::build`]. This is the hot-path
    /// constructor: the simulated web builds thousands of URLs per second
    /// from hosts it already validated at world-assembly time.
    pub fn from_host(scheme: Scheme, host: Host, path: &str) -> Self {
        let path = if path.starts_with('/') {
            path.to_string()
        } else {
            format!("/{path}")
        };
        Url {
            scheme,
            host,
            port: None,
            path,
            query: Vec::new(),
            fragment: None,
        }
    }

    /// The registered domain (eTLD+1) of the URL's host.
    pub fn registered_domain(&self) -> String {
        self.host.registered_domain()
    }

    /// The registered domain as an interned handle (allocation-free after
    /// the first lookup for a given host).
    pub fn registered_domain_interned(&self) -> cc_util::IStr {
        self.host.registered_domain_interned()
    }

    /// Whether two URLs belong to the same first-party context.
    pub fn same_site(&self, other: &Url) -> bool {
        self.host.same_site(&other.host)
    }

    /// Ordered, decoded query parameters.
    pub fn query(&self) -> &[(String, String)] {
        &self.query
    }

    /// The first value for a query key, if present.
    pub fn query_get(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Append a query parameter (decoded form).
    pub fn query_set(&mut self, key: &str, value: &str) {
        self.query.push((key.to_string(), value.to_string()));
    }

    /// Builder-style [`Url::query_set`].
    #[must_use]
    pub fn with_query(mut self, key: &str, value: &str) -> Self {
        self.query_set(key, value);
        self
    }

    /// Remove every parameter whose key satisfies the predicate; returns the
    /// removed pairs (used by the query-stripping defense, §7.2).
    pub fn query_strip<F: FnMut(&str) -> bool>(&mut self, mut pred: F) -> Vec<(String, String)> {
        let mut removed = Vec::new();
        self.query.retain(|(k, v)| {
            if pred(k) {
                removed.push((k.clone(), v.clone()));
                false
            } else {
                true
            }
        });
        removed
    }

    /// Remove all query parameters.
    pub fn clear_query(&mut self) {
        self.query.clear();
    }

    /// This URL without query or fragment — the form used by the element
    /// matching heuristic "href values are the same (not including query
    /// parameters)" (§3.3).
    pub fn without_query(&self) -> Url {
        Url {
            scheme: self.scheme,
            host: self.host.clone(),
            port: self.port,
            path: self.path.clone(),
            query: Vec::new(),
            fragment: None,
        }
    }

    /// `host + path` string, the "unique URL path" unit of Table 2.
    pub fn host_and_path(&self) -> String {
        format!("{}{}", self.host, self.path)
    }

    /// Serialize back to a string (percent-encoding query components).
    pub fn to_url_string(&self) -> String {
        let mut out = format!("{}://{}", self.scheme.as_str(), self.host);
        if let Some(p) = self.port {
            out.push(':');
            out.push_str(&p.to_string());
        }
        out.push_str(&self.path);
        if !self.query.is_empty() {
            out.push('?');
            let encoded: Vec<String> = self
                .query
                .iter()
                .map(|(k, v)| {
                    if v.is_empty() {
                        encode_component(k)
                    } else {
                        format!("{}={}", encode_component(k), encode_component(v))
                    }
                })
                .collect();
            out.push_str(&encoded.join("&"));
        }
        if let Some(f) = &self.fragment {
            out.push('#');
            out.push_str(f);
        }
        out
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_url_string())
    }
}

impl std::str::FromStr for Url {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

/// Parse a raw query string into decoded key/value pairs.
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|piece| !piece.is_empty())
        .map(|piece| match piece.split_once('=') {
            Some((k, v)) => (decode_component(k), decode_component(v)),
            None => (decode_component(piece), String::new()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_url() {
        let u = Url::parse("https://www.example.com:8443/a/b?x=1&y=two#frag").unwrap();
        assert_eq!(u.scheme, Scheme::Https);
        assert_eq!(u.host.as_str(), "www.example.com");
        assert_eq!(u.port, Some(8443));
        assert_eq!(u.path, "/a/b");
        assert_eq!(u.query_get("x"), Some("1"));
        assert_eq!(u.query_get("y"), Some("two"));
        assert_eq!(u.fragment.as_deref(), Some("frag"));
    }

    #[test]
    fn parse_minimal() {
        let u = Url::parse("http://example.com").unwrap();
        assert_eq!(u.path, "/");
        assert!(u.query().is_empty());
        assert_eq!(u.port, None);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(Url::parse("ftp://x.com"), Err(ParseError::BadScheme));
        assert_eq!(Url::parse("example.com"), Err(ParseError::BadScheme));
        assert!(matches!(
            Url::parse("https://"),
            Err(ParseError::BadHost(_))
        ));
        assert_eq!(Url::parse("https://x.com:99999/"), Err(ParseError::BadPort));
        assert_eq!(Url::parse("https://x.com:abc/"), Err(ParseError::BadPort));
    }

    #[test]
    fn roundtrip() {
        for s in [
            "https://a.com/",
            "http://a.b.co.uk/x/y/z",
            "https://a.com/p?k=v",
            "https://a.com:81/p?a=1&b=2#f",
            "https://t.example.net/r?uid=f3a9%3D1",
        ] {
            let u = Url::parse(s).unwrap();
            let round = Url::parse(&u.to_url_string()).unwrap();
            assert_eq!(u, round, "roundtrip of {s}");
        }
    }

    #[test]
    fn query_encoding_roundtrip() {
        let mut u = Url::https("a.com", "/p");
        u.query_set("redirect", "https://b.com/x?y=1&z=2");
        let s = u.to_url_string();
        let parsed = Url::parse(&s).unwrap();
        assert_eq!(
            parsed.query_get("redirect"),
            Some("https://b.com/x?y=1&z=2")
        );
    }

    #[test]
    fn valueless_query_param() {
        let u = Url::parse("https://a.com/p?flag&k=v").unwrap();
        assert_eq!(u.query_get("flag"), Some(""));
        assert_eq!(u.query_get("k"), Some("v"));
    }

    #[test]
    fn duplicate_keys_preserved_in_order() {
        let u = Url::parse("https://a.com/?k=1&k=2").unwrap();
        assert_eq!(u.query().len(), 2);
        assert_eq!(u.query_get("k"), Some("1"));
        assert!(u.to_url_string().contains("k=1&k=2"));
    }

    #[test]
    fn strip_predicate() {
        let mut u = Url::parse("https://a.com/?uid=abc123&page=2&gclid=xyz").unwrap();
        let removed = u.query_strip(|k| k == "uid" || k == "gclid");
        assert_eq!(removed.len(), 2);
        assert_eq!(u.query().len(), 1);
        assert_eq!(u.query_get("page"), Some("2"));
        assert_eq!(u.query_get("uid"), None);
    }

    #[test]
    fn without_query_matches_heuristic() {
        let a = Url::parse("https://a.com/x?uid=1").unwrap();
        let b = Url::parse("https://a.com/x?uid=2").unwrap();
        assert_ne!(a, b);
        assert_eq!(a.without_query(), b.without_query());
    }

    #[test]
    fn same_site_via_registered_domain() {
        let a = Url::parse("https://ads.shop.example.com/").unwrap();
        let b = Url::parse("https://example.com/").unwrap();
        assert!(a.same_site(&b));
        assert_eq!(a.registered_domain(), "example.com");
    }

    #[test]
    fn host_and_path_unit() {
        let u = Url::parse("https://a.com/x/y?uid=0").unwrap();
        assert_eq!(u.host_and_path(), "a.com/x/y");
    }

    #[test]
    fn display_matches_to_url_string() {
        let u = Url::parse("https://a.com/p?x=1").unwrap();
        assert_eq!(format!("{u}"), u.to_url_string());
    }

    #[test]
    fn build_adds_leading_slash() {
        let u = Url::build(Scheme::Http, "a.com", "page");
        assert_eq!(u.path, "/page");
        assert_eq!(u.to_url_string(), "http://a.com/page");
    }
}
