//! Miniature public-suffix list and eTLD+1 computation.
//!
//! The real study relies on a registered-domain notion ("different
//! first-party contexts" in §3.6, partitioned-storage keys, dedicated-smuggler
//! classification in §5.1). The full Mozilla PSL is thousands of rules; the
//! synthetic web only mints hosts under the suffixes embedded here, chosen to
//! cover every suffix appearing in the paper's tables (`.com`, `.net`, `.org`,
//! `.ru`, `.link`, `.world`, `.ca`, `.co.uk`, …) plus enough multi-label
//! suffixes to exercise the suffix-matching logic.

/// Multi-label public suffixes, longest-match-first semantics.
const MULTI_LABEL_SUFFIXES: &[&str] = &[
    "co.uk", "org.uk", "ac.uk", "gov.uk", "com.au", "net.au", "org.au", "co.jp", "ne.jp", "or.jp",
    "com.br", "com.cn", "com.mx", "co.in", "co.kr", "com.tr",
];

/// Single-label public suffixes.
const SINGLE_LABEL_SUFFIXES: &[&str] = &[
    "com", "net", "org", "edu", "gov", "mil", "int", "io", "co", "ru", "de", "fr", "uk", "ca",
    "au", "jp", "cn", "br", "mx", "in", "kr", "tr", "it", "es", "nl", "se", "no", "pl", "ch", "at",
    "be", "dk", "fi", "link", "world", "info", "biz", "tv", "me", "app", "dev", "ai", "news",
    "shop", "store", "online", "site", "xyz", "club", "live",
];

/// Whether `domain` is exactly a public suffix.
pub fn is_public_suffix(domain: &str) -> bool {
    let d = domain.to_ascii_lowercase();
    MULTI_LABEL_SUFFIXES.contains(&d.as_str()) || SINGLE_LABEL_SUFFIXES.contains(&d.as_str())
}

/// Compute the registered domain (eTLD+1) of a host.
///
/// Falls back gracefully for unknown suffixes: the last two labels are
/// treated as the registered domain (matching common crawler practice when a
/// suffix is absent from the PSL). A bare suffix or single label is returned
/// unchanged.
pub fn registered_domain(host: &str) -> String {
    let host = host.to_ascii_lowercase();
    let labels: Vec<&str> = host.split('.').collect();
    if labels.len() <= 1 {
        return host;
    }
    // Try multi-label suffixes first (longest match wins).
    for suffix in MULTI_LABEL_SUFFIXES {
        let suffix_labels = suffix.split('.').count();
        if labels.len() > suffix_labels && host.ends_with(&format!(".{suffix}")) {
            let keep = suffix_labels + 1;
            return labels[labels.len() - keep..].join(".");
        }
        if host == *suffix {
            return host;
        }
    }
    // Single-label suffix, or unknown TLD fallback: keep last two labels.
    labels[labels.len() - 2..].join(".")
}

/// The public-suffix portion of a host (e.g. `co.uk` for `a.b.co.uk`).
pub fn public_suffix(host: &str) -> String {
    let reg = registered_domain(host);
    match reg.split_once('.') {
        Some((_, suffix)) => suffix.to_string(),
        None => reg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_com() {
        assert_eq!(registered_domain("www.example.com"), "example.com");
        assert_eq!(registered_domain("example.com"), "example.com");
        assert_eq!(registered_domain("a.b.c.example.com"), "example.com");
    }

    #[test]
    fn multi_label_suffix() {
        assert_eq!(registered_domain("www.example.co.uk"), "example.co.uk");
        assert_eq!(registered_domain("deep.sub.example.co.uk"), "example.co.uk");
        // A host that IS a suffix stays as-is.
        assert_eq!(registered_domain("co.uk"), "co.uk");
    }

    #[test]
    fn uk_without_co_prefix() {
        // `service.gov.uk`-style: gov.uk is a suffix.
        assert_eq!(registered_domain("www.service.gov.uk"), "service.gov.uk");
    }

    #[test]
    fn paper_table3_suffixes() {
        // Suffixes appearing in Table 3 of the paper.
        assert_eq!(registered_domain("btds.zog.link"), "zog.link");
        assert_eq!(
            registered_domain("swallowcrockerybless.com"),
            "swallowcrockerybless.com"
        );
        assert_eq!(registered_domain("ads.adfox.ru"), "adfox.ru");
        assert_eq!(registered_domain("kuwosm.world.tmall.com"), "tmall.com");
        assert_eq!(registered_domain("reseau.umontreal.ca"), "umontreal.ca");
        assert_eq!(
            registered_domain("adclick.g.doubleclick.net"),
            "doubleclick.net"
        );
    }

    #[test]
    fn unknown_tld_fallback() {
        assert_eq!(registered_domain("x.y.zunknowntld"), "y.zunknowntld");
    }

    #[test]
    fn single_label() {
        assert_eq!(registered_domain("localhost"), "localhost");
        assert_eq!(registered_domain("com"), "com");
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(registered_domain("WWW.EXAMPLE.COM"), "example.com");
    }

    #[test]
    fn is_public_suffix_checks() {
        assert!(is_public_suffix("com"));
        assert!(is_public_suffix("co.uk"));
        assert!(is_public_suffix("CO.UK"));
        assert!(!is_public_suffix("example.com"));
        assert!(!is_public_suffix("uk.co"));
    }

    #[test]
    fn public_suffix_extraction() {
        assert_eq!(public_suffix("www.example.co.uk"), "co.uk");
        assert_eq!(public_suffix("www.example.com"), "com");
        assert_eq!(public_suffix("localhost"), "localhost");
    }
}
