//! Property-based tests for cc-url invariants.

use cc_url::percent::{decode_component, encode_component};
use cc_url::{registered_domain, Host, Scheme, Url};
use proptest::prelude::*;

/// Strategy for host-safe labels.
fn label() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,12}"
}

fn host_str() -> impl Strategy<Value = String> {
    prop::collection::vec(label(), 1..4).prop_map(|ls| format!("{}.com", ls.join(".")))
}

proptest! {
    #[test]
    fn percent_roundtrip(s in "\\PC{0,64}") {
        prop_assert_eq!(decode_component(&encode_component(&s)), s);
    }

    #[test]
    fn percent_decode_never_panics(s in "\\PC{0,64}") {
        let _ = decode_component(&s);
    }

    #[test]
    fn encode_output_is_query_safe(s in "\\PC{0,64}") {
        let enc = encode_component(&s);
        prop_assert!(enc.bytes().all(|b| b.is_ascii_alphanumeric()
            || matches!(b, b'-' | b'_' | b'.' | b'~' | b'%')));
    }

    #[test]
    fn url_roundtrip(
        host in host_str(),
        path_seg in "[a-z0-9]{0,8}",
        keys in prop::collection::vec("[a-z]{1,6}", 0..4),
        vals in prop::collection::vec("\\PC{0,16}", 0..4),
    ) {
        let mut u = Url::build(Scheme::Https, &host, &format!("/{path_seg}"));
        for (k, v) in keys.iter().zip(vals.iter()) {
            u.query_set(k, v);
        }
        let parsed = Url::parse(&u.to_url_string()).unwrap();
        prop_assert_eq!(parsed, u);
    }

    #[test]
    fn registered_domain_is_suffix_of_host(host in host_str()) {
        let h = Host::parse(&host).unwrap();
        let reg = h.registered_domain();
        prop_assert!(h.is_subdomain_of(&reg));
    }

    #[test]
    fn registered_domain_idempotent(host in host_str()) {
        let once = registered_domain(&host);
        prop_assert_eq!(registered_domain(&once), once.clone());
    }

    #[test]
    fn same_site_is_equivalence_on_subdomains(
        a in label(), b in label(), base in label()
    ) {
        let h1 = Host::parse(&format!("{a}.{base}.com")).unwrap();
        let h2 = Host::parse(&format!("{b}.{base}.com")).unwrap();
        prop_assert!(h1.same_site(&h2));
        prop_assert!(h2.same_site(&h1));
        prop_assert!(h1.same_site(&h1));
    }

    #[test]
    fn host_parse_never_panics(s in "\\PC{0,32}") {
        let _ = Host::parse(&s);
    }

    #[test]
    fn url_parse_never_panics(s in "\\PC{0,64}") {
        let _ = Url::parse(&s);
    }

    #[test]
    fn without_query_drops_all_params(
        host in host_str(),
        keys in prop::collection::vec("[a-z]{1,6}", 1..5),
    ) {
        let mut u = Url::https(&host, "/p");
        for k in &keys {
            u.query_set(k, "v");
        }
        let bare = u.without_query();
        prop_assert!(bare.query().is_empty());
        prop_assert_eq!(bare.host, u.host);
        prop_assert_eq!(bare.path, u.path);
    }
}
