//! The §6 login-page breakage experiment.
//!
//! "We selected ten login pages from our dataset that CrumbCruncher had
//! classified as performing UID smuggling. We manually removed the query
//! parameter that contained the UID … We found that seven of the ten sites
//! showed no change. One showed minor visual changes … The final two pages
//! showed more significant changes: one failed to auto-fill a field in a
//! form and the other took the user to a homepage rather than to a
//! specific subpage."

use cc_url::Url;
use cc_web::SimWeb;
use serde::{Deserialize, Serialize};

/// What happened to a page after stripping its UID parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BreakageOutcome {
    /// Page renders identically.
    NoChange,
    /// Cosmetic-only difference (the paper's 20-pixel shift).
    MinorVisual,
    /// Functional breakage (lost auto-fill, bounced to the homepage).
    Significant,
}

/// One breakage trial.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakageTrial {
    /// The page tested.
    pub url: Url,
    /// The stripped parameter name.
    pub param: String,
    /// Observed outcome.
    pub outcome: BreakageOutcome,
}

/// Simulate loading a site's page with and without its UID parameter and
/// report the difference.
///
/// The model: pages flagged `login_needs_uid` genuinely consume the
/// parameter — most break significantly, some merely shift layout; all
/// other pages ignore the parameter entirely.
pub fn strip_and_compare(web: &SimWeb, url: &Url, param: &str) -> BreakageTrial {
    let site = web.site_for_host(url.host.as_str());
    let outcome = match site {
        Some(s) if s.login_needs_uid => {
            // Deterministic split: a stable hash of the domain decides
            // whether the dependency is cosmetic or functional (the paper
            // saw 1 minor vs 2 significant among dependent pages).
            let h: u32 = s.domain.bytes().map(u32::from).sum();
            if h.is_multiple_of(3) {
                BreakageOutcome::MinorVisual
            } else {
                BreakageOutcome::Significant
            }
        }
        _ => BreakageOutcome::NoChange,
    };
    BreakageTrial {
        url: url.clone(),
        param: param.to_string(),
        outcome,
    }
}

/// Aggregate results of a breakage experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakageReport {
    /// Pages with no change.
    pub unchanged: u64,
    /// Pages with minor visual changes.
    pub minor: u64,
    /// Pages with significant breakage.
    pub significant: u64,
}

impl BreakageReport {
    /// Total pages tested.
    pub fn total(&self) -> u64 {
        self.unchanged + self.minor + self.significant
    }

    /// Fraction of pages that kept working unchanged.
    pub fn unchanged_fraction(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            self.unchanged as f64 / self.total() as f64
        }
    }
}

/// Run the experiment over a set of (url, param) pairs.
pub fn run_experiment<'a, I>(web: &SimWeb, pages: I) -> (Vec<BreakageTrial>, BreakageReport)
where
    I: IntoIterator<Item = (&'a Url, &'a str)>,
{
    let mut trials = Vec::new();
    let mut report = BreakageReport::default();
    for (url, param) in pages {
        let t = strip_and_compare(web, url, param);
        match t.outcome {
            BreakageOutcome::NoChange => report.unchanged += 1,
            BreakageOutcome::MinorVisual => report.minor += 1,
            BreakageOutcome::Significant => report.significant += 1,
        }
        trials.push(t);
    }
    (trials, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_web::{generate, WebConfig};

    #[test]
    fn independent_pages_survive_stripping() {
        let web = generate(&WebConfig::default());
        let site = web
            .sites
            .iter()
            .find(|s| !s.login_needs_uid)
            .expect("plenty of ordinary sites");
        let url = Url::parse(&format!("https://{}/?uid=abc", site.www_fqdn())).unwrap();
        let t = strip_and_compare(&web, &url, "uid");
        assert_eq!(t.outcome, BreakageOutcome::NoChange);
    }

    #[test]
    fn dependent_login_pages_break() {
        let web = generate(&WebConfig::default());
        let site = web
            .sites
            .iter()
            .find(|s| s.login_needs_uid)
            .expect("login sites exist in the default world");
        let url = Url::parse(&format!("https://{}/?uid=abc", site.www_fqdn())).unwrap();
        let t = strip_and_compare(&web, &url, "uid");
        assert_ne!(t.outcome, BreakageOutcome::NoChange);
    }

    #[test]
    fn experiment_report_tallies() {
        let web = generate(&WebConfig::default());
        let urls: Vec<Url> = web
            .sites
            .iter()
            .take(40)
            .map(|s| Url::parse(&format!("https://{}/?uid=x", s.www_fqdn())).unwrap())
            .collect();
        let pages: Vec<(&Url, &str)> = urls.iter().map(|u| (u, "uid")).collect();
        let (trials, report) = run_experiment(&web, pages);
        assert_eq!(trials.len(), 40);
        assert_eq!(report.total(), 40);
        // The world sprinkles login pages sparsely: most pages survive.
        assert!(report.unchanged_fraction() > 0.5);
    }

    #[test]
    fn empty_experiment() {
        let web = generate(&WebConfig::small());
        let (trials, report) = run_experiment(&web, Vec::<(&Url, &str)>::new());
        assert!(trials.is_empty());
        assert_eq!(report.total(), 0);
        assert_eq!(report.unchanged_fraction(), 1.0);
    }
}
