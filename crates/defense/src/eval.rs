//! Defense-effectiveness evaluation (the D1 experiment in DESIGN.md).
//!
//! Scores each §7 defense against a completed crawl:
//!
//! * **Disconnect coverage** — what fraction of measured *dedicated*
//!   smugglers the list knows about (paper: 59%, i.e. 41% missing);
//! * **EasyList coverage** — what fraction of unique smuggling URL paths
//!   contain any hop the filters would block (paper: 6%);
//! * **Query stripping** — what fraction of UID findings a parameter
//!   blocklist neutralizes, before and after feeding the measurement
//!   pipeline's discovered names back into the list (§7.2's proposal);
//! * **Debouncing** — what fraction of findings a Brave-style debounce
//!   prevents (the redirector chain is skipped and blocklisted parameters
//!   are stripped from the landing URL).

use std::collections::BTreeSet;

use cc_analysis::redirectors::{classify_redirectors, RedirectorClass};
use cc_core::pipeline::PipelineOutput;
use cc_url::Url;
use cc_util::stats::Proportion;
use cc_web::SimWeb;
use serde::{Deserialize, Serialize};

use crate::debounce::debounce;
use crate::lists::{DisconnectList, EasyList, ParamBlocklist};

/// Scores for every defense.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseEvaluation {
    /// Dedicated smugglers present on the Disconnect list.
    pub disconnect_coverage: Proportion,
    /// Unique smuggling URL paths containing an EasyList-blocked hop.
    pub easylist_coverage: Proportion,
    /// Findings neutralized by the well-known parameter blocklist.
    pub strip_well_known: Proportion,
    /// Findings neutralized after extending the blocklist with names the
    /// pipeline itself discovered.
    pub strip_with_feedback: Proportion,
    /// Findings prevented by debouncing (chain skipped or UID stripped).
    pub debounce_prevented: Proportion,
}

/// Evaluate all defenses against a pipeline run.
pub fn evaluate_defenses(web: &SimWeb, output: &PipelineOutput) -> DefenseEvaluation {
    let disconnect = DisconnectList::from_web(web);
    let easylist = EasyList::from_web(web);

    // --- Disconnect coverage over measured dedicated smugglers (§5.1).
    let dedicated: Vec<String> = classify_redirectors(output)
        .into_iter()
        .filter(|r| r.class == RedirectorClass::Dedicated)
        .map(|r| r.fqdn)
        .collect();
    let covered = dedicated.iter().filter(|f| disconnect.contains(f)).count() as u64;
    let disconnect_coverage = Proportion::new(covered, dedicated.len() as u64);

    // --- EasyList coverage over unique smuggling URL paths (§7.1).
    let unique_paths: BTreeSet<&[String]> = output
        .findings
        .iter()
        .map(|f| f.url_path.as_slice())
        .collect();
    let blocked = unique_paths
        .iter()
        .filter(|path| {
            path.iter()
                .any(|hop| easylist.blocks_host(crate::eval::fqdn_of(hop)))
        })
        .count() as u64;
    let easylist_coverage = Proportion::new(blocked, unique_paths.len() as u64);

    // --- Query stripping.
    let well_known = ParamBlocklist::well_known();
    let strip_well_known = stripping_score(output, &well_known);
    let mut fed_back = well_known.clone();
    fed_back.extend(output.findings.iter().map(|f| f.name.clone()));
    let strip_with_feedback = stripping_score(output, &fed_back);

    // --- Debouncing: replay each finding's clicked URL through the
    // debouncer and check whether the UID would still reach anywhere.
    let blocklist = ParamBlocklist::well_known();
    let mut prevented = 0u64;
    let mut total = 0u64;
    for f in &output.findings {
        // The clicked URL is the first hop; reconstruct enough of it from
        // the path to decide whether a destination was embedded (chain
        // campaigns embed `cc_dest`).
        total += 1;
        let had_chain = !f.redirectors.is_empty();
        if had_chain {
            // Debounce skips the chain entirely. Chain UIDs ride on the
            // click URL alongside the embedded destination — never inside
            // it — so jumping straight to the destination always drops
            // them.
            prevented += 1;
        } else {
            // Direct O→D decoration: no embedded URL, debounce cannot
            // trigger; only the blocklist can help.
            if blocklist.contains(&f.name) {
                prevented += 1;
            }
        }
    }
    let debounce_prevented = Proportion::new(prevented, total);

    DefenseEvaluation {
        disconnect_coverage,
        easylist_coverage,
        strip_well_known,
        strip_with_feedback,
        debounce_prevented,
    }
}

/// Fraction of findings whose smuggling parameter a blocklist removes.
fn stripping_score(output: &PipelineOutput, blocklist: &ParamBlocklist) -> Proportion {
    let neutralized = output
        .findings
        .iter()
        .filter(|f| blocklist.contains(&f.name))
        .count() as u64;
    Proportion::new(neutralized, output.findings.len() as u64)
}

/// Extract the FQDN from a `host/path` string.
pub(crate) fn fqdn_of(host_and_path: &str) -> &str {
    host_and_path.split('/').next().unwrap_or(host_and_path)
}

/// Replay a navigation URL through the debouncer — exposed so examples can
/// show single navigations being defused.
pub fn debounce_navigation(url: &Url) -> (Url, bool) {
    let out = debounce(url, &ParamBlocklist::well_known());
    let intervened = out.intervened();
    (out.url, intervened)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_crawler::{CrawlConfig, Walker};
    use cc_web::{generate, WebConfig};

    fn eval() -> DefenseEvaluation {
        let web = generate(&WebConfig::default());
        let ds = Walker::new(
            &web,
            CrawlConfig {
                seed: 3,
                steps_per_walk: 5,
                max_walks: Some(40),
                connect_failure_rate: 0.0,
                ..CrawlConfig::default()
            },
        )
        .crawl();
        let out = cc_core::run_pipeline(&ds);
        evaluate_defenses(&web, &out)
    }

    #[test]
    fn evaluation_is_coherent() {
        let e = eval();
        // Feedback never reduces stripping effectiveness.
        assert!(e.strip_with_feedback.fraction() >= e.strip_well_known.fraction());
        // Feeding the pipeline's own discoveries back approaches full
        // coverage (§7.2's automation claim).
        assert!(
            e.strip_with_feedback.fraction() > 0.9,
            "feedback stripping should neutralize nearly everything: {}",
            e.strip_with_feedback
        );
        // EasyList is nearly useless, as the paper found.
        assert!(
            e.easylist_coverage.fraction() < 0.3,
            "EasyList coverage unexpectedly high: {}",
            e.easylist_coverage
        );
        // Debouncing kills chain-based smuggling, a large share.
        assert!(e.debounce_prevented.fraction() > 0.3);
    }

    #[test]
    fn disconnect_gap_measured() {
        let e = eval();
        if e.disconnect_coverage.total > 0 {
            assert!(
                e.disconnect_coverage.fraction() < 1.0,
                "the simulated Disconnect list should have gaps"
            );
        }
    }

    #[test]
    fn debounce_navigation_helper() {
        let mut click = Url::parse("https://r.trk.net/click?gclid=uid1234567890").unwrap();
        click.query_set("cc_dest", "https://www.shop.com/deal");
        let (rewritten, intervened) = debounce_navigation(&click);
        assert!(intervened);
        assert_eq!(rewritten.host.as_str(), "www.shop.com");
    }
}
