//! A Privacy-Badger-style learning blocker (§7.1).
//!
//! "Privacy Badger — a browser extension by the Electronic Frontier
//! Foundation that blocks cross-site tracking — identifies when a tracker
//! inserts a redirector into a navigation path, and extracts the
//! destination link from the query parameter in the redirector's URL."
//!
//! Privacy Badger's defining property is that it ships **no blocklist**:
//! it *learns*. A third-party domain observed tracking on three or more
//! distinct first-party sites is classified as a tracker; thereafter its
//! redirections are bypassed by extracting the embedded destination.

use std::collections::{BTreeMap, BTreeSet};

use cc_core::observe::PathView;
use cc_url::Url;
use serde::{Deserialize, Serialize};

use crate::debounce::embedded_destination;

/// The number of distinct first parties a third party must be seen
/// tracking on before it is blocked (Privacy Badger's heartbeat).
pub const LEARNING_THRESHOLD: usize = 3;

/// The learning tracker-blocker.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Badger {
    /// Third-party domain → first-party sites it was observed on.
    observations: BTreeMap<String, BTreeSet<String>>,
}

impl Badger {
    /// New blocker with nothing learned.
    pub fn new() -> Self {
        Badger::default()
    }

    /// Observe a third-party `tracker_domain` active while browsing
    /// `first_party` (a beacon target, or a redirector hop).
    pub fn observe(&mut self, tracker_domain: &str, first_party: &str) {
        if tracker_domain == first_party {
            return;
        }
        self.observations
            .entry(tracker_domain.to_string())
            .or_default()
            .insert(first_party.to_string());
    }

    /// Learn from a full navigation path: every redirector is a third
    /// party acting on the originator.
    pub fn observe_path(&mut self, path: &PathView) {
        let origin = path.origin.registered_domain();
        for r in path.redirectors() {
            self.observe(&r, &origin);
        }
    }

    /// Whether the blocker has learned to block this domain.
    pub fn blocks(&self, domain: &str) -> bool {
        self.observations
            .get(domain)
            .map(|sites| sites.len() >= LEARNING_THRESHOLD)
            .unwrap_or(false)
    }

    /// Number of learned (blocked) domains.
    pub fn learned(&self) -> usize {
        self.observations
            .values()
            .filter(|s| s.len() >= LEARNING_THRESHOLD)
            .count()
    }

    /// Apply the defense to a navigation: if the target is a learned
    /// tracker and carries an embedded destination, jump straight there
    /// (Privacy Badger's redirector bypass). Returns the rewritten URL and
    /// whether the blocker intervened.
    pub fn rewrite(&self, url: &Url) -> (Url, bool) {
        if !self.blocks(&url.registered_domain()) {
            return (url.clone(), false);
        }
        match embedded_destination(url) {
            Some(dest) => (dest, true),
            // A blocked tracker with no extractable destination: the
            // extension blocks the request outright; we model that as a
            // no-navigation (caller keeps the user where they are). Here
            // we surface it as an intervention with the original URL so
            // callers can decide.
            None => (url.clone(), true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_crawler::CrawlerName;

    fn path(origin: &str, hops: &[&str]) -> PathView {
        PathView {
            walk: 0,
            step: 0,
            crawler: CrawlerName::Safari1,
            origin: Url::parse(&format!("https://www.{origin}/")).unwrap(),
            hops: hops
                .iter()
                .map(|h| Url::parse(&format!("https://{h}/")).unwrap())
                .collect(),
        }
    }

    #[test]
    fn learns_after_three_first_parties() {
        let mut b = Badger::new();
        b.observe_path(&path("a.com", &["r.trk.net", "www.x.com"]));
        assert!(!b.blocks("trk.net"), "one site is not enough");
        b.observe_path(&path("b.com", &["r.trk.net", "www.y.com"]));
        assert!(!b.blocks("trk.net"), "two sites are not enough");
        b.observe_path(&path("c.com", &["r.trk.net", "www.z.com"]));
        assert!(b.blocks("trk.net"), "three sites cross the threshold");
        assert_eq!(b.learned(), 1);
    }

    #[test]
    fn repeat_observations_on_one_site_do_not_count() {
        let mut b = Badger::new();
        for _ in 0..10 {
            b.observe_path(&path("a.com", &["r.trk.net", "www.x.com"]));
        }
        assert!(!b.blocks("trk.net"));
    }

    #[test]
    fn first_party_never_blocks_itself() {
        let mut b = Badger::new();
        for fp in ["a.com", "b.com", "c.com"] {
            b.observe("a.com", fp);
        }
        // Self-observation (a.com on a.com) was skipped; the two foreign
        // sites are below threshold.
        assert!(!b.blocks("a.com"));
    }

    #[test]
    fn rewrite_bypasses_learned_redirector() {
        let mut b = Badger::new();
        for origin in ["a.com", "b.com", "c.com"] {
            b.observe_path(&path(origin, &["r.trk.net", "www.shop.com"]));
        }
        let mut click = Url::parse("https://r.trk.net/click?gclid=uid123456789").unwrap();
        click.query_set("cc_dest", "https://www.shop.com/deal");
        let (rewritten, intervened) = b.rewrite(&click);
        assert!(intervened);
        assert_eq!(rewritten.host.as_str(), "www.shop.com");

        // Unlearned domains pass through untouched.
        let other = Url::parse("https://r.unknown.net/click?x=1").unwrap();
        let (same, intervened) = b.rewrite(&other);
        assert!(!intervened);
        assert_eq!(same, other);
    }

    #[test]
    fn crawl_scale_learning() {
        use cc_crawler::{CrawlConfig, Walker};
        let web = cc_web::generate(&cc_web::WebConfig {
            n_sites: 300,
            n_seeders: 150,
            ..cc_web::WebConfig::default()
        });
        let ds = Walker::new(
            &web,
            CrawlConfig {
                seed: 41,
                steps_per_walk: 5,
                max_walks: Some(150),
                connect_failure_rate: 0.0,
                ..CrawlConfig::default()
            },
        )
        .crawl();
        let out = cc_core::run_pipeline(&ds);
        let mut b = Badger::new();
        // Learn from redirectors in navigation paths…
        for p in &out.paths {
            b.observe_path(p);
        }
        // …and from third-party beacons, Privacy Badger's main signal.
        for obs in ds.observations() {
            for (top_site, beacon) in &obs.beacons {
                b.observe(&beacon.registered_domain(), top_site);
            }
        }
        assert!(
            b.learned() >= 2,
            "a real crawl should teach the badger recurring trackers, got {}",
            b.learned()
        );
        // The dominant network is seen everywhere and must be learned.
        let dominant = cc_url::registered_domain(&web.trackers[0].fqdn);
        assert!(b.blocks(&dominant), "dominant smuggler {dominant} not learned");
    }
}
