//! The measurement's released artifacts (§7.2).
//!
//! "We provide two contributions: first, we publish our list of token names
//! and trackers. This list contains the query parameter names that were
//! used to transfer UIDs across websites, as well as the list of entities
//! that participate in UID smuggling as redirectors." The second
//! contribution is the pipeline itself, which "can be run as an almost
//! entirely automated pipeline to continuously update blocklists of
//! navigational trackers."
//!
//! [`BlocklistArtifacts::from_output`] is that automation: it turns a
//! pipeline run into the three artifacts downstream defenses consume — a
//! query-parameter name list (Brave's `debounce.json` shape), a redirector
//! domain list (Disconnect shape), and combined per-tracker rules.

use std::collections::{BTreeMap, BTreeSet};

use cc_analysis::redirectors::{classify_redirectors, RedirectorClass};
use cc_core::pipeline::PipelineOutput;
use serde::{Deserialize, Serialize};

/// One per-tracker rule: which parameter names the tracker smuggles under.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackerRule {
    /// Redirector registered domain.
    pub domain: String,
    /// Parameter names observed carrying UIDs through it.
    pub params: BTreeSet<String>,
    /// Whether the measurement classified it as a dedicated smuggler.
    pub dedicated: bool,
    /// Unique smuggling domain paths it appeared in (evidence weight).
    pub observations: u64,
}

/// The complete released-blocklist bundle.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlocklistArtifacts {
    /// Query-parameter names observed transferring UIDs (the
    /// `debounce.json`-style list).
    pub token_names: BTreeSet<String>,
    /// Registered domains of redirectors participating in smuggling (the
    /// Disconnect-style list).
    pub tracker_domains: BTreeSet<String>,
    /// Per-tracker rules combining both.
    pub rules: Vec<TrackerRule>,
}

impl BlocklistArtifacts {
    /// Build the artifacts from a pipeline run.
    pub fn from_output(output: &PipelineOutput) -> Self {
        let token_names: BTreeSet<String> =
            output.findings.iter().map(|f| f.name.clone()).collect();

        let profiles = classify_redirectors(output);
        let tracker_domains: BTreeSet<String> = profiles
            .iter()
            .map(|p| cc_url::registered_domain(&p.fqdn))
            .collect();

        // Which parameters traveled through which redirector domains.
        let mut params_by_domain: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for f in &output.findings {
            for r in &f.redirectors {
                params_by_domain
                    .entry(r.clone())
                    .or_default()
                    .insert(f.name.clone());
            }
        }

        let rules = profiles
            .iter()
            .map(|p| {
                let domain = cc_url::registered_domain(&p.fqdn);
                TrackerRule {
                    params: params_by_domain.get(&domain).cloned().unwrap_or_default(),
                    dedicated: p.class == RedirectorClass::Dedicated,
                    observations: p.domain_path_count,
                    domain,
                }
            })
            .collect();

        BlocklistArtifacts {
            token_names,
            tracker_domains,
            rules,
        }
    }

    /// Serialize the bundle as pretty JSON (the release format).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parse a released bundle.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }

    /// Fold the discovered parameter names into a live blocklist — the
    /// continuous-update loop of §7.2.
    pub fn update_param_blocklist(&self, list: &mut crate::lists::ParamBlocklist) {
        list.extend(self.token_names.iter().cloned());
    }

    /// Fold the discovered redirectors into a Disconnect-style list.
    pub fn update_disconnect(&self, list: &mut crate::lists::DisconnectList) {
        for d in &self.tracker_domains {
            list.add(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lists::{DisconnectList, ParamBlocklist};
    use cc_crawler::{CrawlConfig, Walker};
    use cc_web::{generate, WebConfig};

    fn run() -> PipelineOutput {
        let web = generate(&WebConfig {
            n_sites: 300,
            n_seeders: 40,
            ..WebConfig::default()
        });
        let ds = Walker::new(
            &web,
            CrawlConfig {
                seed: 21,
                steps_per_walk: 5,
                max_walks: Some(40),
                connect_failure_rate: 0.0,
                ..CrawlConfig::default()
            },
        )
        .crawl();
        cc_core::run_pipeline(&ds)
    }

    #[test]
    fn artifacts_capture_names_and_domains() {
        let out = run();
        let artifacts = BlocklistArtifacts::from_output(&out);
        assert!(!artifacts.token_names.is_empty(), "no token names released");
        assert!(
            !artifacts.tracker_domains.is_empty(),
            "no tracker domains released"
        );
        // Every rule's domain is in the domain list; dedicated rules exist.
        for rule in &artifacts.rules {
            assert!(artifacts.tracker_domains.contains(&rule.domain));
        }
        assert!(artifacts.rules.iter().any(|r| r.dedicated));
    }

    #[test]
    fn bundle_roundtrips_json() {
        let out = run();
        let artifacts = BlocklistArtifacts::from_output(&out);
        let json = artifacts.to_json().unwrap();
        let back = BlocklistArtifacts::from_json(&json).unwrap();
        assert_eq!(back, artifacts);
    }

    #[test]
    fn continuous_update_loop() {
        let out = run();
        let artifacts = BlocklistArtifacts::from_output(&out);

        let mut params = ParamBlocklist::empty();
        artifacts.update_param_blocklist(&mut params);
        for name in &artifacts.token_names {
            assert!(params.contains(name));
        }

        let mut disconnect = DisconnectList::default();
        artifacts.update_disconnect(&mut disconnect);
        for d in &artifacts.tracker_domains {
            assert!(disconnect.contains(d));
        }
    }

    #[test]
    fn empty_output_yields_empty_bundle() {
        let artifacts = BlocklistArtifacts::from_output(&PipelineOutput::default());
        assert!(artifacts.token_names.is_empty());
        assert!(artifacts.rules.is_empty());
    }
}
