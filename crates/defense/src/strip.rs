//! Query-parameter stripping (§7.2).
//!
//! "Our proposed solution to UID smuggling is to strip out the query
//! parameters that contain UIDs. … Stripping query parameters rather than
//! blocking entire URLs is likely to result in fewer broken pages and
//! therefore less inconvenience to users."

use cc_url::Url;
use serde::{Deserialize, Serialize};

use crate::lists::ParamBlocklist;

/// The result of stripping a navigation URL.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripOutcome {
    /// The rewritten URL.
    pub url: Url,
    /// Parameters removed, in order.
    pub removed: Vec<(String, String)>,
}

impl StripOutcome {
    /// Whether anything was stripped.
    pub fn changed(&self) -> bool {
        !self.removed.is_empty()
    }
}

/// Strip blocklisted parameters from a navigation URL.
pub fn strip_url(url: &Url, blocklist: &ParamBlocklist) -> StripOutcome {
    let mut rewritten = url.clone();
    let removed = rewritten.query_strip(|name| blocklist.contains(name));
    StripOutcome {
        url: rewritten,
        removed,
    }
}

/// Heuristic stripping without a curated list: remove parameters whose
/// values *look like* identifiers (length ≥ 16, mixed alphanumeric, not a
/// word/URL/timestamp). More aggressive, more breakage-prone — included
/// for the ablation comparing list-based and heuristic stripping.
pub fn strip_heuristic(url: &Url) -> StripOutcome {
    let mut rewritten = url.clone();
    let before: Vec<(String, String)> = rewritten.query().to_vec();
    let mut removed = Vec::new();
    rewritten.clear_query();
    for (k, v) in before {
        if looks_like_identifier(&v) {
            removed.push((k, v));
        } else {
            rewritten.query_set(&k, &v);
        }
    }
    StripOutcome {
        url: rewritten,
        removed,
    }
}

/// Identifier-shape test used by [`strip_heuristic`].
pub fn looks_like_identifier(value: &str) -> bool {
    if value.len() < 16 || value.starts_with("http") {
        return false;
    }
    let has_alpha = value.chars().any(|c| c.is_ascii_alphabetic());
    let has_digit = value.chars().any(|c| c.is_ascii_digit());
    let clean = value
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
    has_alpha && has_digit && clean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn strips_blocklisted_params_only() {
        let u = url("https://www.shop.com/deal?gclid=abc123def456&page=2&q=shoes");
        let out = strip_url(&u, &ParamBlocklist::well_known());
        assert!(out.changed());
        assert_eq!(
            out.removed,
            vec![("gclid".to_string(), "abc123def456".to_string())]
        );
        assert_eq!(out.url.query_get("gclid"), None);
        assert_eq!(out.url.query_get("page"), Some("2"));
        assert_eq!(out.url.query_get("q"), Some("shoes"));
    }

    #[test]
    fn empty_blocklist_is_noop() {
        let u = url("https://www.shop.com/deal?gclid=abc");
        let out = strip_url(&u, &ParamBlocklist::empty());
        assert!(!out.changed());
        assert_eq!(out.url, u);
    }

    #[test]
    fn heuristic_strips_identifier_shapes() {
        let u = url("https://www.shop.com/?id=f3a9c17e2b4d5a60f3a9&topic=sweet_magnolia&n=5");
        let out = strip_heuristic(&u);
        assert_eq!(out.removed.len(), 1);
        assert_eq!(out.removed[0].0, "id");
        assert_eq!(out.url.query_get("topic"), Some("sweet_magnolia"));
        assert_eq!(out.url.query_get("n"), Some("5"));
    }

    #[test]
    fn identifier_shapes() {
        assert!(looks_like_identifier("f3a9c17e2b4d5a60"));
        assert!(looks_like_identifier("a81f9c3e-4b2d-4c6a-9e1f"));
        assert!(!looks_like_identifier("short1"));
        assert!(!looks_like_identifier("https://www.a.com/page1"));
        assert!(!looks_like_identifier("sweet_magnolia_deal")); // no digits
        assert!(!looks_like_identifier("1666666666123456")); // no alpha
    }

    #[test]
    fn strip_preserves_url_otherwise() {
        let u = url("https://www.shop.com:8443/deal?fbclid=zz12345#frag");
        let out = strip_url(&u, &ParamBlocklist::well_known());
        assert_eq!(out.url.port, Some(8443));
        assert_eq!(out.url.fragment.as_deref(), Some("frag"));
        assert_eq!(out.url.path, "/deal");
    }
}
