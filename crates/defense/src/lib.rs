//! # cc-defense
//!
//! The countermeasures of §7, implemented and evaluated against the
//! simulated web:
//!
//! * [`lists`] — blocklist infrastructure: a Disconnect-style tracker list
//!   (the paper found 41% of dedicated smugglers missing), EasyList-style
//!   URL filters (only 6% of smuggling URLs blocked), and a Brave-style
//!   query-parameter blocklist.
//! * [`strip`] — query-parameter stripping, the paper's proposed
//!   mitigation (§7.2).
//! * [`debounce`] — Brave's debouncing: when a navigation target carries
//!   the true destination in a query parameter, jump straight to it.
//! * [`itp`] — Safari's ITP-style heuristic: classify redirectors that
//!   forward users without interaction, then purge their storage; sites
//!   sharing a path with a known smuggler are classified too.
//! * [`breakage`] — the §6 login-page breakage experiment: strip the UID
//!   parameter from login URLs and observe what breaks.
//! * [`eval`] — the harness that scores every defense against a crawl.
//! * [`protected`] — protected crawling: rerun the whole measurement with
//!   a defense installed in the browser and compare smuggling rates
//!   end-to-end.
//! * [`artifacts`] — the measurement's released blocklist bundle (token
//!   names + tracker domains, §7.2) and the continuous-update loop.
//! * [`badger`] — a Privacy-Badger-style blocklist-free learner: block a
//!   third party once it is seen tracking on three first parties (§7.1).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifacts;
pub mod badger;
pub mod breakage;
pub mod debounce;
pub mod eval;
pub mod itp;
pub mod lists;
pub mod protected;
pub mod strip;

pub use eval::{evaluate_defenses, DefenseEvaluation};
pub use lists::{DisconnectList, EasyList, ParamBlocklist};
