//! Blocklist infrastructure: Disconnect-style domain lists, EasyList-style
//! URL filters, and Brave-style query-parameter blocklists.
//!
//! The lists are *built from the simulated ecosystem's metadata with the
//! coverage gaps the paper measured*: a list is only as good as its
//! curation lag, and the whole point of §5.1/§7.1 is quantifying that lag
//! (41% of dedicated smugglers missing from Disconnect; 6% of smuggling
//! URLs matched by EasyList).

use std::collections::BTreeSet;

use cc_url::Url;
use cc_web::SimWeb;
use serde::{Deserialize, Serialize};

/// A Disconnect-style tracker-protection list: registered domains.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisconnectList {
    domains: BTreeSet<String>,
}

impl DisconnectList {
    /// Build the list from the ecosystem: every tracker flagged as listed.
    pub fn from_web(web: &SimWeb) -> Self {
        let domains = web
            .trackers
            .iter()
            .filter(|t| t.in_disconnect)
            .map(|t| cc_url::registered_domain(&t.fqdn))
            .collect();
        DisconnectList { domains }
    }

    /// Whether a registered domain is on the list.
    pub fn contains(&self, domain: &str) -> bool {
        self.domains.contains(&cc_url::registered_domain(domain))
    }

    /// Number of listed domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Add a domain (for continuous-update pipelines fed by the measurement
    /// tool — the paper's §7.2 proposal).
    pub fn add(&mut self, domain: &str) {
        self.domains.insert(cc_url::registered_domain(domain));
    }
}

/// An EasyList/EasyPrivacy-style URL filter set. Real filters are pattern
/// rules; the simulator models the outcome that matters — which tracker
/// endpoints are covered.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EasyList {
    covered_fqdns: BTreeSet<String>,
}

impl EasyList {
    /// Build from the ecosystem's coverage flags.
    pub fn from_web(web: &SimWeb) -> Self {
        let covered_fqdns = web
            .trackers
            .iter()
            .filter(|t| t.in_easylist)
            .map(|t| t.fqdn.clone())
            .collect();
        EasyList { covered_fqdns }
    }

    /// Whether a URL would be blocked.
    pub fn blocks(&self, url: &Url) -> bool {
        self.covered_fqdns.contains(url.host.as_str())
    }

    /// Whether a `host/path` string (the dataset's URL-path unit) matches.
    pub fn blocks_host(&self, fqdn: &str) -> bool {
        self.covered_fqdns.contains(fqdn)
    }

    /// Number of covered endpoints.
    pub fn len(&self) -> usize {
        self.covered_fqdns.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.covered_fqdns.is_empty()
    }
}

/// A Brave-style blocklist of query-parameter names known to carry UIDs
/// (`brave-lists/debounce.json` ships exactly such a list).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamBlocklist {
    names: BTreeSet<String>,
}

impl Default for ParamBlocklist {
    fn default() -> Self {
        ParamBlocklist::well_known()
    }
}

impl ParamBlocklist {
    /// The well-known UID parameter names (gclid, fbclid, …).
    pub fn well_known() -> Self {
        ParamBlocklist {
            names: cc_web::tracker::UID_PARAM_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }

    /// An empty list (for measuring the no-defense baseline).
    pub fn empty() -> Self {
        ParamBlocklist {
            names: BTreeSet::new(),
        }
    }

    /// Extend the list with parameter names discovered by a measurement
    /// run — the §7.2 "continuously update blocklists" pipeline.
    pub fn extend<I: IntoIterator<Item = String>>(&mut self, names: I) {
        self.names.extend(names);
    }

    /// Whether a parameter name is blocked.
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    /// Number of blocked names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_web::{generate, TrackerKind, WebConfig};

    #[test]
    fn disconnect_coverage_has_the_measured_gap() {
        let web = generate(&WebConfig::default());
        let list = DisconnectList::from_web(&web);
        assert!(!list.is_empty());
        let dedicated: Vec<_> = web
            .trackers
            .iter()
            .filter(|t| t.kind == TrackerKind::DedicatedSmuggler)
            .collect();
        let missing = dedicated.iter().filter(|t| !list.contains(&t.fqdn)).count();
        let frac = missing as f64 / dedicated.len() as f64;
        // The paper found 41% missing; the generated world is calibrated
        // near that.
        assert!((0.2..=0.65).contains(&frac), "missing fraction {frac}");
    }

    #[test]
    fn disconnect_matches_by_registered_domain() {
        let web = generate(&WebConfig::small());
        let listed = web.trackers.iter().find(|t| t.in_disconnect).unwrap();
        let list = DisconnectList::from_web(&web);
        assert!(list.contains(&listed.fqdn));
        assert!(list.contains(&format!(
            "other-label.{}",
            cc_url::registered_domain(&listed.fqdn)
        )));
        assert!(!list.contains("never-listed.example"));
    }

    #[test]
    fn disconnect_updates() {
        let mut list = DisconnectList::default();
        assert!(list.is_empty());
        list.add("r.newsmuggler.net");
        assert!(list.contains("x.newsmuggler.net"));
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn easylist_low_coverage() {
        let web = generate(&WebConfig::default());
        let list = EasyList::from_web(&web);
        let smugglers = web.trackers.iter().filter(|t| t.smuggles()).count();
        assert!(
            list.len() < smugglers / 3,
            "EasyList should cover a small minority ({} of {smugglers})",
            list.len()
        );
    }

    #[test]
    fn easylist_blocks_covered_urls() {
        let web = generate(&WebConfig::default());
        let list = EasyList::from_web(&web);
        if let Some(covered) = web.trackers.iter().find(|t| t.in_easylist) {
            let url = Url::parse(&format!("https://{}/click", covered.fqdn)).unwrap();
            assert!(list.blocks(&url));
            assert!(list.blocks_host(&covered.fqdn));
        }
        let benign = Url::parse("https://www.example.com/").unwrap();
        assert!(!list.blocks(&benign));
    }

    #[test]
    fn param_blocklist() {
        let list = ParamBlocklist::well_known();
        assert!(list.contains("gclid"));
        assert!(list.contains("fbclid"));
        assert!(!list.contains("page"));
        let mut list = ParamBlocklist::empty();
        assert!(list.is_empty());
        list.extend(["ref_uid".to_string()]);
        assert!(list.contains("ref_uid"));
        assert_eq!(list.len(), 1);
    }
}
