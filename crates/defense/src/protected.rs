//! Protected crawling: run the measurement with a defense *installed in the
//! browser* and compare against the unprotected baseline.
//!
//! The §7 defenses are usually evaluated on recorded data; this module
//! closes the loop by replaying the whole crawl with Brave-style
//! debouncing plus parameter stripping applied to every click, then
//! measuring how much UID smuggling survives end-to-end. This is the
//! experiment a browser vendor would run before shipping the defense.

use cc_analysis::summarize;
use cc_crawler::{CrawlConfig, NavigationRewriter, Walker};
use cc_util::stats::Proportion;
use cc_web::SimWeb;
use serde::{Deserialize, Serialize};

use crate::debounce::debounce;
use crate::lists::ParamBlocklist;
use crate::strip::strip_url;

/// Which defense to install for a protected crawl.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protection {
    /// No defense (the paper's measurement configuration).
    None,
    /// Strip blocklisted query parameters from every navigation.
    StripParams,
    /// Brave-style debouncing + parameter stripping.
    Debounce,
}

/// Build the navigation rewriter implementing a protection level.
pub fn rewriter_for(protection: Protection) -> Option<NavigationRewriter> {
    match protection {
        Protection::None => None,
        Protection::StripParams => {
            let list = ParamBlocklist::well_known();
            Some(NavigationRewriter::new(move |url| {
                strip_url(url, &list).url
            }))
        }
        Protection::Debounce => {
            let list = ParamBlocklist::well_known();
            Some(NavigationRewriter::new(move |url| debounce(url, &list).url))
        }
    }
}

/// Before/after comparison of one protection level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtectionOutcome {
    /// The protection evaluated.
    pub protection: Protection,
    /// Smuggling rate without the defense.
    pub baseline: Proportion,
    /// Smuggling rate with the defense installed.
    pub protected: Proportion,
}

impl ProtectionOutcome {
    /// Fractional reduction in the smuggling rate (1.0 = eliminated).
    pub fn reduction(&self) -> f64 {
        let base = self.baseline.fraction();
        if base == 0.0 {
            0.0
        } else {
            1.0 - self.protected.fraction() / base
        }
    }
}

/// Crawl twice — unprotected and protected — and compare smuggling rates.
pub fn protection_experiment(
    web: &SimWeb,
    base_cfg: &CrawlConfig,
    protection: Protection,
) -> ProtectionOutcome {
    let baseline_ds = Walker::new(web, base_cfg.clone()).crawl();
    let baseline_out = cc_core::run_pipeline(&baseline_ds);
    let baseline = summarize(&baseline_out).smuggling_rate();

    let mut protected_cfg = base_cfg.clone();
    protected_cfg.rewriter = rewriter_for(protection);
    let protected_ds = Walker::new(web, protected_cfg).crawl();
    let protected_out = cc_core::run_pipeline(&protected_ds);
    let protected = summarize(&protected_out).smuggling_rate();

    ProtectionOutcome {
        protection,
        baseline,
        protected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_url::Url;
    use cc_web::{generate, WebConfig};

    fn cfg() -> CrawlConfig {
        CrawlConfig {
            seed: 77,
            steps_per_walk: 5,
            max_walks: Some(40),
            connect_failure_rate: 0.0,
            ..CrawlConfig::default()
        }
    }

    fn bigger_web() -> SimWeb {
        generate(&WebConfig {
            n_sites: 300,
            n_seeders: 40,
            ..WebConfig::default()
        })
    }

    #[test]
    fn rewriters_shapes() {
        assert!(rewriter_for(Protection::None).is_none());
        let strip = rewriter_for(Protection::StripParams).unwrap();
        let u = Url::parse("https://www.shop.com/?gclid=abcdef123456&page=2").unwrap();
        let out = strip.rewrite(&u);
        assert_eq!(out.query_get("gclid"), None);
        assert_eq!(out.query_get("page"), Some("2"));

        let deb = rewriter_for(Protection::Debounce).unwrap();
        let mut click = Url::parse("https://r.trk.net/click?gclid=abcdef123456").unwrap();
        click.query_set("cc_dest", "https://www.shop.com/deal");
        let out = deb.rewrite(&click);
        assert_eq!(out.host.as_str(), "www.shop.com");
    }

    #[test]
    fn debouncing_slashes_smuggling_end_to_end() {
        let web = bigger_web();
        let outcome = protection_experiment(&web, &cfg(), Protection::Debounce);
        assert!(
            outcome.baseline.fraction() > 0.0,
            "baseline crawl found no smuggling to defend against"
        );
        assert!(
            outcome.reduction() > 0.5,
            "debouncing should cut smuggling by more than half: {outcome:?}"
        );
    }

    #[test]
    fn stripping_helps_but_less_than_debouncing() {
        let web = bigger_web();
        let strip = protection_experiment(&web, &cfg(), Protection::StripParams);
        let debounce = protection_experiment(&web, &cfg(), Protection::Debounce);
        // Stripping only removes *known* parameter names; debouncing skips
        // the redirectors entirely. Debouncing must do at least as well.
        assert!(
            debounce.protected.fraction() <= strip.protected.fraction() + 0.01,
            "debounce {:?} vs strip {:?}",
            debounce,
            strip
        );
    }

    #[test]
    fn no_protection_changes_nothing() {
        let web = bigger_web();
        let outcome = protection_experiment(&web, &cfg(), Protection::None);
        assert_eq!(outcome.baseline, outcome.protected);
        assert_eq!(outcome.reduction(), 0.0);
    }
}
