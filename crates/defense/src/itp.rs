//! Safari ITP-style redirector classification (§7.1).
//!
//! "Safari labels an originator as performing UID smuggling if 1) it
//! automatically redirects the user to another site, and 2) it did not
//! receive a user activation. Safari also classifies a site as a UID
//! smuggler if it participates in a navigation path that contains another
//! known UID smuggler." Classified domains have their storage purged
//! unless the user also visits them as a real first party.

use std::collections::BTreeSet;

use cc_browser::Storage;
use cc_core::observe::PathView;
use serde::{Deserialize, Serialize};

/// The ITP classifier state: the set of domains deemed UID smugglers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItpClassifier {
    smugglers: BTreeSet<String>,
    /// Domains the user interacted with as a first party (exempt).
    interacted: BTreeSet<String>,
}

impl ItpClassifier {
    /// New empty classifier.
    pub fn new() -> Self {
        ItpClassifier::default()
    }

    /// Record that the user genuinely interacted with a site as a first
    /// party (clicked on its page): exempts it from classification.
    pub fn record_interaction(&mut self, domain: &str) {
        self.interacted.insert(domain.to_string());
    }

    /// Observe one navigation path. Intermediate hops redirected without
    /// user activation — rule 1. Rule 2 then contaminates the whole path's
    /// intermediates once any hop is a known smuggler.
    pub fn observe_path(&mut self, path: &PathView) {
        let redirectors = path.redirectors();
        for r in &redirectors {
            if !self.interacted.contains(r) {
                self.smugglers.insert(r.clone());
            }
        }
        // Rule 2: guilt by association along the same path.
        if redirectors.iter().any(|r| self.smugglers.contains(r)) {
            for r in &redirectors {
                if !self.interacted.contains(r) {
                    self.smugglers.insert(r.clone());
                }
            }
        }
    }

    /// Whether a domain is classified as a smuggler.
    pub fn is_smuggler(&self, domain: &str) -> bool {
        self.smugglers.contains(domain)
    }

    /// All classified domains.
    pub fn smugglers(&self) -> impl Iterator<Item = &str> {
        self.smugglers.iter().map(String::as_str)
    }

    /// Number of classified domains.
    pub fn len(&self) -> usize {
        self.smugglers.len()
    }

    /// Whether nothing has been classified.
    pub fn is_empty(&self) -> bool {
        self.smugglers.is_empty()
    }

    /// Purge every classified domain's storage (Safari deletes "cookies
    /// and website data set by a redirector unless the user also interacts
    /// with the redirector as a first-party website"). Returns the number
    /// of values removed.
    pub fn purge(&self, storage: &mut Storage) -> usize {
        self.smugglers.iter().map(|d| storage.purge_domain(d)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_browser::StoragePolicy;
    use cc_crawler::CrawlerName;
    use cc_http::SetCookie;
    use cc_net::{SimDuration, SimTime};
    use cc_url::Url;

    fn path(origin: &str, hops: &[&str]) -> PathView {
        PathView {
            walk: 0,
            step: 0,
            crawler: CrawlerName::Safari1,
            origin: Url::parse(&format!("https://www.{origin}/")).unwrap(),
            hops: hops
                .iter()
                .map(|h| Url::parse(&format!("https://{h}/")).unwrap())
                .collect(),
        }
    }

    #[test]
    fn redirectors_classified() {
        let mut itp = ItpClassifier::new();
        itp.observe_path(&path("a.com", &["r.trk.net", "www.b.com"]));
        assert!(itp.is_smuggler("trk.net"));
        assert!(!itp.is_smuggler("a.com"));
        assert!(!itp.is_smuggler("b.com"));
        assert_eq!(itp.len(), 1);
    }

    #[test]
    fn interaction_exempts() {
        let mut itp = ItpClassifier::new();
        itp.record_interaction("login.example");
        itp.observe_path(&path("a.com", &["sso.login.example", "www.b.com"]));
        assert!(!itp.is_smuggler("login.example"));
        assert!(itp.is_empty());
    }

    #[test]
    fn guilt_by_association() {
        let mut itp = ItpClassifier::new();
        itp.observe_path(&path("a.com", &["r.known.net", "www.b.com"]));
        // An innocent-looking hop sharing a path with a known smuggler is
        // classified too (it would be anyway by rule 1 here, but the
        // association rule also covers exempt-candidate edge cases).
        itp.observe_path(&path("c.com", &["r.known.net", "r.fresh.org", "www.d.com"]));
        assert!(itp.is_smuggler("fresh.org"));
    }

    #[test]
    fn purge_clears_classified_storage() {
        let mut itp = ItpClassifier::new();
        itp.observe_path(&path("a.com", &["r.trk.net", "www.b.com"]));

        let mut storage = cc_browser::Storage::new(StoragePolicy::Partitioned);
        storage.set_cookie(
            "trk.net",
            "trk.net",
            &SetCookie::persistent("_ruid", "uid1", SimDuration::from_days(365)),
            SimTime::EPOCH,
        );
        storage.set_cookie(
            "b.com",
            "b.com",
            &SetCookie::persistent("keep", "v", SimDuration::from_days(365)),
            SimTime::EPOCH,
        );
        let removed = itp.purge(&mut storage);
        assert_eq!(removed, 1);
        assert!(storage
            .cookie("trk.net", "trk.net", "_ruid", SimTime::EPOCH)
            .is_none());
        assert!(storage
            .cookie("b.com", "b.com", "keep", SimTime::EPOCH)
            .is_some());
    }
}
