//! Brave-style debouncing (§7.1).
//!
//! "If the browser is navigating to a link with a query parameter for
//! another destination URL, Brave will simply redirect to the URL in the
//! query parameter." Applied recursively, this skips the entire redirector
//! chain — the redirectors never load, never set first-party cookies, and
//! never see the smuggled parameters. Combined with the parameter
//! blocklist, the final landing URL is cleansed too.

use cc_url::Url;
use serde::{Deserialize, Serialize};

use crate::lists::ParamBlocklist;
use crate::strip::strip_url;

/// Maximum embedded-destination unwrap depth (defensive bound).
const MAX_DEBOUNCE_DEPTH: usize = 8;

/// The outcome of debouncing one navigation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DebounceOutcome {
    /// The URL the browser should actually load.
    pub url: Url,
    /// How many embedded destinations were unwrapped (0 = no debounce).
    pub unwrapped: usize,
    /// Parameters stripped from the final URL by the blocklist.
    pub stripped: Vec<(String, String)>,
}

impl DebounceOutcome {
    /// Whether the navigation was rewritten at all.
    pub fn intervened(&self) -> bool {
        self.unwrapped > 0 || !self.stripped.is_empty()
    }
}

/// Find a query parameter whose value is itself a URL — the debounce
/// trigger.
pub fn embedded_destination(url: &Url) -> Option<Url> {
    url.query().iter().find_map(|(_, v)| {
        if v.starts_with("https://") || v.starts_with("http://") {
            Url::parse(v).ok()
        } else {
            None
        }
    })
}

/// Debounce a navigation: recursively unwrap embedded destinations, then
/// strip blocklisted parameters from the final URL.
pub fn debounce(url: &Url, blocklist: &ParamBlocklist) -> DebounceOutcome {
    let mut current = url.clone();
    let mut unwrapped = 0;
    while unwrapped < MAX_DEBOUNCE_DEPTH {
        match embedded_destination(&current) {
            Some(dest) => {
                current = dest;
                unwrapped += 1;
            }
            None => break,
        }
    }
    let stripped = strip_url(&current, blocklist);
    DebounceOutcome {
        url: stripped.url,
        unwrapped,
        stripped: stripped.removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn unwraps_single_level() {
        let click = url(
            "https://r.trk.net/click?cc_dest=https%3A%2F%2Fwww.shop.com%2Fdeal&gclid=uid123456789",
        );
        let out = debounce(&click, &ParamBlocklist::well_known());
        assert_eq!(out.unwrapped, 1);
        assert_eq!(out.url.host.as_str(), "www.shop.com");
        assert_eq!(out.url.path, "/deal");
        assert!(out.intervened());
    }

    #[test]
    fn unwraps_nested_destinations() {
        let inner = url("https://www.shop.com/");
        let mut mid = url("https://r2.trk.net/r");
        mid.query_set("u", &inner.to_url_string());
        let mut outer = url("https://r1.trk.net/click");
        outer.query_set("cc_dest", &mid.to_url_string());
        let out = debounce(&outer, &ParamBlocklist::empty());
        assert_eq!(out.unwrapped, 2);
        assert_eq!(out.url, inner);
    }

    #[test]
    fn strips_uid_that_rode_on_the_destination() {
        let dest = url("https://www.shop.com/deal?gclid=uid123456789&page=2");
        let mut click = url("https://r.trk.net/click");
        click.query_set("cc_dest", &dest.to_url_string());
        let out = debounce(&click, &ParamBlocklist::well_known());
        assert_eq!(out.url.query_get("gclid"), None);
        assert_eq!(out.url.query_get("page"), Some("2"));
        assert_eq!(out.stripped.len(), 1);
    }

    #[test]
    fn plain_navigation_untouched() {
        let u = url("https://www.shop.com/deal?page=2");
        let out = debounce(&u, &ParamBlocklist::well_known());
        assert_eq!(out.unwrapped, 0);
        assert!(!out.intervened());
        assert_eq!(out.url, u);
    }

    #[test]
    fn depth_bounded() {
        // A URL that embeds itself cannot loop forever.
        let mut u = url("https://r.trk.net/click");
        let self_ref = u.to_url_string();
        u.query_set("next", &self_ref);
        let out = debounce(&u, &ParamBlocklist::empty());
        assert!(out.unwrapped <= MAX_DEBOUNCE_DEPTH);
    }
}
