//! A learned UID/non-UID token classifier — the paper's stated future work.
//!
//! §7.2: "We suggest that an approach based on machine learning for
//! distinguishing UIDs would be a good avenue of future work, and would
//! allow CrumbCruncher to perform its tasks in an entirely automated
//! manner."
//!
//! This module implements that suggestion: a from-scratch logistic
//! regression over cheap character-shape features (length, Shannon entropy,
//! digit/letter mix, delimiter structure, hex-ness…), trained with plain
//! gradient descent. In the simulator it can be trained on ground-truth
//! labels; against the real web it would be trained on the hand-labeled
//! dataset the paper released. The point of the experiment is the paper's
//! point: how much of the 577-token manual workload can a model absorb?

use cc_util::strings::{shannon_entropy, split_words, CharProfile};
use serde::{Deserialize, Serialize};

/// Number of features extracted per token.
pub const N_FEATURES: usize = 12;

/// Extract the feature vector for a token value.
///
/// All features are scaled to roughly `[0, 1]` so one learning rate fits.
pub fn features(token: &str) -> [f64; N_FEATURES] {
    let p = CharProfile::of(token);
    let len = token.chars().count() as f64;
    let words = split_words(token);
    let entropy = shannon_entropy(token);
    let max_digit_run = longest_run(token, |c| c.is_ascii_digit()) as f64;
    let case_mix = {
        let upper = token.chars().filter(|c| c.is_ascii_uppercase()).count() as f64;
        let lower = token.chars().filter(|c| c.is_ascii_lowercase()).count() as f64;
        if upper + lower == 0.0 {
            0.0
        } else {
            (upper.min(lower)) / (upper + lower)
        }
    };
    [
        (len / 64.0).min(1.0),
        entropy / 6.0,
        p.digit_fraction(),
        if p.len == 0 {
            0.0
        } else {
            p.letters as f64 / p.len as f64
        },
        if p.all_hex() { 1.0 } else { 0.0 },
        if p.len == 0 {
            0.0
        } else {
            p.separators as f64 / p.len as f64
        },
        (words.len() as f64 / 6.0).min(1.0),
        if p.word_like() { 1.0 } else { 0.0 },
        (max_digit_run / 16.0).min(1.0),
        case_mix,
        if token.contains('.') { 1.0 } else { 0.0 },
        if p.len == 0 {
            0.0
        } else {
            p.other as f64 / p.len as f64
        },
    ]
}

fn longest_run(s: &str, pred: impl Fn(char) -> bool) -> usize {
    let mut best = 0;
    let mut cur = 0;
    for c in s.chars() {
        if pred(c) {
            cur += 1;
            best = best.max(cur);
        } else {
            cur = 0;
        }
    }
    best
}

/// A trained logistic-regression token classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenClassifier {
    weights: [f64; N_FEATURES],
    bias: f64,
}

impl Default for TokenClassifier {
    fn default() -> Self {
        TokenClassifier {
            weights: [0.0; N_FEATURES],
            bias: 0.0,
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl TokenClassifier {
    /// Train on `(token, is_uid)` pairs with batch gradient descent.
    ///
    /// `epochs` full passes at learning rate `lr`, with L2 regularization
    /// `l2`. Returns the trained classifier (training is deterministic).
    pub fn train(samples: &[(&str, bool)], epochs: usize, lr: f64, l2: f64) -> Self {
        let mut model = TokenClassifier::default();
        if samples.is_empty() {
            return model;
        }
        let feats: Vec<([f64; N_FEATURES], f64)> = samples
            .iter()
            .map(|(tok, label)| (features(tok), if *label { 1.0 } else { 0.0 }))
            .collect();
        let n = feats.len() as f64;
        for _ in 0..epochs {
            let mut grad_w = [0.0; N_FEATURES];
            let mut grad_b = 0.0;
            for (x, y) in &feats {
                let p = model.probability_from(x);
                let err = p - y;
                for (gw, xi) in grad_w.iter_mut().zip(x.iter()) {
                    *gw += err * xi;
                }
                grad_b += err;
            }
            for (w, gw) in model.weights.iter_mut().zip(grad_w.iter()) {
                *w -= lr * (gw / n + l2 * *w);
            }
            model.bias -= lr * grad_b / n;
        }
        model
    }

    /// Probability that the token is a UID.
    pub fn probability(&self, token: &str) -> f64 {
        self.probability_from(&features(token))
    }

    fn probability_from(&self, x: &[f64; N_FEATURES]) -> f64 {
        let z: f64 = self
            .weights
            .iter()
            .zip(x.iter())
            .map(|(w, xi)| w * xi)
            .sum::<f64>()
            + self.bias;
        sigmoid(z)
    }

    /// Hard decision at the 0.5 threshold.
    pub fn is_uid(&self, token: &str) -> bool {
        self.probability(token) >= 0.5
    }

    /// Evaluate accuracy/precision/recall on labeled samples.
    pub fn evaluate(&self, samples: &[(&str, bool)]) -> MlScore {
        let mut s = MlScore::default();
        for (tok, label) in samples {
            match (self.is_uid(tok), *label) {
                (true, true) => s.tp += 1,
                (true, false) => s.fp += 1,
                (false, true) => s.fn_ += 1,
                (false, false) => s.tn += 1,
            }
        }
        s
    }
}

/// Confusion-matrix summary for the learned classifier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlScore {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// False negatives.
    pub fn_: u64,
    /// True negatives.
    pub tn: u64,
}

impl MlScore {
    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.fn_ + self.tn;
        if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Precision on the UID class.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall on the UID class.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }
}

/// Build a labeled training set from a world's ground-truth ledger — the
/// simulator's substitute for the paper's hand-labeled dataset.
pub fn training_set(truth: &cc_web::script::TruthLog, tokens: &[String]) -> Vec<(String, bool)> {
    tokens
        .iter()
        .filter_map(|t| truth.get(t).map(|label| (t.clone(), label.is_uid())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_util::{ids, DetRng};
    use cc_web::words;

    /// A synthetic labeled corpus shaped like the study's token stream.
    fn corpus(n: usize, seed: u64) -> Vec<(String, bool)> {
        let mut rng = DetRng::new(seed);
        let mut out = Vec::new();
        for i in 0..n {
            match i % 4 {
                0 => out.push((ids::generate_uid(&mut rng), true)),
                1 => {
                    let n_words = rng.range(2, 4) as usize;
                    out.push((words::delimited_phrase(&mut rng, n_words), false))
                }
                2 => out.push((words::concatenated_words(&mut rng, 2), false)),
                _ => out.push((format!("16666{}", rng.range(10_000_000, 99_999_999)), false)),
            }
        }
        out
    }

    fn as_refs(c: &[(String, bool)]) -> Vec<(&str, bool)> {
        c.iter().map(|(s, b)| (s.as_str(), *b)).collect()
    }

    #[test]
    fn features_are_bounded() {
        for tok in [
            "",
            "f3a9c17e2b4d5a60",
            "sweet_magnolia_deal",
            "1666666666123",
            "a81f9c3e-4b2d-4c6a-9e1f-7d8b2a4c6e0f",
            "ÀÉÏÕÜ-unicode",
        ] {
            for (i, f) in features(tok).iter().enumerate() {
                assert!(
                    (0.0..=1.0).contains(f),
                    "feature {i} = {f} out of range for {tok:?}"
                );
            }
        }
    }

    #[test]
    fn learns_to_separate_uids_from_noise() {
        let train = corpus(400, 1);
        let test = corpus(200, 2);
        let model = TokenClassifier::train(&as_refs(&train), 1500, 1.0, 1e-5);
        let score = model.evaluate(&as_refs(&test));
        assert!(
            score.accuracy() > 0.9,
            "accuracy {:.2} too low: {score:?}",
            score.accuracy()
        );
        assert!(score.precision() > 0.85, "{score:?}");
        // Decimal-only UIDs genuinely overlap with long numeric noise, so
        // recall tops out lower than precision on this feature set.
        assert!(score.recall() > 0.75, "{score:?}");
    }

    #[test]
    fn paper_examples_classified() {
        let train = corpus(600, 3);
        let model = TokenClassifier::train(&as_refs(&train), 1500, 1.0, 1e-5);
        // The §3.7.2 false positives the manual stage had to remove.
        for noise in [
            "sweetmagnolias",
            "share_button_topic",
            "dental_internal_paper",
        ] {
            assert!(
                !model.is_uid(noise),
                "{noise} misclassified as UID (p={:.2})",
                model.probability(noise)
            );
        }
        for uid in ["f3a9c17e2b4d5a60deadbeef", "Zk9xB1aQpLmN3vXy8Q2w"] {
            assert!(
                model.is_uid(uid),
                "{uid} misclassified as noise (p={:.2})",
                model.probability(uid)
            );
        }
    }

    #[test]
    fn training_is_deterministic() {
        let train = corpus(100, 5);
        let a = TokenClassifier::train(&as_refs(&train), 50, 0.5, 1e-4);
        let b = TokenClassifier::train(&as_refs(&train), 50, 0.5, 1e-4);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_training_set_is_neutral() {
        let model = TokenClassifier::train(&[], 100, 0.5, 0.0);
        assert!((model.probability("anything") - 0.5).abs() < 1e-9);
    }

    #[test]
    fn score_edge_cases() {
        let s = MlScore::default();
        assert_eq!(s.accuracy(), 1.0);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
    }
}
