//! Programmatic token filters (§3.7.2).
//!
//! "We base our programmatic heuristics on those of prior studies. We
//! remove tokens that appear to be dates or timestamps, tokens that appear
//! to be URLs, and tokens that are less than eight characters long. We do
//! not impose any restrictions based on cookie expirations."

/// Minimum token length (characters) — shared with prior work (§8.1).
pub const MIN_TOKEN_LEN: usize = 8;

/// Whether a token looks like a Unix timestamp (seconds, millis, or
/// microseconds around the 2000s–2030s range) or a calendar date.
pub fn is_timestamp_or_date(s: &str) -> bool {
    if is_calendar_date(s) {
        return true;
    }
    if !s.chars().all(|c| c.is_ascii_digit()) {
        return false;
    }
    // Epoch seconds (10 digits, 2001–2286), millis (13), micros (16).
    match s.len() {
        9..=10 => s.parse::<u64>().map(|v| v >= 950_000_000).unwrap_or(false),
        12..=13 => true,
        15..=16 => true,
        _ => false,
    }
}

/// `YYYY-MM-DD`, `YYYY/MM/DD`, `YYYYMMDD`, and ISO-8601 datetime prefixes.
fn is_calendar_date(s: &str) -> bool {
    let bytes = s.as_bytes();
    let parse_ymd = |y: &str, m: &str, d: &str| -> bool {
        let (Ok(y), Ok(m), Ok(d)) = (y.parse::<u32>(), m.parse::<u32>(), d.parse::<u32>()) else {
            return false;
        };
        (1970..=2099).contains(&y) && (1..=12).contains(&m) && (1..=31).contains(&d)
    };
    // Delimited forms (possibly with a time suffix).
    for sep in ['-', '/'] {
        let parts: Vec<&str> = s.splitn(3, sep).collect();
        if parts.len() == 3 && parts[0].len() == 4 && parts[1].len() == 2 {
            let day = &parts[2][..parts[2].len().min(2)];
            if parse_ymd(parts[0], parts[1], day) {
                return true;
            }
        }
    }
    // Compact YYYYMMDD.
    if bytes.len() == 8 && s.chars().all(|c| c.is_ascii_digit()) {
        return parse_ymd(&s[0..4], &s[4..6], &s[6..8]);
    }
    false
}

/// Whether a token looks like a URL.
pub fn looks_like_url(s: &str) -> bool {
    s.starts_with("http://")
        || s.starts_with("https://")
        || s.starts_with("www.")
        || s.contains("://")
        || s.starts_with("%2F%2F")
        || s.starts_with("//")
}

/// Whether a token is too short to be a UID.
pub fn too_short(s: &str) -> bool {
    s.chars().count() < MIN_TOKEN_LEN
}

/// Run all programmatic filters; `None` = the token survives, `Some(why)` =
/// discarded.
pub fn programmatic_reject(s: &str) -> Option<&'static str> {
    if too_short(s) {
        Some("too-short")
    } else if is_timestamp_or_date(s) {
        Some("timestamp-or-date")
    } else if looks_like_url(s) {
        Some("url")
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_timestamps() {
        assert!(is_timestamp_or_date("1666666666")); // seconds, 2022
        assert!(is_timestamp_or_date("1666666666123")); // millis
        assert!(is_timestamp_or_date("1666666666123456")); // micros
        assert!(!is_timestamp_or_date("123456")); // too short
        assert!(!is_timestamp_or_date("100000000")); // 1973 sec? 9 digits but < floor
        assert!(!is_timestamp_or_date("12345678901234567890")); // too long
    }

    #[test]
    fn calendar_dates() {
        assert!(is_timestamp_or_date("2022-10-25"));
        assert!(is_timestamp_or_date("2022/10/25"));
        assert!(is_timestamp_or_date("20221025"));
        assert!(is_timestamp_or_date("2022-10-25T13:00:00"));
        assert!(!is_timestamp_or_date("9999-99-99"));
        assert!(!is_timestamp_or_date("20229999"));
        assert!(!is_timestamp_or_date("abcd-ef-gh"));
    }

    #[test]
    fn urls() {
        assert!(looks_like_url("https://www.shop.com/deal"));
        assert!(looks_like_url("http://x.com"));
        assert!(looks_like_url("www.example.com/page"));
        assert!(looks_like_url("custom://deep.link"));
        assert!(looks_like_url("//cdn.example.com/x.js"));
        assert!(!looks_like_url("deadbeef00112233"));
        assert!(!looks_like_url("not a url"));
    }

    #[test]
    fn length_filter() {
        assert!(too_short("abc123"));
        assert!(!too_short("abcd1234"));
        // Character count, not byte count.
        assert!(!too_short("éééééééé"));
    }

    #[test]
    fn combined_rejector() {
        assert_eq!(programmatic_reject("short"), Some("too-short"));
        assert_eq!(programmatic_reject("1666666666"), Some("timestamp-or-date"));
        assert_eq!(
            programmatic_reject("https://a.com/verylongpath"),
            Some("url")
        );
        assert_eq!(programmatic_reject("f3a9c17e2b4d5a60"), None);
        // Word-like strings survive the programmatic stage — that is the
        // paper's point: they require the manual stage.
        assert_eq!(programmatic_reject("sweet_magnolia_deal"), None);
    }
}
