//! The end-to-end CrumbCruncher pipeline.
//!
//! Crawl dataset → token observations → candidates → classification →
//! [`UidFinding`]s, the unit the §5 analyses consume.

use std::collections::BTreeMap;

use cc_crawler::{CrawlDataset, CrawlerName};
use serde::{Deserialize, Serialize};

use crate::candidates::{find_candidates, Candidate};
use crate::classify::{classify, ClassifyStats, ComboClass, TokenGroup, Verdict};
use crate::observe::{observe, PathView, TokenObs};

/// One confirmed case of UID smuggling.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UidFinding {
    /// Walk id.
    pub walk: u32,
    /// Step index.
    pub step: usize,
    /// The query-parameter name the UID traveled under.
    pub name: String,
    /// The UID value(s) observed, per crawler.
    pub values: BTreeMap<CrawlerName, std::collections::BTreeSet<String>>,
    /// Table-1 crawler-combination class.
    pub combo: ComboClass,
    /// Originator registered domain.
    pub origin: String,
    /// Destination registered domain.
    pub destination: Option<String>,
    /// Redirector registered domains in path order.
    pub redirectors: Vec<String>,
    /// Full domain path (origin, redirectors, destination).
    pub domain_path: Vec<String>,
    /// Full URL path (host+path of origin and every hop).
    pub url_path: Vec<String>,
    /// Whether the UID was present at the originator.
    pub at_origin: bool,
    /// Whether the UID reached the destination.
    pub at_destination: bool,
    /// Lifetime (days) of the cookie holding the UID, when stored.
    pub cookie_lifetime_days: Option<u64>,
}

impl UidFinding {
    /// The Figure-8 path portion this UID traversed.
    pub fn portion(&self) -> PathPortion {
        let has_redirectors = !self.redirectors.is_empty();
        match (self.at_origin, self.at_destination, has_redirectors) {
            (true, true, true) => PathPortion::OriginatorToRedirectorToDestination,
            (true, true, false) => PathPortion::OriginatorToDestination,
            (false, true, _) => PathPortion::RedirectorToDestination,
            (true, false, _) => PathPortion::OriginatorToRedirector,
            (false, false, _) => PathPortion::RedirectorToRedirector,
        }
    }
}

/// The five path portions of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PathPortion {
    /// Originator → redirector(s) → destination.
    OriginatorToRedirectorToDestination,
    /// Originator → destination (no redirectors).
    OriginatorToDestination,
    /// Redirector → destination.
    RedirectorToDestination,
    /// Originator → redirector.
    OriginatorToRedirector,
    /// Redirector → redirector.
    RedirectorToRedirector,
}

impl PathPortion {
    /// Figure-8 axis label.
    pub fn label(&self) -> &'static str {
        match self {
            PathPortion::OriginatorToRedirectorToDestination => {
                "Originator to Redirector to Destination"
            }
            PathPortion::OriginatorToDestination => "Originator to Destination",
            PathPortion::RedirectorToDestination => "Redirector to Destination",
            PathPortion::OriginatorToRedirector => "Originator to Redirector",
            PathPortion::RedirectorToRedirector => "Redirector to Redirector",
        }
    }
}

/// Everything the pipeline produces.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PipelineOutput {
    /// Confirmed UID-smuggling findings.
    pub findings: Vec<UidFinding>,
    /// Every classified token group (including discards), for audit.
    pub groups: Vec<TokenGroup>,
    /// Classification statistics.
    pub stats: ClassifyStats,
    /// Every navigation path observed (smuggling or not) — the
    /// denominators of §5.
    pub paths: Vec<PathView>,
    /// All candidates that entered classification.
    pub candidates: Vec<Candidate>,
}

/// Run the full pipeline over a crawl dataset.
pub fn run_pipeline(dataset: &CrawlDataset) -> PipelineOutput {
    let _pipeline_span = cc_telemetry::span("pipeline");
    let mut all_candidates: Vec<Candidate> = Vec::new();
    let mut all_nav_obs: Vec<TokenObs> = Vec::new();
    let mut all_paths: Vec<PathView> = Vec::new();

    {
        let _extract_span = cc_telemetry::span("pipeline.extract");
        for walk in &dataset.walks {
            for step in &walk.steps {
                for obs in &step.observations {
                    let (tokens, path) = observe(walk.walk_id, step.index, obs);
                    if let Some(path) = path {
                        all_candidates.extend(find_candidates(&tokens, &path));
                        all_paths.push(path);
                    }
                    all_nav_obs.extend(tokens.into_iter().filter(|t| t.source.is_nav_query()));
                }
            }
        }
    }
    cc_telemetry::counter("pipeline.candidates.found", all_candidates.len() as u64);
    cc_telemetry::counter("pipeline.paths.observed", all_paths.len() as u64);

    let (groups, stats) = {
        let _classify_span = cc_telemetry::span("pipeline.classify");
        classify(&all_candidates, &all_nav_obs)
    };

    // Index candidates by (walk, step, name) for finding assembly.
    let _assemble_span = cc_telemetry::span("pipeline.assemble");
    let mut cand_index: BTreeMap<(u32, usize, &str), Vec<&Candidate>> = BTreeMap::new();
    for c in &all_candidates {
        cand_index
            .entry((c.walk, c.step, c.name.as_str()))
            .or_default()
            .push(c);
    }
    // Index paths by (walk, step, crawler).
    let mut path_index: BTreeMap<(u32, usize, CrawlerName), &PathView> = BTreeMap::new();
    for p in &all_paths {
        path_index.insert((p.walk, p.step, p.crawler), p);
    }

    const PREFERENCE: [CrawlerName; 4] = [
        CrawlerName::Safari1,
        CrawlerName::Safari2,
        CrawlerName::Chrome3,
        CrawlerName::Safari1R,
    ];

    let mut findings = Vec::new();
    for g in &groups {
        if g.verdict != Verdict::Uid {
            continue;
        }
        let Some(cands) = cand_index.get(&(g.walk, g.step, g.name.as_str())) else {
            continue;
        };
        // Prefer the canonical crawler order when choosing the
        // representative observation.
        let representative = PREFERENCE
            .iter()
            .find_map(|c| cands.iter().find(|cd| cd.crawler == *c))
            .unwrap_or(&cands[0]);
        let Some(path) = path_index.get(&(g.walk, g.step, representative.crawler)) else {
            continue;
        };
        let lifetime = cands.iter().find_map(|c| c.cookie_lifetime_days);
        findings.push(UidFinding {
            walk: g.walk,
            step: g.step,
            name: g.name.clone(),
            values: g.values.clone(),
            combo: g.combo,
            origin: path.origin.registered_domain(),
            destination: path.destination(),
            redirectors: path.redirectors(),
            domain_path: path.domain_path(),
            url_path: path.url_path(),
            at_origin: representative.at_origin,
            at_destination: representative.at_destination,
            cookie_lifetime_days: lifetime,
        });
    }

    cc_telemetry::counter("pipeline.findings.confirmed", findings.len() as u64);
    PipelineOutput {
        findings,
        groups,
        stats,
        paths: all_paths,
        candidates: all_candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_crawler::{CrawlConfig, Walker};
    use cc_web::{generate, WebConfig};

    fn run_small() -> PipelineOutput {
        let web = generate(&WebConfig::small());
        let ds = Walker::new(
            &web,
            CrawlConfig {
                seed: 42,
                steps_per_walk: 6,
                max_walks: Some(50),
                connect_failure_rate: 0.0,
                ..CrawlConfig::default()
            },
        )
        .crawl();
        run_pipeline(&ds)
    }

    #[test]
    fn pipeline_finds_smuggling() {
        let out = run_small();
        assert!(!out.paths.is_empty(), "no navigation paths observed");
        assert!(!out.candidates.is_empty(), "no candidates detected");
        assert!(!out.findings.is_empty(), "no UID smuggling found");
        assert!(out.stats.uids as usize >= out.findings.len());
    }

    #[test]
    fn findings_have_consistent_paths() {
        let out = run_small();
        for f in &out.findings {
            assert_eq!(f.domain_path.first(), Some(&f.origin));
            if let Some(dest) = &f.destination {
                assert_eq!(f.domain_path.last(), Some(dest));
            }
            assert!(f.url_path.len() >= 2, "a path has at least origin+hop");
            for r in &f.redirectors {
                assert!(f.domain_path.contains(r));
            }
        }
    }

    #[test]
    fn portions_cover_expected_cases() {
        let out = run_small();
        let portions: std::collections::HashSet<_> =
            out.findings.iter().map(|f| f.portion()).collect();
        // A healthy crawl yields at least full-path and one partial kind.
        assert!(
            portions.contains(&PathPortion::OriginatorToRedirectorToDestination)
                || portions.contains(&PathPortion::OriginatorToDestination),
            "no full transfers at all: {portions:?}"
        );
    }

    #[test]
    fn noise_is_filtered() {
        let out = run_small();
        // No finding should carry an obvious timestamp/URL/word value.
        for f in &out.findings {
            for vs in f.values.values() {
                for v in vs {
                    assert!(
                        crate::heuristics::programmatic_reject(v).is_none(),
                        "finding carries rejected value {v}"
                    );
                    assert!(
                        crate::manual::manual_reject(v).is_none() || f.values.len() == 4,
                        "dynamic finding carries manual-rejected value {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn discard_reasons_observed() {
        let out = run_small();
        assert!(
            out.stats.same_across_users > 0,
            "word params / fp uids should be discarded"
        );
        // Rotating values (timestamps, session IDs) are discarded either
        // by the Safari-1R rule (when the trailing crawler saw the name)
        // or by the programmatic shape filters.
        assert!(
            out.stats.session_rotation + out.stats.programmatic > 0,
            "rotating noise should be discarded: {:?}",
            out.stats
        );
    }

    #[test]
    fn session_ids_caught_whenever_the_trailing_crawler_saw_them() {
        // An honest limitation shared with the paper: a session ID seen by
        // a *single* crawler is indistinguishable from a UID (rule 2 needs
        // Safari-1/1R coverage). What must never happen is a session ID
        // surviving when both Safari-1 and Safari-1R observed its name.
        let out = run_small();
        for f in &out.findings {
            // Rotating site session cookies never transfer via query.
            assert_ne!(f.name, "_sessid");
            if f.name == "sid" {
                let s1 = f.values.get(&CrawlerName::Safari1);
                let s1r = f.values.get(&CrawlerName::Safari1R);
                assert!(
                    s1.is_none() || s1r.is_none(),
                    "rotating sid survived despite S1/S1R coverage: {f:?}"
                );
            }
        }
    }

    #[test]
    fn deterministic_pipeline() {
        let a = run_small();
        let b = run_small();
        assert_eq!(a.findings.len(), b.findings.len());
        assert_eq!(a.stats, b.stats);
    }
}
