//! Prior-work baselines (§8.1) for the ablation experiments.
//!
//! * **Lifetime-based session filtering** — Englehardt et al., Koop et al.
//!   discarded cookies living under 90 days; Acar et al. under a month.
//!   CrumbCruncher instead compares Safari-1 against Safari-1R. §3.7.1:
//!   "16% of the UIDs we identify have a lifetime of less than 90 days,
//!   and 9% have a lifetime shorter than a month" — all of which the
//!   lifetime baselines would have thrown away.
//! * **Fuzzy value matching** — prior work used Ratcliff/Obershelp
//!   similarity, treating values differing by up to 33% (or 45%) as "the
//!   same"; CrumbCruncher requires exact equality.
//! * **Two-crawler methodology** — prior work compared exactly two
//!   simulated users, discarding any token seen by only one.

use cc_crawler::CrawlerName;
use cc_util::strings::ratcliff_obershelp;
use serde::{Deserialize, Serialize};

use crate::pipeline::UidFinding;

/// Result of applying a lifetime threshold to CrumbCruncher's findings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeAblation {
    /// UIDs with a known storage lifetime.
    pub with_lifetime: u64,
    /// Of those, how many the threshold would have discarded.
    pub discarded_by_threshold: u64,
    /// The threshold in days.
    pub threshold_days: u64,
}

impl LifetimeAblation {
    /// Fraction of lifetimed UIDs the baseline loses.
    pub fn missed_fraction(&self) -> f64 {
        if self.with_lifetime == 0 {
            0.0
        } else {
            self.discarded_by_threshold as f64 / self.with_lifetime as f64
        }
    }
}

/// How many of CrumbCruncher's UIDs a lifetime-threshold baseline would
/// have discarded as "session IDs".
pub fn lifetime_ablation(findings: &[UidFinding], threshold_days: u64) -> LifetimeAblation {
    let with: Vec<u64> = findings
        .iter()
        .filter_map(|f| f.cookie_lifetime_days)
        .collect();
    let discarded = with.iter().filter(|d| **d < threshold_days).count() as u64;
    LifetimeAblation {
        with_lifetime: with.len() as u64,
        discarded_by_threshold: discarded,
        threshold_days,
    }
}

/// Result of the fuzzy-matching ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuzzyAblation {
    /// Findings with values from at least two different users.
    pub comparable: u64,
    /// Findings a fuzzy matcher would have *discarded* because two
    /// different users' values exceeded the similarity threshold.
    pub wrongly_merged: u64,
    /// The similarity threshold used (e.g. 0.67 ⇒ "may differ by 33%").
    pub threshold: f64,
}

/// Apply prior work's fuzzy value matching: two users' values within the
/// similarity threshold are treated as "the same" (and the token is thus
/// discarded as not user-specific).
pub fn fuzzy_ablation(findings: &[UidFinding], threshold: f64) -> FuzzyAblation {
    let mut comparable = 0;
    let mut wrongly_merged = 0;
    for f in findings {
        let users: Vec<(&CrawlerName, &std::collections::BTreeSet<String>)> =
            f.values.iter().collect();
        let mut cross_pairs = Vec::new();
        for (i, (ca, va)) in users.iter().enumerate() {
            for (cb, vb) in users.iter().skip(i + 1) {
                if ca.user() != cb.user() {
                    cross_pairs.push((va, vb));
                }
            }
        }
        if cross_pairs.is_empty() {
            continue;
        }
        comparable += 1;
        let merged = cross_pairs.iter().any(|(va, vb)| {
            va.iter()
                .any(|a| vb.iter().any(|b| ratcliff_obershelp(a, b) >= threshold))
        });
        if merged {
            wrongly_merged += 1;
        }
    }
    FuzzyAblation {
        comparable,
        wrongly_merged,
        threshold,
    }
}

/// Result of the two-crawler-methodology ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoCrawlerAblation {
    /// CrumbCruncher's UID count (four crawlers).
    pub four_crawler_uids: u64,
    /// UIDs a two-crawler design (Safari-1 + Safari-2 only) retains: the
    /// token must be seen by both, with different values.
    pub two_crawler_uids: u64,
}

impl TwoCrawlerAblation {
    /// Fraction of UIDs the two-crawler design loses.
    pub fn missed_fraction(&self) -> f64 {
        if self.four_crawler_uids == 0 {
            0.0
        } else {
            1.0 - self.two_crawler_uids as f64 / self.four_crawler_uids as f64
        }
    }
}

/// Count how many of CrumbCruncher's findings a two-crawler methodology
/// would have kept.
pub fn two_crawler_ablation(findings: &[UidFinding]) -> TwoCrawlerAblation {
    let kept = findings
        .iter()
        .filter(|f| {
            let s1 = f.values.get(&CrawlerName::Safari1);
            let s2 = f.values.get(&CrawlerName::Safari2);
            match (s1, s2) {
                (Some(a), Some(b)) => a.intersection(b).next().is_none(),
                _ => false,
            }
        })
        .count() as u64;
    TwoCrawlerAblation {
        four_crawler_uids: findings.len() as u64,
        two_crawler_uids: kept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::ComboClass;
    use std::collections::{BTreeMap, BTreeSet};

    fn finding(values: &[(CrawlerName, &str)], lifetime: Option<u64>) -> UidFinding {
        let mut map: BTreeMap<CrawlerName, BTreeSet<String>> = BTreeMap::new();
        for (c, v) in values {
            map.entry(*c).or_default().insert((*v).to_string());
        }
        UidFinding {
            walk: 0,
            step: 0,
            name: "gclid".into(),
            values: map,
            combo: ComboClass::OneProfileOnly,
            origin: "a.com".into(),
            destination: Some("b.com".into()),
            redirectors: vec![],
            domain_path: vec!["a.com".into(), "b.com".into()],
            url_path: vec!["www.a.com/".into(), "www.b.com/".into()],
            at_origin: true,
            at_destination: true,
            cookie_lifetime_days: lifetime,
        }
    }

    #[test]
    fn lifetime_thresholds() {
        let findings = vec![
            finding(&[(CrawlerName::Safari1, "u1")], Some(14)),
            finding(&[(CrawlerName::Safari1, "u2")], Some(60)),
            finding(&[(CrawlerName::Safari1, "u3")], Some(365)),
            finding(&[(CrawlerName::Safari1, "u4")], None),
        ];
        let d90 = lifetime_ablation(&findings, 90);
        assert_eq!(d90.with_lifetime, 3);
        assert_eq!(d90.discarded_by_threshold, 2);
        assert!((d90.missed_fraction() - 2.0 / 3.0).abs() < 1e-12);
        let d30 = lifetime_ablation(&findings, 30);
        assert_eq!(d30.discarded_by_threshold, 1);
    }

    #[test]
    fn fuzzy_merges_similar_values() {
        // Two users with 90%-similar values: a 0.67 threshold merges them.
        let f = finding(
            &[
                (CrawlerName::Safari1, "aaaaaaaaaaaaaaaaaaaX"),
                (CrawlerName::Safari2, "aaaaaaaaaaaaaaaaaaaY"),
            ],
            None,
        );
        let out = fuzzy_ablation(&[f], 0.67);
        assert_eq!(out.comparable, 1);
        assert_eq!(out.wrongly_merged, 1);
    }

    #[test]
    fn fuzzy_keeps_dissimilar_values() {
        let f = finding(
            &[
                (CrawlerName::Safari1, "f3a9c17e2b4d5a60"),
                (CrawlerName::Chrome3, "0011223344556677"),
            ],
            None,
        );
        let out = fuzzy_ablation(&[f], 0.67);
        assert_eq!(out.comparable, 1);
        assert_eq!(out.wrongly_merged, 0);
    }

    #[test]
    fn fuzzy_ignores_single_user_findings() {
        let f = finding(&[(CrawlerName::Safari1, "solo-value-123")], None);
        let out = fuzzy_ablation(&[f], 0.67);
        assert_eq!(out.comparable, 0);
    }

    #[test]
    fn two_crawler_design_loses_singletons() {
        let findings = vec![
            // Seen by both S1 and S2 with different values: kept.
            finding(
                &[
                    (CrawlerName::Safari1, "uid-a-0001"),
                    (CrawlerName::Safari2, "uid-b-0002"),
                ],
                None,
            ),
            // Seen only by Chrome-3: lost.
            finding(&[(CrawlerName::Chrome3, "uid-c-0003")], None),
            // Seen only by S1: lost.
            finding(&[(CrawlerName::Safari1, "uid-d-0004")], None),
        ];
        let out = two_crawler_ablation(&findings);
        assert_eq!(out.four_crawler_uids, 3);
        assert_eq!(out.two_crawler_uids, 1);
        assert!((out.missed_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }
}
