//! Flattening crawl records into token observations.
//!
//! Every value CrumbCruncher recorded — cookies and localStorage on the
//! originator and destination pages, query parameters of every navigation
//! hop, and beacon-request parameters — is run through the recursive
//! extractor and tagged with the first-party context (registered domain) it
//! was observed in. The later stages reason entirely over these flat
//! observations.

use cc_crawler::{CrawlObservation, CrawlerName};
use cc_url::Url;
use serde::{Deserialize, Serialize};

use crate::extract::extract_tokens;

/// Where a token was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenSource {
    /// First-party cookie on the originator page.
    OriginCookie,
    /// localStorage on the originator page.
    OriginLocal,
    /// Query parameter of the originator page's own URL.
    OriginPageQuery,
    /// Query parameter of a navigation hop (index into the hop list).
    NavQuery {
        /// Hop index (0 = the clicked URL).
        hop: usize,
    },
    /// First-party cookie on the destination page.
    DestCookie,
    /// localStorage on the destination page.
    DestLocal,
    /// Query parameter of a beacon (subresource) request.
    Beacon,
}

impl TokenSource {
    /// Whether this source is a navigation query parameter — the only
    /// transfer mechanism the study counts (§3.6, §6).
    pub fn is_nav_query(&self) -> bool {
        matches!(self, TokenSource::NavQuery { .. })
    }
}

/// One observation of one token by one crawler during one step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenObs {
    /// Walk the observation belongs to.
    pub walk: u32,
    /// Step within the walk.
    pub step: usize,
    /// Observing crawler.
    pub crawler: CrawlerName,
    /// The name of the (innermost) name-value pair.
    pub name: String,
    /// The token value.
    pub value: String,
    /// Where it was seen.
    pub source: TokenSource,
    /// Registered domain of the first-party context it was seen in.
    pub context: String,
    /// Lifetime in days if the token came from a persistent cookie.
    pub cookie_lifetime_days: Option<u64>,
}

/// A step's navigation path as one crawler saw it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathView {
    /// Walk id.
    pub walk: u32,
    /// Step index.
    pub step: usize,
    /// Crawler.
    pub crawler: CrawlerName,
    /// Originator page URL.
    pub origin: Url,
    /// All navigation hop URLs (clicked URL … final destination).
    pub hops: Vec<Url>,
}

impl PathView {
    /// Registered-domain path: originator, redirectors, destination —
    /// the "domain path" unit of §5.
    pub fn domain_path(&self) -> Vec<String> {
        let mut path = vec![self.origin.registered_domain()];
        for hop in &self.hops {
            let d = hop.registered_domain();
            if path.last() != Some(&d) {
                path.push(d);
            }
        }
        path
    }

    /// The "URL path" unit of §5: host+path of origin and every hop.
    pub fn url_path(&self) -> Vec<String> {
        let mut path = vec![self.origin.host_and_path()];
        path.extend(self.hops.iter().map(|h| h.host_and_path()));
        path
    }

    /// Redirector registered domains (every hop except the final one,
    /// deduplicated against origin/destination).
    pub fn redirectors(&self) -> Vec<String> {
        if self.hops.is_empty() {
            return Vec::new();
        }
        let dest = self.hops[self.hops.len() - 1].registered_domain();
        let origin = self.origin.registered_domain();
        self.hops[..self.hops.len() - 1]
            .iter()
            .map(|h| h.registered_domain())
            .filter(|d| *d != dest && *d != origin)
            .collect()
    }

    /// Destination registered domain.
    pub fn destination(&self) -> Option<String> {
        self.hops.last().map(|h| h.registered_domain())
    }
}

/// Extract every token observation and path view from one crawl
/// observation.
pub fn observe(
    walk: u32,
    step: usize,
    obs: &CrawlObservation,
) -> (Vec<TokenObs>, Option<PathView>) {
    let mut out = Vec::new();
    let origin_domain = obs.page_url.registered_domain();

    // Originator page: cookies, localStorage, page URL query.
    for (name, value, lifetime) in &obs.page_snapshot.cookies {
        emit(
            &mut out,
            walk,
            step,
            obs.crawler,
            name,
            value,
            TokenSource::OriginCookie,
            &origin_domain,
            *lifetime,
        );
    }
    for (name, value) in &obs.page_snapshot.local {
        emit(
            &mut out,
            walk,
            step,
            obs.crawler,
            name,
            value,
            TokenSource::OriginLocal,
            &origin_domain,
            None,
        );
    }
    for (name, value) in obs.page_url.query() {
        emit(
            &mut out,
            walk,
            step,
            obs.crawler,
            name,
            value,
            TokenSource::OriginPageQuery,
            &origin_domain,
            None,
        );
    }

    // Navigation hops.
    for (hop, url) in obs.nav_hops.iter().enumerate() {
        let ctx = url.registered_domain();
        for (name, value) in url.query() {
            emit(
                &mut out,
                walk,
                step,
                obs.crawler,
                name,
                value,
                TokenSource::NavQuery { hop },
                &ctx,
                None,
            );
        }
    }

    // Destination storage.
    if let (Some(final_url), Some(snap)) = (&obs.final_url, &obs.dest_snapshot) {
        let dest_domain = final_url.registered_domain();
        for (name, value, lifetime) in &snap.cookies {
            emit(
                &mut out,
                walk,
                step,
                obs.crawler,
                name,
                value,
                TokenSource::DestCookie,
                &dest_domain,
                *lifetime,
            );
        }
        for (name, value) in &snap.local {
            emit(
                &mut out,
                walk,
                step,
                obs.crawler,
                name,
                value,
                TokenSource::DestLocal,
                &dest_domain,
                None,
            );
        }
    }

    // Beacons (third-party requests) — tagged with the page they fired
    // from.
    for (top_site, url) in &obs.beacons {
        for (name, value) in url.query() {
            emit(
                &mut out,
                walk,
                step,
                obs.crawler,
                name,
                value,
                TokenSource::Beacon,
                top_site,
                None,
            );
        }
    }

    let path = (!obs.nav_hops.is_empty()).then(|| PathView {
        walk,
        step,
        crawler: obs.crawler,
        origin: obs.page_url.clone(),
        hops: obs.nav_hops.clone(),
    });
    (out, path)
}

#[allow(clippy::too_many_arguments)]
fn emit(
    out: &mut Vec<TokenObs>,
    walk: u32,
    step: usize,
    crawler: CrawlerName,
    name: &str,
    value: &str,
    source: TokenSource,
    context: &str,
    cookie_lifetime_days: Option<u64>,
) {
    for e in extract_tokens(name, value) {
        out.push(TokenObs {
            walk,
            step,
            crawler,
            name: e.name,
            value: e.value,
            source,
            context: context.to_string(),
            cookie_lifetime_days,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_browser::StorageSnapshot;
    use cc_crawler::ClickedElement;
    use cc_web::ElementKind;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn sample_obs() -> CrawlObservation {
        CrawlObservation {
            crawler: CrawlerName::Safari1,
            page_url: url("https://www.news.com/?edition=en-US"),
            page_snapshot: StorageSnapshot {
                cookies: vec![(
                    "_tracker_uid".into(),
                    "aabbccddeeff0011".into(),
                    Some(365),
                )],
                local: vec![("_ls_uid".into(), "local-uid-00112233".into())],
            },
            clicked: Some(ClickedElement {
                kind: ElementKind::Iframe,
                xpath: "/x".into(),
            }),
            nav_hops: vec![
                url("https://r.trk.net/click?gclid=aabbccddeeff0011&cc_dest=https%3A%2F%2Fwww.shop.com%2F"),
                url("https://www.shop.com/?gclid=aabbccddeeff0011"),
            ],
            final_url: Some(url("https://www.shop.com/?gclid=aabbccddeeff0011")),
            dest_snapshot: Some(StorageSnapshot {
                cookies: vec![("_trk_rcv".into(), "gclid=aabbccddeeff0011".into(), Some(365))],
                local: vec![],
            }),
            beacons: vec![(
                "shop.com".into(),
                url("https://px.metrics.io/b?cid=beacon-uid-1&u=https%3A%2F%2Fwww.shop.com%2F%3Fgclid%3Daabbccddeeff0011"),
            )],
        }
    }

    #[test]
    fn observe_emits_all_sources() {
        let (tokens, path) = observe(3, 1, &sample_obs());
        let sources: std::collections::HashSet<_> = tokens.iter().map(|t| t.source).collect();
        assert!(sources.contains(&TokenSource::OriginCookie));
        assert!(sources.contains(&TokenSource::OriginLocal));
        assert!(sources.contains(&TokenSource::OriginPageQuery));
        assert!(sources.contains(&TokenSource::NavQuery { hop: 0 }));
        assert!(sources.contains(&TokenSource::NavQuery { hop: 1 }));
        assert!(sources.contains(&TokenSource::DestCookie));
        assert!(sources.contains(&TokenSource::Beacon));
        assert!(path.is_some());
    }

    #[test]
    fn uid_token_appears_in_three_contexts() {
        let (tokens, _) = observe(0, 0, &sample_obs());
        let contexts: std::collections::HashSet<_> = tokens
            .iter()
            .filter(|t| t.value == "aabbccddeeff0011")
            .map(|t| t.context.as_str())
            .collect();
        // Origin cookie (news.com), both hops (trk.net, shop.com), dest
        // cookie blob (shop.com), and the beacon's full-URL leak.
        assert!(contexts.contains("news.com"));
        assert!(contexts.contains("trk.net"));
        assert!(contexts.contains("shop.com"));
    }

    #[test]
    fn nested_cookie_blob_is_unwrapped() {
        let (tokens, _) = observe(0, 0, &sample_obs());
        let from_blob: Vec<_> = tokens
            .iter()
            .filter(|t| t.source == TokenSource::DestCookie && t.value == "aabbccddeeff0011")
            .collect();
        assert_eq!(from_blob.len(), 1);
        assert_eq!(from_blob[0].name, "gclid");
    }

    #[test]
    fn cookie_lifetime_propagates() {
        let (tokens, _) = observe(0, 0, &sample_obs());
        let t = tokens
            .iter()
            .find(|t| t.source == TokenSource::OriginCookie)
            .unwrap();
        assert_eq!(t.cookie_lifetime_days, Some(365));
    }

    #[test]
    fn path_views() {
        let (_, path) = observe(0, 2, &sample_obs());
        let p = path.unwrap();
        assert_eq!(p.domain_path(), vec!["news.com", "trk.net", "shop.com"]);
        assert_eq!(p.redirectors(), vec!["trk.net"]);
        assert_eq!(p.destination(), Some("shop.com".into()));
        assert_eq!(
            p.url_path(),
            vec!["www.news.com/", "r.trk.net/click", "www.shop.com/"]
        );
    }

    #[test]
    fn no_click_no_path() {
        let mut obs = sample_obs();
        obs.nav_hops.clear();
        obs.final_url = None;
        obs.dest_snapshot = None;
        let (tokens, path) = observe(0, 0, &obs);
        assert!(path.is_none());
        assert!(tokens.iter().all(|t| !t.source.is_nav_query()));
    }

    #[test]
    fn consecutive_same_domain_hops_collapse_in_domain_path() {
        let mut obs = sample_obs();
        obs.nav_hops = vec![
            url("https://a.trk.net/click?cc_dest=x"),
            url("https://b.trk.net/r"),
            url("https://www.shop.com/"),
        ];
        let (_, path) = observe(0, 0, &obs);
        assert_eq!(
            path.unwrap().domain_path(),
            vec!["news.com", "trk.net", "shop.com"]
        );
    }
}
