//! # cc-core
//!
//! The CrumbCruncher analysis pipeline — the paper's primary contribution.
//!
//! Stages, in the paper's order:
//!
//! 1. [`extract`] — recursive token extraction from cookie, localStorage,
//!    and query-parameter values (JSON and URL-encoded payloads are
//!    unwrapped, §3.6);
//! 2. [`observe`] — flatten a crawl dataset into per-crawler token
//!    observations, each tied to the first-party context (registered
//!    domain) it was seen in;
//! 3. [`candidates`] — detect *potential UID smuggling*: tokens passed
//!    across at least one first-party context as a navigation query
//!    parameter (§3.6);
//! 4. [`classify`] — identify true UIDs: the static four-crawler rules and
//!    the dynamic rules of §3.7, the programmatic heuristics
//!    ([`heuristics`]), and the manual-analyst model ([`manual`]);
//! 5. [`pipeline`] — the end-to-end driver producing [`pipeline::PipelineOutput`];
//! 6. [`baselines`] — prior-work methodologies (lifetime-based session
//!    filtering, Ratcliff/Obershelp fuzzy matching, two-crawler designs)
//!    for the ablation benches;
//! 7. [`truth_eval`] — precision/recall against the simulator's ground
//!    truth (an evaluation the paper could not run on the live web);
//! 8. [`ml`] — the learned token classifier the paper names as future
//!    work (§7.2), trainable from the ground-truth ledger.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod candidates;
pub mod classify;
pub mod extract;
pub mod heuristics;
pub mod manual;
pub mod ml;
pub mod observe;
pub mod pipeline;
pub mod truth_eval;

pub use classify::{ComboClass, DiscardReason, Verdict};
pub use pipeline::{run_pipeline, PipelineOutput, UidFinding};
