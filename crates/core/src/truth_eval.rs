//! Scoring the pipeline against the simulator's ground truth.
//!
//! The paper validated by hand; a simulated web lets us do better: every
//! minted value carries a [`cc_web::script::TokenTruth`] label, so we can
//! compute precision/recall for the classifier — and separately account
//! for the fingerprint-derived UIDs the methodology is *expected* to miss
//! (§3.5).

use cc_web::script::{TokenTruth, TruthLog};
use serde::{Deserialize, Serialize};

use crate::classify::{TokenGroup, Verdict};

/// Precision/recall scorecard for a pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TruthScore {
    /// Groups labeled UID whose values are genuine UIDs.
    pub true_positives: u64,
    /// Groups labeled UID whose values are not UIDs.
    pub false_positives: u64,
    /// Groups discarded whose values were genuine (non-fingerprint) UIDs.
    pub false_negatives: u64,
    /// Discarded groups whose values were fingerprint-derived UIDs — the
    /// misses the methodology knowingly accepts (§3.5).
    pub fingerprint_misses: u64,
    /// Groups whose values had no ground-truth label (extraction artifacts).
    pub unlabeled: u64,
}

impl TruthScore {
    /// Precision over labeled verdicts.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall over genuine non-fingerprint UIDs that formed candidates.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }
}

/// Evaluate classified groups against the truth ledger, **per tracker**.
///
/// Only groups whose truth label is `Uid { tracker: Some(id) }` attribute
/// to a tracker — which is exactly what the species-evasion matrix needs:
/// every species UID carries its minting tracker, so per-species
/// precision/recall falls out of grouping these scorecards by
/// `TrackerKind`. Site-owned UIDs (`tracker: None`), non-UID labels, and
/// unlabeled groups have no tracker to charge and are skipped; false
/// positives against a *specific* tracker cannot be attributed from the
/// ledger alone (the ledger knows what a value is, not who the classifier
/// blamed), so callers combine this with the aggregate [`score`].
pub fn score_by_tracker(
    groups: &[TokenGroup],
    truth: &TruthLog,
) -> std::collections::BTreeMap<cc_web::TrackerId, TruthScore> {
    let mut by_tracker: std::collections::BTreeMap<cc_web::TrackerId, TruthScore> =
        std::collections::BTreeMap::new();
    for g in groups {
        let label = g.values.values().flatten().find_map(|v| truth.get(v));
        let Some(TokenTruth::Uid {
            tracker: Some(tid),
            fingerprint_based,
        }) = label
        else {
            continue;
        };
        let s = by_tracker.entry(tid).or_default();
        match g.verdict {
            Verdict::Uid => s.true_positives += 1,
            Verdict::Discarded(_) if fingerprint_based => s.fingerprint_misses += 1,
            Verdict::Discarded(_) => s.false_negatives += 1,
        }
    }
    by_tracker
}

/// Evaluate classified groups against the truth ledger.
pub fn score(groups: &[TokenGroup], truth: &TruthLog) -> TruthScore {
    let mut s = TruthScore::default();
    for g in groups {
        // A group's truth: the label of any of its values (they share a
        // mint site).
        let label = g.values.values().flatten().find_map(|v| truth.get(v));
        let Some(label) = label else {
            s.unlabeled += 1;
            continue;
        };
        let is_uid_truth = label.is_uid();
        let fingerprint = matches!(
            label,
            TokenTruth::Uid {
                fingerprint_based: true,
                ..
            }
        );
        match (g.verdict, is_uid_truth) {
            (Verdict::Uid, true) => s.true_positives += 1,
            (Verdict::Uid, false) => s.false_positives += 1,
            (Verdict::Discarded(_), true) if fingerprint => s.fingerprint_misses += 1,
            (Verdict::Discarded(_), true) => s.false_negatives += 1,
            (Verdict::Discarded(_), false) => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{ComboClass, DiscardReason};
    use cc_crawler::CrawlerName;
    use cc_web::TrackerId;
    use std::collections::{BTreeMap, BTreeSet};

    fn group(value: &str, verdict: Verdict) -> TokenGroup {
        let mut values: BTreeMap<CrawlerName, BTreeSet<String>> = BTreeMap::new();
        values
            .entry(CrawlerName::Safari1)
            .or_default()
            .insert(value.to_string());
        TokenGroup {
            walk: 0,
            step: 0,
            name: "x".into(),
            values,
            verdict,
            combo: ComboClass::OneProfileOnly,
            entered_manual: false,
        }
    }

    #[test]
    fn scoring_matrix() {
        let mut truth = TruthLog::new();
        truth.note(
            "real-uid-1",
            TokenTruth::Uid {
                tracker: Some(TrackerId(1)),
                fingerprint_based: false,
            },
        );
        truth.note(
            "fp-uid-2",
            TokenTruth::Uid {
                tracker: Some(TrackerId(2)),
                fingerprint_based: true,
            },
        );
        truth.note("session-3", TokenTruth::SessionId);
        truth.note("word-4", TokenTruth::WordLike);

        let groups = vec![
            group("real-uid-1", Verdict::Uid), // TP
            group("session-3", Verdict::Uid),  // FP
            group(
                "fp-uid-2",
                Verdict::Discarded(DiscardReason::SameAcrossUsers),
            ), // fingerprint miss
            group("word-4", Verdict::Discarded(DiscardReason::Manual)), // TN
            group("never-minted", Verdict::Uid), // unlabeled
        ];
        let s = score(&groups, &truth);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.false_negatives, 0);
        assert_eq!(s.fingerprint_misses, 1);
        assert_eq!(s.unlabeled, 1);
        assert!((s.precision() - 0.5).abs() < 1e-12);
        assert!((s.recall() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_score_is_perfect() {
        let s = TruthScore::default();
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
    }

    #[test]
    fn per_tracker_attribution() {
        let mut truth = TruthLog::new();
        truth.note(
            "t1-uid-a",
            TokenTruth::Uid {
                tracker: Some(TrackerId(1)),
                fingerprint_based: false,
            },
        );
        truth.note(
            "t1-uid-b",
            TokenTruth::Uid {
                tracker: Some(TrackerId(1)),
                fingerprint_based: false,
            },
        );
        truth.note(
            "t2-fp-uid",
            TokenTruth::Uid {
                tracker: Some(TrackerId(2)),
                fingerprint_based: true,
            },
        );
        truth.note(
            "site-uid",
            TokenTruth::Uid {
                tracker: None,
                fingerprint_based: false,
            },
        );
        truth.note("session", TokenTruth::SessionId);

        let groups = vec![
            group("t1-uid-a", Verdict::Uid),
            group(
                "t1-uid-b",
                Verdict::Discarded(DiscardReason::SameAcrossUsers),
            ),
            group("t2-fp-uid", Verdict::Discarded(DiscardReason::Manual)),
            group("site-uid", Verdict::Uid),    // no tracker → skipped
            group("session", Verdict::Uid),     // non-UID truth → skipped
            group("never-minted", Verdict::Uid), // unlabeled → skipped
        ];
        let by = score_by_tracker(&groups, &truth);
        assert_eq!(by.len(), 2);
        let t1 = by[&TrackerId(1)];
        assert_eq!(t1.true_positives, 1);
        assert_eq!(t1.false_negatives, 1);
        assert!((t1.recall() - 0.5).abs() < 1e-12);
        let t2 = by[&TrackerId(2)];
        assert_eq!(t2.fingerprint_misses, 1);
        assert_eq!(t2.true_positives, 0);
    }
}
