//! Recursive token extraction (§3.6).
//!
//! "We extract potential UID tokens from cookies, local storage, and query
//! parameters by recursively attempting to parse the value of each
//! name-value pair as JSON or URL-encoded values. For example, if a query
//! parameter contains a JSON string that itself contains several
//! URL-encoded tokens, we extract each URL-encoded token individually."
//!
//! Names of name-value pairs are *not* mined for tokens (footnote 5: prior
//! work found UIDs-in-names vanishingly rare), but they are preserved
//! alongside each extracted leaf because the dynamic classification rules
//! of §3.7.2 compare tokens *by name* across crawlers.

use cc_url::percent::{decode_component, looks_encoded};

/// Recursion budget: protects against adversarial nesting.
const MAX_DEPTH: usize = 8;

/// One extracted leaf token: the innermost name associated with it plus the
/// leaf value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Extracted {
    /// The name of the innermost name-value pair this leaf came from.
    pub name: String,
    /// The leaf token value.
    pub value: String,
}

/// Extract all leaf tokens from one name-value pair.
pub fn extract_tokens(name: &str, value: &str) -> Vec<Extracted> {
    let mut out = Vec::new();
    walk(name, value, 0, &mut out);
    out
}

fn push(out: &mut Vec<Extracted>, name: &str, value: &str) {
    if value.is_empty() {
        return;
    }
    let e = Extracted {
        name: name.to_string(),
        value: value.to_string(),
    };
    if !out.contains(&e) {
        out.push(e);
    }
}

fn walk(name: &str, value: &str, depth: usize, out: &mut Vec<Extracted>) {
    if depth >= MAX_DEPTH || value.is_empty() {
        push(out, name, value);
        return;
    }

    // A URL value surfaces whole (the URL heuristic will discard it) and
    // additionally contributes its own query-parameter tokens.
    if value.starts_with("http://") || value.starts_with("https://") {
        push(out, name, value);
        if let Ok(u) = cc_url::Url::parse(value) {
            for (k, v) in u.query() {
                walk(k, v, depth + 1, out);
            }
        }
        return;
    }

    // JSON object/array?
    let trimmed = value.trim();
    if trimmed.starts_with('{') || trimmed.starts_with('[') {
        if let Ok(json) = serde_json::from_str::<serde_json::Value>(trimmed) {
            walk_json(name, &json, depth + 1, out);
            return;
        }
    }

    // URL-encoded k=v(&k=v)* payload? Require at least one '=' to avoid
    // shredding ordinary values containing '&'.
    if value.contains('=') && is_query_ish(value) {
        for (k, v) in cc_url::parse_query(value) {
            if v.is_empty() {
                // A bare token segment; treat the key as a value under the
                // outer name (e.g. flag-style params).
                walk(name, &k, depth + 1, out);
            } else {
                walk(&k, &v, depth + 1, out);
            }
        }
        return;
    }

    // Percent-encoded payload that decodes to something richer?
    if looks_encoded(value) {
        let decoded = decode_component(value);
        if decoded != value {
            walk(name, &decoded, depth + 1, out);
            return;
        }
    }

    push(out, name, value);
}

/// Heuristic: does this look like a query string rather than a value that
/// merely contains '='? Every '&'-separated segment must look like k=v (or
/// be empty).
fn is_query_ish(value: &str) -> bool {
    value.split('&').all(|seg| {
        seg.is_empty()
            || seg
                .split_once('=')
                .map(|(k, _)| !k.is_empty() && !k.contains(' '))
                .unwrap_or(false)
            || !seg.contains('=') && !seg.contains(' ')
    })
}

fn walk_json(name: &str, json: &serde_json::Value, depth: usize, out: &mut Vec<Extracted>) {
    match json {
        serde_json::Value::String(s) => walk(name, s, depth, out),
        serde_json::Value::Number(n) => push(out, name, &n.to_string()),
        serde_json::Value::Bool(_) | serde_json::Value::Null => {}
        serde_json::Value::Array(items) => {
            for item in items {
                walk_json(name, item, depth, out);
            }
        }
        serde_json::Value::Object(map) => {
            for (k, v) in map {
                walk_json(k, v, depth, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(out: &[Extracted]) -> Vec<&str> {
        out.iter().map(|e| e.value.as_str()).collect()
    }

    #[test]
    fn plain_value_passes_through() {
        let out = extract_tokens("uid", "f3a9c17e2b4d5a60");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name, "uid");
        assert_eq!(out[0].value, "f3a9c17e2b4d5a60");
    }

    #[test]
    fn empty_value_yields_nothing() {
        assert!(extract_tokens("k", "").is_empty());
    }

    #[test]
    fn json_object_leaves() {
        let out = extract_tokens("payload", r#"{"uid":"abc123","n":42,"ok":true}"#);
        let vals = values(&out);
        assert!(vals.contains(&"abc123"));
        assert!(vals.contains(&"42"));
        assert_eq!(
            out.iter().find(|e| e.value == "abc123").unwrap().name,
            "uid"
        );
        // Booleans and nulls are not tokens.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn json_array_and_nested() {
        let out = extract_tokens(
            "d",
            r#"{"ids":["a1b2c3d4","e5f6g7h8"],"meta":{"sid":"zz99"}}"#,
        );
        let vals = values(&out);
        assert!(vals.contains(&"a1b2c3d4"));
        assert!(vals.contains(&"e5f6g7h8"));
        assert!(vals.contains(&"zz99"));
        assert_eq!(out.iter().find(|e| e.value == "zz99").unwrap().name, "sid");
    }

    #[test]
    fn url_encoded_payload_is_unwrapped() {
        // The redirector's serialized cookie blob from cc-web.
        let out = extract_tokens("_rcv", "gclid=abcdef123456&ts=1666&topic=sweet_magnolia");
        let vals = values(&out);
        assert!(vals.contains(&"abcdef123456"));
        assert!(vals.contains(&"1666"));
        assert!(vals.contains(&"sweet_magnolia"));
        assert_eq!(
            out.iter().find(|e| e.value == "abcdef123456").unwrap().name,
            "gclid"
        );
    }

    #[test]
    fn paper_example_json_containing_urlencoded() {
        // "a query parameter contains a JSON string that itself contains
        // several URL-encoded tokens" (§3.6).
        let json = r#"{"blob":"uid%3Ddeadbeef0011%26lang%3Den-US"}"#;
        // After JSON, the string percent-decodes to "uid=deadbeef0011&lang=en-US".
        let out = extract_tokens("data", json);
        let vals = values(&out);
        assert!(vals.contains(&"deadbeef0011"), "{vals:?}");
        assert!(vals.contains(&"en-US"), "{vals:?}");
    }

    #[test]
    fn url_value_not_shredded() {
        // A URL in a param should surface as one token (to be discarded by
        // the URL heuristic), plus its own inner query tokens.
        let out = extract_tokens("cc_dest", "https://www.shop.com/deal");
        assert_eq!(values(&out), vec!["https://www.shop.com/deal"]);
    }

    #[test]
    fn malformed_json_degrades_gracefully() {
        let out = extract_tokens("j", "{not json at all");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, "{not json at all");
    }

    #[test]
    fn deep_nesting_terminates() {
        // 20 levels of percent-encoding still terminates (depth cap).
        let mut v = "x=core0".to_string();
        for _ in 0..20 {
            v = format!("w={}", cc_url::percent::encode_component(&v));
        }
        let out = extract_tokens("outer", &v);
        assert!(!out.is_empty());
    }

    #[test]
    fn duplicate_leaves_deduped_by_name_and_value() {
        // Identical (name, value) pairs collapse; the same value under two
        // names is two observations (the dynamic rules compare by name).
        let out = extract_tokens("d", r#"{"a":"same1234","b":"same1234","a":"same1234"}"#);
        assert_eq!(out.len(), 2);
        let out2 = extract_tokens("d", "a=same1234&a=same1234");
        assert_eq!(out2.len(), 1);
    }

    #[test]
    fn value_with_ampersand_but_not_query() {
        let out = extract_tokens("title", "fish & chips");
        assert_eq!(values(&out), vec!["fish & chips"]);
    }
}
