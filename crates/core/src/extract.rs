//! Recursive token extraction (§3.6).
//!
//! "We extract potential UID tokens from cookies, local storage, and query
//! parameters by recursively attempting to parse the value of each
//! name-value pair as JSON or URL-encoded values. For example, if a query
//! parameter contains a JSON string that itself contains several
//! URL-encoded tokens, we extract each URL-encoded token individually."
//!
//! Names of name-value pairs are *not* mined for tokens (footnote 5: prior
//! work found UIDs-in-names vanishingly rare), but they are preserved
//! alongside each extracted leaf because the dynamic classification rules
//! of §3.7.2 compare tokens *by name* across crawlers.

use cc_url::percent::{decode_component, looks_encoded};
use std::borrow::Cow;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Recursion budget: protects against adversarial nesting.
const MAX_DEPTH: usize = 8;

/// One extracted leaf token: the innermost name associated with it plus the
/// leaf value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Extracted {
    /// The name of the innermost name-value pair this leaf came from.
    pub name: String,
    /// The leaf token value.
    pub value: String,
}

/// Extract all leaf tokens from one name-value pair.
pub fn extract_tokens(name: &str, value: &str) -> Vec<Extracted> {
    let mut sink = Sink::default();
    walk(name, value, 0, &mut sink);
    sink.out
}

/// Order-preserving deduplicating collector.
///
/// Leaves are kept in first-seen order, with membership answered by a hash
/// index into the output vector instead of the former O(n²) `Vec::contains`
/// scan. The index stores positions rather than copies, so each surviving
/// leaf is allocated exactly once; hash collisions fall back to a content
/// compare against the indexed entries.
#[derive(Default)]
struct Sink {
    out: Vec<Extracted>,
    index: HashMap<u64, Vec<u32>>,
}

impl Sink {
    fn push(&mut self, name: &str, value: &str) {
        if value.is_empty() {
            return;
        }
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        value.hash(&mut h);
        let slots = self.index.entry(h.finish()).or_default();
        if slots.iter().any(|&i| {
            let e = &self.out[i as usize];
            e.name == name && e.value == value
        }) {
            return;
        }
        slots.push(self.out.len() as u32);
        self.out.push(Extracted {
            name: name.to_string(),
            value: value.to_string(),
        });
    }
}

/// Decode a query component, borrowing when decoding is a no-op.
///
/// `decode_component` only rewrites `%XX` escapes and `+`; anything without
/// those bytes decodes to itself, which covers the overwhelming majority of
/// real segments — no allocation there.
fn decode_cow(s: &str) -> Cow<'_, str> {
    if s.bytes().any(|b| b == b'%' || b == b'+') {
        Cow::Owned(decode_component(s))
    } else {
        Cow::Borrowed(s)
    }
}

fn walk(name: &str, value: &str, depth: usize, sink: &mut Sink) {
    if depth >= MAX_DEPTH || value.is_empty() {
        sink.push(name, value);
        return;
    }

    // A URL value surfaces whole (the URL heuristic will discard it) and
    // additionally contributes its own query-parameter tokens.
    if value.starts_with("http://") || value.starts_with("https://") {
        sink.push(name, value);
        if let Ok(u) = cc_url::Url::parse(value) {
            for (k, v) in u.query() {
                walk(k, v, depth + 1, sink);
            }
        }
        return;
    }

    // JSON object/array?
    let trimmed = value.trim();
    if trimmed.starts_with('{') || trimmed.starts_with('[') {
        if let Ok(json) = serde_json::from_str::<serde_json::Value>(trimmed) {
            walk_json(name, &json, depth + 1, sink);
            return;
        }
    }

    // URL-encoded k=v(&k=v)* payload? Require at least one '=' to avoid
    // shredding ordinary values containing '&'. Segments are split and
    // decoded lazily so unencoded keys/values recurse as borrows of the
    // input rather than fresh allocations.
    if value.contains('=') && is_query_ish(value) {
        for piece in value.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = match piece.split_once('=') {
                Some((k, v)) => (decode_cow(k), decode_cow(v)),
                None => (decode_cow(piece), Cow::Borrowed("")),
            };
            if v.is_empty() {
                // A bare token segment; treat the key as a value under the
                // outer name (e.g. flag-style params).
                walk(name, &k, depth + 1, sink);
            } else {
                walk(&k, &v, depth + 1, sink);
            }
        }
        return;
    }

    // Percent-encoded payload that decodes to something richer?
    if looks_encoded(value) {
        let decoded = decode_component(value);
        if decoded != value {
            walk(name, &decoded, depth + 1, sink);
            return;
        }
    }

    sink.push(name, value);
}

/// Heuristic: does this look like a query string rather than a value that
/// merely contains '='? Every '&'-separated segment must look like k=v (or
/// be empty).
fn is_query_ish(value: &str) -> bool {
    value.split('&').all(|seg| {
        seg.is_empty()
            || seg
                .split_once('=')
                .map(|(k, _)| !k.is_empty() && !k.contains(' '))
                .unwrap_or(false)
            || !seg.contains('=') && !seg.contains(' ')
    })
}

fn walk_json(name: &str, json: &serde_json::Value, depth: usize, sink: &mut Sink) {
    match json {
        serde_json::Value::String(s) => walk(name, s, depth, sink),
        serde_json::Value::Number(n) => sink.push(name, &n.to_string()),
        serde_json::Value::Bool(_) | serde_json::Value::Null => {}
        serde_json::Value::Array(items) => {
            for item in items {
                walk_json(name, item, depth, sink);
            }
        }
        serde_json::Value::Object(map) => {
            for (k, v) in map {
                walk_json(k, v, depth, sink);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(out: &[Extracted]) -> Vec<&str> {
        out.iter().map(|e| e.value.as_str()).collect()
    }

    #[test]
    fn plain_value_passes_through() {
        let out = extract_tokens("uid", "f3a9c17e2b4d5a60");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name, "uid");
        assert_eq!(out[0].value, "f3a9c17e2b4d5a60");
    }

    #[test]
    fn empty_value_yields_nothing() {
        assert!(extract_tokens("k", "").is_empty());
    }

    #[test]
    fn json_object_leaves() {
        let out = extract_tokens("payload", r#"{"uid":"abc123","n":42,"ok":true}"#);
        let vals = values(&out);
        assert!(vals.contains(&"abc123"));
        assert!(vals.contains(&"42"));
        assert_eq!(
            out.iter().find(|e| e.value == "abc123").unwrap().name,
            "uid"
        );
        // Booleans and nulls are not tokens.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn json_array_and_nested() {
        let out = extract_tokens(
            "d",
            r#"{"ids":["a1b2c3d4","e5f6g7h8"],"meta":{"sid":"zz99"}}"#,
        );
        let vals = values(&out);
        assert!(vals.contains(&"a1b2c3d4"));
        assert!(vals.contains(&"e5f6g7h8"));
        assert!(vals.contains(&"zz99"));
        assert_eq!(out.iter().find(|e| e.value == "zz99").unwrap().name, "sid");
    }

    #[test]
    fn url_encoded_payload_is_unwrapped() {
        // The redirector's serialized cookie blob from cc-web.
        let out = extract_tokens("_rcv", "gclid=abcdef123456&ts=1666&topic=sweet_magnolia");
        let vals = values(&out);
        assert!(vals.contains(&"abcdef123456"));
        assert!(vals.contains(&"1666"));
        assert!(vals.contains(&"sweet_magnolia"));
        assert_eq!(
            out.iter().find(|e| e.value == "abcdef123456").unwrap().name,
            "gclid"
        );
    }

    #[test]
    fn paper_example_json_containing_urlencoded() {
        // "a query parameter contains a JSON string that itself contains
        // several URL-encoded tokens" (§3.6).
        let json = r#"{"blob":"uid%3Ddeadbeef0011%26lang%3Den-US"}"#;
        // After JSON, the string percent-decodes to "uid=deadbeef0011&lang=en-US".
        let out = extract_tokens("data", json);
        let vals = values(&out);
        assert!(vals.contains(&"deadbeef0011"), "{vals:?}");
        assert!(vals.contains(&"en-US"), "{vals:?}");
    }

    #[test]
    fn url_value_not_shredded() {
        // A URL in a param should surface as one token (to be discarded by
        // the URL heuristic), plus its own inner query tokens.
        let out = extract_tokens("cc_dest", "https://www.shop.com/deal");
        assert_eq!(values(&out), vec!["https://www.shop.com/deal"]);
    }

    #[test]
    fn malformed_json_degrades_gracefully() {
        let out = extract_tokens("j", "{not json at all");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, "{not json at all");
    }

    #[test]
    fn deep_nesting_terminates() {
        // 20 levels of percent-encoding still terminates (depth cap).
        let mut v = "x=core0".to_string();
        for _ in 0..20 {
            v = format!("w={}", cc_url::percent::encode_component(&v));
        }
        let out = extract_tokens("outer", &v);
        assert!(!out.is_empty());
    }

    #[test]
    fn duplicate_leaves_deduped_by_name_and_value() {
        // Identical (name, value) pairs collapse; the same value under two
        // names is two observations (the dynamic rules compare by name).
        let out = extract_tokens("d", r#"{"a":"same1234","b":"same1234","a":"same1234"}"#);
        assert_eq!(out.len(), 2);
        let out2 = extract_tokens("d", "a=same1234&a=same1234");
        assert_eq!(out2.len(), 1);
    }

    #[test]
    fn duplicate_heavy_nested_extraction_keeps_first_seen_order() {
        // A nested payload where almost every leaf repeats: the dedup must
        // keep exactly the first occurrence of each (name, value) pair and
        // preserve the order those first occurrences were encountered in.
        let payload = concat!(
            r#"{"ids":["aaaa1111","bbbb2222","aaaa1111","cccc3333","bbbb2222"],"#,
            r#""blob":"u=aaaa1111&v=dddd4444&u=aaaa1111&w=u%3Daaaa1111","#,
            r#""ids2":["cccc3333","eeee5555"]}"#
        );
        let out = extract_tokens("d", payload);
        let pairs: Vec<(&str, &str)> = out
            .iter()
            .map(|e| (e.name.as_str(), e.value.as_str()))
            .collect();
        assert_eq!(
            pairs,
            vec![
                ("ids", "aaaa1111"),
                ("ids", "bbbb2222"),
                ("ids", "cccc3333"),
                ("u", "aaaa1111"),
                ("v", "dddd4444"),
                // "w=u%3Daaaa1111" decodes to "u=aaaa1111" and recurses, so
                // it collapses into the ("u", "aaaa1111") already seen; the
                // repeated value under the *new* name "ids2" survives, since
                // dedup is on the (name, value) pair.
                ("ids2", "cccc3333"),
                ("ids2", "eeee5555"),
            ]
        );
    }

    #[test]
    fn value_with_ampersand_but_not_query() {
        let out = extract_tokens("title", "fish & chips");
        assert_eq!(values(&out), vec!["fish & chips"]);
    }
}
