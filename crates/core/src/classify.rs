//! UID identification (§3.7).
//!
//! "To track an individual user, a UID must be the same across all website
//! visits by the same user and different across visits to the same website
//! by different users."
//!
//! * **Static case** (§3.7.1) — the token appears on all four crawlers:
//!   discard values identical across *different* users; discard tokens
//!   whose value differs between Safari-1 and Safari-1R (the same user
//!   twice ⇒ session ID). Survivors are UIDs.
//! * **Dynamic case** (§3.7.2) — fewer than four crawlers: rule (1)
//!   discard tokens identical across two different-profile crawls;
//!   rule (2) discard tokens whose *name* appears on Safari-1 and
//!   Safari-1R with differing values. The remainder goes through the
//!   programmatic heuristics and the manual-analyst model.

use std::collections::{BTreeMap, BTreeSet};

use cc_crawler::CrawlerName;
use serde::{Deserialize, Serialize};

use crate::candidates::Candidate;
use crate::heuristics::programmatic_reject;
use crate::manual::manual_reject;
use crate::observe::{TokenObs, TokenSource};

/// Why a candidate token was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiscardReason {
    /// Identical value on crawls with different user profiles — cannot be
    /// a UID.
    SameAcrossUsers,
    /// Value differed between Safari-1 and Safari-1R — a session ID.
    SessionRotation,
    /// Programmatic: date or timestamp shape.
    TimestampOrDate,
    /// Programmatic: URL shape.
    LooksLikeUrl,
    /// Programmatic: shorter than eight characters.
    TooShort,
    /// Manual: natural-language words, coordinates, domains, or acronyms.
    Manual,
}

/// Telemetry label for a discard heuristic (low-cardinality, stable).
fn discard_reason_label(reason: DiscardReason) -> &'static str {
    match reason {
        DiscardReason::SameAcrossUsers => "same_across_users",
        DiscardReason::SessionRotation => "session_rotation",
        DiscardReason::TimestampOrDate => "timestamp_or_date",
        DiscardReason::LooksLikeUrl => "looks_like_url",
        DiscardReason::TooShort => "too_short",
        DiscardReason::Manual => "manual",
    }
}

/// Final verdict on a token group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// A genuine user identifier being smuggled.
    Uid,
    /// Discarded.
    Discarded(DiscardReason),
}

/// The crawler-combination classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ComboClass {
    /// "2 identical plus 1 or more different profiles" — Safari-1 and
    /// Safari-1R agree, and at least one other user saw the token too.
    TwoIdenticalPlusDifferent,
    /// "2 or more different profiles only".
    TwoOrMoreDifferentOnly,
    /// "2 identical profiles only" — just Safari-1 + Safari-1R.
    TwoIdenticalOnly,
    /// "1 profile only".
    OneProfileOnly,
}

impl ComboClass {
    /// Table-1 row label.
    pub fn label(&self) -> &'static str {
        match self {
            ComboClass::TwoIdenticalPlusDifferent => {
                "2 identical plus 1 or more different profiles"
            }
            ComboClass::TwoOrMoreDifferentOnly => "2 or more different profiles only",
            ComboClass::TwoIdenticalOnly => "2 identical profiles only",
            ComboClass::OneProfileOnly => "1 profile only",
        }
    }
}

/// One classified token group: a (walk, step, name) triple with the values
/// each crawler saw.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenGroup {
    /// Walk id.
    pub walk: u32,
    /// Step index.
    pub step: usize,
    /// Token name (the name it traveled under).
    pub name: String,
    /// Values per crawler.
    pub values: BTreeMap<CrawlerName, BTreeSet<String>>,
    /// Verdict.
    pub verdict: Verdict,
    /// Crawler-combination class (meaningful for UIDs).
    pub combo: ComboClass,
    /// Whether the group reached the manual stage (dynamic survivors of
    /// the programmatic filters) — the denominator of the paper's
    /// 577-of-1,581 statistic.
    pub entered_manual: bool,
}

/// Statistics over a classification run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassifyStats {
    /// Total groups considered.
    pub groups: u64,
    /// Groups classified as UIDs.
    pub uids: u64,
    /// Discards per rule.
    pub same_across_users: u64,
    /// Session-rotation discards.
    pub session_rotation: u64,
    /// Programmatic discards (all three filters).
    pub programmatic: u64,
    /// Groups that reached the manual stage.
    pub entered_manual: u64,
    /// Groups removed by the manual stage.
    pub manual_removed: u64,
}

/// Classify all candidates (from all four crawlers).
///
/// `extra_nav_obs` supplies navigation-query token observations so that
/// rule (2) can see Safari-1R name/value pairs even when they did not form
/// candidates of their own.
pub fn classify(
    candidates: &[Candidate],
    extra_nav_obs: &[TokenObs],
) -> (Vec<TokenGroup>, ClassifyStats) {
    // Group candidates by (walk, step, name).
    type Key = (u32, usize, String);
    let mut groups: BTreeMap<Key, BTreeMap<CrawlerName, BTreeSet<String>>> = BTreeMap::new();
    for c in candidates {
        groups
            .entry((c.walk, c.step, c.name.clone()))
            .or_default()
            .entry(c.crawler)
            .or_default()
            .insert(c.value.clone());
    }
    // Augment with raw navigation observations (same keys only).
    for t in extra_nav_obs {
        if !matches!(t.source, TokenSource::NavQuery { .. }) {
            continue;
        }
        let key = (t.walk, t.step, t.name.clone());
        if let Some(g) = groups.get_mut(&key) {
            g.entry(t.crawler).or_default().insert(t.value.clone());
        }
    }

    let mut out = Vec::new();
    let mut stats = ClassifyStats::default();

    for ((walk, step, name), values) in groups {
        stats.groups += 1;
        let combo = combo_class(&values);
        let mut entered_manual = false;

        let verdict = (|| {
            // Rule A: identical value across different users.
            if same_value_across_users(&values) {
                return Verdict::Discarded(DiscardReason::SameAcrossUsers);
            }
            // Rule B: Safari-1 vs Safari-1R disagreement (by name).
            let s1 = values.get(&CrawlerName::Safari1);
            let s1r = values.get(&CrawlerName::Safari1R);
            if let (Some(a), Some(b)) = (s1, s1r) {
                if !a.is_empty() && !b.is_empty() && a.intersection(b).next().is_none() {
                    return Verdict::Discarded(DiscardReason::SessionRotation);
                }
            }
            // Programmatic shape filters apply globally: §8.1 states the
            // ≥8-character rule as a blanket requirement, and a URL or
            // timestamp is not a UID no matter how many crawlers saw it.
            let all_values: Vec<&String> = values.values().flatten().collect();
            for v in &all_values {
                match programmatic_reject(v) {
                    Some("too-short") => return Verdict::Discarded(DiscardReason::TooShort),
                    Some("timestamp-or-date") => {
                        return Verdict::Discarded(DiscardReason::TimestampOrDate)
                    }
                    Some("url") => return Verdict::Discarded(DiscardReason::LooksLikeUrl),
                    Some(_) | None => {}
                }
            }
            // Static case: present on all four crawlers ⇒ the four-crawler
            // comparison is authoritative (§3.7.1) — no manual pass needed.
            if values.len() == 4 {
                return Verdict::Uid;
            }
            // Dynamic case: the manual pass.
            entered_manual = true;
            for v in &all_values {
                if manual_reject(v).is_some() {
                    return Verdict::Discarded(DiscardReason::Manual);
                }
            }
            Verdict::Uid
        })();

        match verdict {
            Verdict::Uid => stats.uids += 1,
            Verdict::Discarded(DiscardReason::SameAcrossUsers) => stats.same_across_users += 1,
            Verdict::Discarded(DiscardReason::SessionRotation) => stats.session_rotation += 1,
            Verdict::Discarded(DiscardReason::Manual) => stats.manual_removed += 1,
            Verdict::Discarded(_) => stats.programmatic += 1,
        }
        match verdict {
            Verdict::Uid => cc_telemetry::counter_id(cc_telemetry::CounterId::CLASSIFY_UID_CONFIRMED, 1),
            Verdict::Discarded(reason) => cc_telemetry::event(
                "classify.token_rejected",
                &[("heuristic", discard_reason_label(reason))],
            ),
        }
        if entered_manual {
            stats.entered_manual += 1;
        }

        out.push(TokenGroup {
            walk,
            step,
            name,
            values,
            verdict,
            combo,
            entered_manual,
        });
    }
    (out, stats)
}

/// Do two crawls with *different users* share an identical value?
fn same_value_across_users(values: &BTreeMap<CrawlerName, BTreeSet<String>>) -> bool {
    let crawlers: Vec<&CrawlerName> = values.keys().collect();
    for (i, a) in crawlers.iter().enumerate() {
        for b in crawlers.iter().skip(i + 1) {
            if a.user() == b.user() {
                continue;
            }
            if values[*a].intersection(&values[*b]).next().is_some() {
                return true;
            }
        }
    }
    false
}

fn combo_class(values: &BTreeMap<CrawlerName, BTreeSet<String>>) -> ComboClass {
    let s1 = values.get(&CrawlerName::Safari1);
    let s1r = values.get(&CrawlerName::Safari1R);
    let identical_pair = matches!(
        (s1, s1r),
        (Some(a), Some(b)) if a.intersection(b).next().is_some()
    );
    let other_users = values
        .keys()
        .filter(|c| !matches!(c, CrawlerName::Safari1 | CrawlerName::Safari1R))
        .count();
    let distinct_users: BTreeSet<_> = values.keys().map(|c| c.user()).collect();

    if identical_pair && other_users > 0 {
        ComboClass::TwoIdenticalPlusDifferent
    } else if identical_pair {
        ComboClass::TwoIdenticalOnly
    } else if distinct_users.len() >= 2 {
        ComboClass::TwoOrMoreDifferentOnly
    } else {
        ComboClass::OneProfileOnly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(crawler: CrawlerName, name: &str, value: &str) -> Candidate {
        Candidate {
            walk: 0,
            step: 0,
            crawler,
            name: name.into(),
            value: value.into(),
            contexts: ["a.com".to_string(), "b.com".to_string()].into(),
            first_hop: 0,
            last_hop: 1,
            at_origin: true,
            at_destination: true,
            cookie_lifetime_days: None,
        }
    }

    fn verdict_of(cands: &[Candidate]) -> (Verdict, ComboClass) {
        let (groups, _) = classify(cands, &[]);
        assert_eq!(groups.len(), 1);
        (groups[0].verdict, groups[0].combo)
    }

    #[test]
    fn static_uid_identified() {
        // Four crawlers, per-user values, Safari-1 == Safari-1R.
        let cands = vec![
            cand(CrawlerName::Safari1, "gclid", "uid-user1-aaaa"),
            cand(CrawlerName::Safari1R, "gclid", "uid-user1-aaaa"),
            cand(CrawlerName::Safari2, "gclid", "uid-user2-bbbb"),
            cand(CrawlerName::Chrome3, "gclid", "uid-user3-cccc"),
        ];
        let (v, combo) = verdict_of(&cands);
        assert_eq!(v, Verdict::Uid);
        assert_eq!(combo, ComboClass::TwoIdenticalPlusDifferent);
    }

    #[test]
    fn same_across_users_discarded() {
        // Fingerprint-derived UID: identical everywhere (§3.5's missed
        // cases).
        let cands = vec![
            cand(CrawlerName::Safari1, "fpid", "same-value-everywhere"),
            cand(CrawlerName::Safari1R, "fpid", "same-value-everywhere"),
            cand(CrawlerName::Safari2, "fpid", "same-value-everywhere"),
            cand(CrawlerName::Chrome3, "fpid", "same-value-everywhere"),
        ];
        let (v, _) = verdict_of(&cands);
        assert_eq!(v, Verdict::Discarded(DiscardReason::SameAcrossUsers));
    }

    #[test]
    fn session_rotation_discarded() {
        let cands = vec![
            cand(CrawlerName::Safari1, "sid", "session-run-one-11"),
            cand(CrawlerName::Safari1R, "sid", "session-run-two-22"),
            cand(CrawlerName::Safari2, "sid", "session-run-thr-33"),
            cand(CrawlerName::Chrome3, "sid", "session-run-fou-44"),
        ];
        let (v, _) = verdict_of(&cands);
        assert_eq!(v, Verdict::Discarded(DiscardReason::SessionRotation));
    }

    #[test]
    fn dynamic_rule2_uses_raw_observations() {
        // Candidate only on Safari-1, but Safari-1R saw the same *name*
        // with a different value in its navigation — rule (2) applies.
        let cands = vec![cand(CrawlerName::Safari1, "sid", "rotating-value-01")];
        let obs = vec![TokenObs {
            walk: 0,
            step: 0,
            crawler: CrawlerName::Safari1R,
            name: "sid".into(),
            value: "rotating-value-02".into(),
            source: TokenSource::NavQuery { hop: 0 },
            context: "b.com".into(),
            cookie_lifetime_days: None,
        }];
        let (groups, stats) = classify(&cands, &obs);
        assert_eq!(
            groups[0].verdict,
            Verdict::Discarded(DiscardReason::SessionRotation)
        );
        assert_eq!(stats.session_rotation, 1);
    }

    #[test]
    fn dynamic_single_crawler_uid_survives() {
        let cands = vec![cand(CrawlerName::Chrome3, "gclid", "f3a9c17e2b4d5a60")];
        let (v, combo) = verdict_of(&cands);
        assert_eq!(v, Verdict::Uid);
        assert_eq!(combo, ComboClass::OneProfileOnly);
    }

    #[test]
    fn dynamic_word_token_needs_manual() {
        let cands = vec![cand(
            CrawlerName::Safari2,
            "utm_campaign",
            "sweet_magnolia_deal",
        )];
        let (groups, stats) = classify(&cands, &[]);
        assert_eq!(groups[0].verdict, Verdict::Discarded(DiscardReason::Manual));
        assert!(groups[0].entered_manual);
        assert_eq!(stats.entered_manual, 1);
        assert_eq!(stats.manual_removed, 1);
    }

    #[test]
    fn dynamic_programmatic_filters() {
        let ts = vec![cand(CrawlerName::Safari1, "ts", "1666666666123")];
        assert_eq!(
            verdict_of(&ts).0,
            Verdict::Discarded(DiscardReason::TimestampOrDate)
        );
        let url = vec![cand(
            CrawlerName::Safari1,
            "cc_dest",
            "https://www.shop.com/deal",
        )];
        assert_eq!(
            verdict_of(&url).0,
            Verdict::Discarded(DiscardReason::LooksLikeUrl)
        );
        let short = vec![cand(CrawlerName::Safari1, "v", "abc12")];
        assert_eq!(
            verdict_of(&short).0,
            Verdict::Discarded(DiscardReason::TooShort)
        );
    }

    #[test]
    fn static_case_skips_programmatic() {
        // §3.7.1: the four-crawler comparison alone decides the static
        // case — even a word-shaped value that differs per user and is
        // stable per user counts as a UID.
        let cands = vec![
            cand(CrawlerName::Safari1, "ref_uid", "sweetmagnolias"),
            cand(CrawlerName::Safari1R, "ref_uid", "sweetmagnolias"),
            cand(CrawlerName::Safari2, "ref_uid", "trustpilot"),
            cand(CrawlerName::Chrome3, "ref_uid", "dailydeals"),
        ];
        assert_eq!(verdict_of(&cands).0, Verdict::Uid);
    }

    #[test]
    fn combo_two_different_profiles_only() {
        let cands = vec![
            cand(CrawlerName::Safari2, "gclid", "uid-user2-bbbb01"),
            cand(CrawlerName::Chrome3, "gclid", "uid-user3-cccc02"),
        ];
        let (v, combo) = verdict_of(&cands);
        assert_eq!(v, Verdict::Uid);
        assert_eq!(combo, ComboClass::TwoOrMoreDifferentOnly);
    }

    #[test]
    fn combo_two_identical_only() {
        let cands = vec![
            cand(CrawlerName::Safari1, "gclid", "uid-user1-aaaa01"),
            cand(CrawlerName::Safari1R, "gclid", "uid-user1-aaaa01"),
        ];
        let (v, combo) = verdict_of(&cands);
        assert_eq!(v, Verdict::Uid);
        assert_eq!(combo, ComboClass::TwoIdenticalOnly);
    }

    #[test]
    fn stats_tally() {
        let cands = vec![
            cand(CrawlerName::Safari1, "a", "f3a9c17e2b4d5a60"),
            cand(CrawlerName::Safari2, "b", "1666666666"),
            cand(CrawlerName::Chrome3, "c", "share_button_topic"),
        ];
        let (_, stats) = classify(&cands, &[]);
        assert_eq!(stats.groups, 3);
        assert_eq!(stats.uids, 1);
        assert_eq!(stats.programmatic, 1);
        assert_eq!(stats.manual_removed, 1);
    }
}
