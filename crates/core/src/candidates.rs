//! Detecting *potential* UID smuggling (§3.6).
//!
//! "We then discard all of the tokens that were not passed across at least
//! one first-party context as a query parameter." A token qualifies when it
//! appears as a **navigation query parameter** in some first-party context
//! and is also associated with at least one *different* registered domain
//! in the same step — an earlier or later hop, the originator's storage or
//! page URL, or the destination's storage. Tokens seen on two sites without
//! a query-parameter transfer are dropped as coincidences ("location or
//! language specifiers"), exactly as the paper found.

use std::collections::{BTreeMap, BTreeSet};

use cc_crawler::CrawlerName;
use serde::{Deserialize, Serialize};

use crate::observe::{PathView, TokenObs, TokenSource};

/// One candidate case: a token (by value) that crossed a first-party
/// boundary via a navigation query parameter, as seen by one crawler in
/// one step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidate {
    /// Walk id.
    pub walk: u32,
    /// Step index.
    pub step: usize,
    /// Observing crawler.
    pub crawler: CrawlerName,
    /// Name the token traveled under (innermost pair name).
    pub name: String,
    /// The token value.
    pub value: String,
    /// Registered domains the token was associated with.
    pub contexts: BTreeSet<String>,
    /// First hop index where it appeared as a navigation query parameter.
    pub first_hop: usize,
    /// Last hop index where it appeared as a navigation query parameter.
    pub last_hop: usize,
    /// Whether the token was present at the originator (storage or the
    /// originator page's own URL).
    pub at_origin: bool,
    /// Whether the token was present at the destination (final hop query
    /// or destination storage).
    pub at_destination: bool,
    /// Cookie lifetime (days) if the token was also stored persistently.
    pub cookie_lifetime_days: Option<u64>,
}

/// Find candidates among one (walk, step, crawler)'s observations.
///
/// `path` must be the same crawler's navigation path for the step.
pub fn find_candidates(tokens: &[TokenObs], path: &PathView) -> Vec<Candidate> {
    // Group all observations by token value.
    let mut by_value: BTreeMap<&str, Vec<&TokenObs>> = BTreeMap::new();
    for t in tokens {
        by_value.entry(t.value.as_str()).or_default().push(t);
    }

    let n_hops = path.hops.len();
    let dest_domain = path.destination();
    let mut out = Vec::new();

    for (value, obs) in by_value {
        // Must appear in a navigation query parameter at least once.
        let nav_hits: Vec<usize> = obs
            .iter()
            .filter_map(|t| match t.source {
                TokenSource::NavQuery { hop } => Some(hop),
                _ => None,
            })
            .collect();
        if nav_hits.is_empty() {
            continue;
        }

        // Contexts the token is associated with (beacons excluded: a
        // beacon leak is a consequence, not a transfer mechanism).
        let contexts: BTreeSet<String> = obs
            .iter()
            .filter(|t| t.source != TokenSource::Beacon)
            .map(|t| t.context.clone())
            .collect();
        if contexts.len() < 2 {
            continue;
        }

        let first_hop = *nav_hits.iter().min().expect("non-empty");
        let last_hop = *nav_hits.iter().max().expect("non-empty");
        let at_origin = obs.iter().any(|t| {
            matches!(
                t.source,
                TokenSource::OriginCookie | TokenSource::OriginLocal | TokenSource::OriginPageQuery
            )
        });
        let at_destination = obs
            .iter()
            .any(|t| matches!(t.source, TokenSource::DestCookie | TokenSource::DestLocal))
            || (n_hops > 0 && last_hop == n_hops - 1)
            || dest_domain
                .as_ref()
                .map(|d| {
                    obs.iter()
                        .any(|t| t.source.is_nav_query() && &t.context == d)
                })
                .unwrap_or(false);

        // The name the token traveled under in navigation (prefer the nav
        // observation's name over storage names).
        let name = obs
            .iter()
            .find(|t| t.source.is_nav_query())
            .map(|t| t.name.clone())
            .expect("nav hit exists");
        let cookie_lifetime_days = obs.iter().find_map(|t| t.cookie_lifetime_days);

        out.push(Candidate {
            walk: path.walk,
            step: path.step,
            crawler: path.crawler,
            name,
            value: value.to_string(),
            contexts,
            first_hop,
            last_hop,
            at_origin,
            at_destination,
            cookie_lifetime_days,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_url::Url;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn path() -> PathView {
        PathView {
            walk: 0,
            step: 0,
            crawler: CrawlerName::Safari1,
            origin: url("https://www.news.com/"),
            hops: vec![
                url("https://r.trk.net/click?gclid=u1"),
                url("https://www.shop.com/?gclid=u1"),
            ],
        }
    }

    fn obs(name: &str, value: &str, source: TokenSource, context: &str) -> TokenObs {
        TokenObs {
            walk: 0,
            step: 0,
            crawler: CrawlerName::Safari1,
            name: name.into(),
            value: value.into(),
            source,
            context: context.into(),
            cookie_lifetime_days: None,
        }
    }

    #[test]
    fn full_transfer_detected() {
        let tokens = vec![
            obs(
                "_t_uid",
                "uidvalue12345678",
                TokenSource::OriginCookie,
                "news.com",
            ),
            obs(
                "gclid",
                "uidvalue12345678",
                TokenSource::NavQuery { hop: 0 },
                "trk.net",
            ),
            obs(
                "gclid",
                "uidvalue12345678",
                TokenSource::NavQuery { hop: 1 },
                "shop.com",
            ),
            obs(
                "gclid",
                "uidvalue12345678",
                TokenSource::DestCookie,
                "shop.com",
            ),
        ];
        let c = find_candidates(&tokens, &path());
        assert_eq!(c.len(), 1);
        let c = &c[0];
        assert_eq!(c.name, "gclid");
        assert!(c.at_origin);
        assert!(c.at_destination);
        assert_eq!((c.first_hop, c.last_hop), (0, 1));
        assert_eq!(c.contexts.len(), 3);
    }

    #[test]
    fn no_nav_query_no_candidate() {
        // The paper's "location or language specifiers" case: same value on
        // both sites but never passed as a query parameter.
        let tokens = vec![
            obs(
                "lang",
                "en-US-variant",
                TokenSource::OriginCookie,
                "news.com",
            ),
            obs("lang", "en-US-variant", TokenSource::DestCookie, "shop.com"),
        ];
        assert!(find_candidates(&tokens, &path()).is_empty());
    }

    #[test]
    fn single_context_no_candidate() {
        // Token appears only in the destination's own URL: one context.
        let tokens = vec![obs(
            "q",
            "searchterm123",
            TokenSource::NavQuery { hop: 1 },
            "shop.com",
        )];
        assert!(find_candidates(&tokens, &path()).is_empty());
    }

    #[test]
    fn partial_transfer_origin_to_redirector() {
        // UID decorated at the originator, stored by the redirector, never
        // forwarded (O→R of Figure 8).
        let tokens = vec![
            obs(
                "_t_uid",
                "partial_uid_0001",
                TokenSource::OriginCookie,
                "news.com",
            ),
            obs(
                "gclid",
                "partial_uid_0001",
                TokenSource::NavQuery { hop: 0 },
                "trk.net",
            ),
        ];
        let c = find_candidates(&tokens, &path());
        assert_eq!(c.len(), 1);
        assert!(c[0].at_origin);
        assert!(!c[0].at_destination);
    }

    #[test]
    fn redirector_injected_uid() {
        // Injected by the redirector at hop 1, reaches the destination.
        let tokens = vec![
            obs(
                "spx_id",
                "injected_uid_77",
                TokenSource::NavQuery { hop: 1 },
                "shop.com",
            ),
            obs(
                "_spx_rcv",
                "injected_uid_77",
                TokenSource::DestCookie,
                "shop.com",
            ),
            // The redirector knows it from its own first-party cookie, but
            // that cookie lives in the redirector's partition, invisible
            // here — the hop-1 query + destination storage suffice? No:
            // both contexts are shop.com. Add the hop-0 appearance the
            // onward URL got when hop 0 302'd (it carries hop-1's URL
            // params only from hop 1 on, so simulate a 3-hop case).
            obs(
                "spx_id",
                "injected_uid_77",
                TokenSource::NavQuery { hop: 0 },
                "trk.net",
            ),
        ];
        let c = find_candidates(&tokens, &path());
        assert_eq!(c.len(), 1);
        assert!(!c[0].at_origin);
        assert!(c[0].at_destination);
    }

    #[test]
    fn beacon_only_context_does_not_count_as_transfer() {
        // Token in a nav query on one domain + a beacon elsewhere: beacons
        // are leaks, not transfers.
        let tokens = vec![
            obs(
                "x",
                "value123456789",
                TokenSource::NavQuery { hop: 0 },
                "trk.net",
            ),
            obs("u", "value123456789", TokenSource::Beacon, "shop.com"),
        ];
        assert!(find_candidates(&tokens, &path()).is_empty());
    }

    #[test]
    fn lifetime_carried_from_cookie_observation() {
        let mut stored = obs(
            "_t_uid",
            "uid_with_life_99",
            TokenSource::OriginCookie,
            "news.com",
        );
        stored.cookie_lifetime_days = Some(42);
        let tokens = vec![
            stored,
            obs(
                "gclid",
                "uid_with_life_99",
                TokenSource::NavQuery { hop: 0 },
                "trk.net",
            ),
        ];
        let c = find_candidates(&tokens, &path());
        assert_eq!(c[0].cookie_lifetime_days, Some(42));
    }
}
