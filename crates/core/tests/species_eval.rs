//! Species-evaluation harness: crawl a world seeded with every evasion
//! species and hold the pipeline to measured precision/recall floors
//! against the ground-truth ledger — then replay the §7 defenses to show
//! *which* species each defense structurally misses (DESIGN.md §5f).
//!
//! The two headline demonstrations the matrix must support:
//!
//! * **SPA-pushState defeats ITP's navigation-hop detector**: its flows
//!   have zero redirect hops, so the detector never sees its domains.
//! * **CNAME-cloaked defeats link-decoration stripping**: its parameter
//!   names are first-party words, absent from any blocklist.

use std::collections::BTreeMap;

use cc_core::pipeline::PipelineOutput;
use cc_core::truth_eval::{score, score_by_tracker, TruthScore};
use cc_crawler::{CrawlConfig, Walker};
use cc_defense::itp::ItpClassifier;
use cc_defense::protected::{rewriter_for, Protection};
use cc_url::Host;
use cc_web::script::TokenTruth;
use cc_web::{generate, SimWeb, TrackerId, TrackerKind, WebConfig};
use proptest::prelude::*;

fn species_world() -> WebConfig {
    WebConfig::small().all_species()
}

fn crawl_cfg() -> CrawlConfig {
    CrawlConfig {
        seed: 5,
        steps_per_walk: 5,
        max_walks: Some(40),
        connect_failure_rate: 0.0,
        ..CrawlConfig::default()
    }
}

fn crawl(web: &SimWeb, protection: Protection) -> PipelineOutput {
    let cfg = CrawlConfig {
        rewriter: rewriter_for(protection),
        ..crawl_cfg()
    };
    cc_core::run_pipeline(&Walker::new(web, cfg).crawl())
}

/// Tracker-id → species kind for every species tracker in the world.
fn species_kinds(web: &SimWeb) -> BTreeMap<TrackerId, TrackerKind> {
    web.trackers
        .iter()
        .filter(|t| t.kind.is_species())
        .map(|t| (t.id, t.kind))
        .collect()
}

/// Per-species scorecards: ledger-attributed TP/FN summed over each
/// species' trackers.
fn species_scores(web: &SimWeb, output: &PipelineOutput) -> BTreeMap<TrackerKind, TruthScore> {
    let kinds = species_kinds(web);
    let truth = web.truth_snapshot();
    let mut per_kind: BTreeMap<TrackerKind, TruthScore> = BTreeMap::new();
    for (tid, card) in score_by_tracker(&output.groups, &truth) {
        let Some(kind) = kinds.get(&tid) else { continue };
        let s = per_kind.entry(*kind).or_default();
        s.true_positives += card.true_positives;
        s.false_negatives += card.false_negatives;
        s.fingerprint_misses += card.fingerprint_misses;
    }
    per_kind
}

/// Confirmed findings per species, attributed through the truth ledger.
fn species_findings(web: &SimWeb, output: &PipelineOutput) -> BTreeMap<TrackerKind, usize> {
    let kinds = species_kinds(web);
    let truth = web.truth_snapshot();
    let mut per_kind: BTreeMap<TrackerKind, usize> = BTreeMap::new();
    for f in &output.findings {
        let tid = f.values.values().flatten().find_map(|v| match truth.get(v) {
            Some(TokenTruth::Uid {
                tracker: Some(tid), ..
            }) => Some(tid),
            _ => None,
        });
        if let Some(kind) = tid.and_then(|tid| kinds.get(&tid)) {
            *per_kind.entry(*kind).or_default() += 1;
        }
    }
    per_kind
}

#[test]
fn every_species_yields_candidate_groups_and_meets_recall_floors() {
    let web = generate(&species_world());
    let output = crawl(&web, Protection::None);
    let scores = species_scores(&web, &output);

    for kind in TrackerKind::SPECIES {
        let label = kind.species_label().unwrap();
        let s = scores
            .get(&kind)
            .unwrap_or_else(|| panic!("{label}: no ledger-attributed groups at all"));
        let judged = s.true_positives + s.false_negatives;
        assert!(judged > 0, "{label}: no non-fingerprint UID reached a verdict");
        // The pipeline was not told about the species; a UID that crosses
        // contexts should still classify as a UID most of the time. The
        // floor is deliberately loose — the load-bearing claim is that
        // *recovery happens at all* and is measured, not that it is perfect.
        assert!(
            s.recall() >= 0.5,
            "{label}: recall {:.2} fell below the 0.5 floor ({s:?})",
            s.recall()
        );
    }
}

#[test]
fn species_add_no_new_false_positive_classes() {
    let web = generate(&species_world());
    let output = crawl(&web, Protection::None);
    let truth = web.truth_snapshot();
    let s = score(&output.groups, &truth);
    assert!(
        s.true_positives > 0,
        "species world produced no true positives: {s:?}"
    );
    // Planting evaders must not poison the classifier: every false
    // positive travels under a baseline parameter name (in practice the
    // long-standing `sid` session-id confusion), never a species one.
    let species_params: std::collections::BTreeSet<&str> = web
        .trackers
        .iter()
        .filter(|t| t.kind.is_species())
        .map(|t| t.uid_param.as_str())
        .collect();
    for g in &output.groups {
        if g.verdict != cc_core::classify::Verdict::Uid {
            continue;
        }
        let label = g.values.values().flatten().find_map(|v| truth.get(v));
        if matches!(label, Some(l) if !l.is_uid()) {
            assert!(
                !species_params.contains(g.name.as_str()),
                "false positive under species parameter {:?}",
                g.name
            );
        }
    }
    // And aggregate precision stays in the baseline world's neighborhood.
    assert!(
        s.precision() >= 0.7,
        "aggregate precision {:.3} collapsed ({s:?})",
        s.precision()
    );
}

#[test]
fn stripping_is_defeated_by_cname_cloaking_but_kills_spa_decoration() {
    let web = generate(&species_world());
    let baseline = species_findings(&web, &crawl(&web, Protection::None));
    let stripped = species_findings(&web, &crawl(&web, Protection::StripParams));

    let base_cname = baseline.get(&TrackerKind::CnameCloaked).copied().unwrap_or(0);
    let base_spa = baseline.get(&TrackerKind::SpaPushState).copied().unwrap_or(0);
    assert!(base_cname > 0, "baseline crawl found no cname-cloaked smuggling");
    assert!(base_spa > 0, "baseline crawl found no spa-pushstate smuggling");

    // CNAME-cloaked decorations use first-party parameter names unknown to
    // the blocklist: click-time stripping cannot touch them.
    let strip_cname = stripped.get(&TrackerKind::CnameCloaked).copied().unwrap_or(0);
    assert!(
        strip_cname * 2 >= base_cname,
        "stripping should leave cname-cloaked mostly intact: {base_cname} -> {strip_cname}"
    );

    // SPA-pushState decorates with a well-known parameter name right on the
    // link, where the click-time rewriter looks: stripping eliminates it.
    let strip_spa = stripped.get(&TrackerKind::SpaPushState).copied().unwrap_or(0);
    assert_eq!(
        strip_spa, 0,
        "stripping should eliminate spa-pushstate findings: {base_spa} -> {strip_spa}"
    );

    // The bounce-reminter's UID is born mid-chain, after the click-time
    // rewriter already ran: stripping cannot remove what does not exist yet.
    let base_remint = baseline.get(&TrackerKind::RemintBouncer).copied().unwrap_or(0);
    let strip_remint = stripped.get(&TrackerKind::RemintBouncer).copied().unwrap_or(0);
    assert!(base_remint > 0, "baseline crawl found no bounce-remint smuggling");
    assert!(
        strip_remint > 0,
        "mid-chain reminting should survive stripping: {base_remint} -> {strip_remint}"
    );
}

#[test]
fn itp_hop_detector_never_flags_spa_or_cname_but_flags_remint() {
    let web = generate(&species_world());
    let output = crawl(&web, Protection::None);

    let mut itp = ItpClassifier::new();
    for path in &output.paths {
        itp.observe_path(path);
    }
    assert!(!itp.is_empty(), "the crawl observed no redirectors at all");

    let domain = |fqdn: &str| Host::parse(fqdn).unwrap().registered_domain();
    let mut remint_flagged = 0usize;
    for t in web.trackers.iter().filter(|t| t.kind.is_species()) {
        match t.kind {
            // Zero-hop species: structurally invisible to a detector that
            // only looks at redirect chains.
            TrackerKind::SpaPushState | TrackerKind::CnameCloaked => assert!(
                !itp.is_smuggler(&domain(&t.fqdn)),
                "{} ({:?}) must not be flagged by the hop detector",
                t.fqdn,
                t.kind
            ),
            TrackerKind::RemintBouncer => {
                remint_flagged += usize::from(itp.is_smuggler(&domain(&t.fqdn)));
            }
            _ => {}
        }
    }
    assert!(
        remint_flagged > 0,
        "bounce-remint redirects are observable hops; ITP should flag them"
    );
}

#[test]
fn species_matrix_floors_match_the_harness() {
    // The analysis-layer matrix is computed from the same primitives; its
    // per-row precision/recall must satisfy the same floors the raw
    // harness enforces, so report consumers can trust the rendered table.
    let web = generate(&species_world());
    let output = crawl(&web, Protection::None);
    let matrix = cc_analysis::species_evasion(&web, &output);
    assert_eq!(matrix.rows.len(), TrackerKind::SPECIES.len());
    for row in &matrix.rows {
        assert!(
            row.recall >= 0.5,
            "{}: matrix recall {:.2} below floor",
            row.species,
            row.recall
        );
        assert!(
            row.precision >= 0.9,
            "{}: matrix precision {:.2} below floor",
            row.species,
            row.precision
        );
        assert!(row.findings > 0, "{}: no confirmed findings", row.species);
    }
}

/// Count ground-truth UIDs per minting tracker.
fn uid_census(web: &SimWeb) -> BTreeMap<Option<TrackerId>, usize> {
    let mut census: BTreeMap<Option<TrackerId>, usize> = BTreeMap::new();
    for (_, label) in web.truth_snapshot().iter() {
        if let TokenTruth::Uid { tracker, .. } = label {
            *census.entry(tracker).or_default() += 1;
        }
    }
    census
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Truth-label counts are conserved between serial and parallel crawls
    /// of an all-species world: no species mints more (or fewer) UIDs just
    /// because workers interleaved differently.
    #[test]
    fn species_truth_labels_conserved_serial_vs_parallel(
        seed in 0u64..3,
        workers in 2usize..6,
    ) {
        let cfg = WebConfig { seed, ..species_world() };
        let crawl_cfg = CrawlConfig {
            seed,
            steps_per_walk: 4,
            max_walks: Some(12),
            connect_failure_rate: 0.0,
            ..CrawlConfig::default()
        };

        let serial_web = generate(&cfg);
        Walker::new(&serial_web, crawl_cfg.clone()).crawl();
        let serial = uid_census(&serial_web);

        let parallel_web = generate(&cfg);
        cc_crawler::crawl_parallel(
            &parallel_web,
            &crawl_cfg,
            cc_crawler::ParallelCrawlConfig::with_workers(workers),
        );
        let parallel = uid_census(&parallel_web);

        prop_assert_eq!(&serial, &parallel, "per-tracker UID counts diverged");
        // Every species tracker that minted serially minted identically in
        // parallel (the census keys cover them via species_kinds).
        for (tid, kind) in species_kinds(&serial_web) {
            let n = serial.get(&Some(tid)).copied().unwrap_or(0);
            let m = parallel.get(&Some(tid)).copied().unwrap_or(0);
            prop_assert_eq!(n, m, "tracker {:?} ({:?})", tid, kind);
        }
    }
}
