//! Property-based tests for the string interner: intern/resolve must
//! round-trip, and interned strings must be indistinguishable from owned
//! `String`s in every observable way (equality, ordering, hashing, serde).

use cc_util::{intern, IStr, Interner};
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn hash_of<T: Hash>(t: &T) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

proptest! {
    #[test]
    fn intern_resolve_round_trips(s in "\\PC{0,64}") {
        let i = intern(&s);
        prop_assert_eq!(i.as_str(), s.as_str());
        prop_assert_eq!(&i, s.as_str());
    }

    #[test]
    fn reinterning_is_canonical(s in "\\PC{0,64}") {
        let a = intern(&s);
        let b = intern(&s);
        prop_assert!(IStr::ptr_eq(&a, &b));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn equality_matches_string_equality(a in "\\PC{0,32}", b in "\\PC{0,32}") {
        let ia = intern(&a);
        let ib = intern(&b);
        prop_assert_eq!(ia == ib, a == b);
    }

    #[test]
    fn ordering_matches_string_ordering(a in "\\PC{0,32}", b in "\\PC{0,32}") {
        prop_assert_eq!(intern(&a).cmp(&intern(&b)), a.cmp(&b));
    }

    #[test]
    fn hash_matches_str_hash(s in "\\PC{0,64}") {
        // Required for Borrow<str> lookups in HashMap<IStr, _>.
        prop_assert_eq!(hash_of(&intern(&s)), hash_of(&s.as_str()));
    }

    #[test]
    fn serde_is_byte_identical_to_string(s in "\\PC{0,64}") {
        let as_istr = serde_json::to_string(&intern(&s)).unwrap();
        let as_string = serde_json::to_string(&s).unwrap();
        prop_assert_eq!(&as_istr, &as_string);
        let back: IStr = serde_json::from_str(&as_istr).unwrap();
        prop_assert_eq!(back.as_str(), s.as_str());
    }

    #[test]
    fn local_interner_dedupes(strings in prop::collection::vec("\\PC{0,16}", 0..32)) {
        let table = Interner::new();
        let mut distinct: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        for s in &strings {
            let _ = table.intern(s);
        }
        prop_assert_eq!(table.len(), distinct.len());
        // Every handle resolves to its own content even after dedup.
        for s in &strings {
            let handle = table.intern(s);
            prop_assert_eq!(handle.as_str(), s.as_str());
        }
    }
}
