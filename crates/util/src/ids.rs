//! Generation of UID-shaped identifier strings.
//!
//! The synthetic web needs to mint tokens that *look like* the identifiers
//! the paper found in the wild: hex blobs, base64url strings, UUIDs, and
//! decimal counters. The pipeline must never peek at ground truth, so these
//! generators produce the same surface forms a real tracker would.

use crate::rng::DetRng;

const HEX: &[u8] = b"0123456789abcdef";
const BASE64URL: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";
const ALNUM: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";

/// Surface encodings for generated identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdStyle {
    /// Lowercase hex, e.g. `f3a9c17e2b4d5a60`.
    Hex,
    /// Base64url alphabet, e.g. `Zk9_xB-1aQ`.
    Base64Url,
    /// Hyphenated UUID-v4-looking string.
    Uuid,
    /// Decimal digits only (e.g. numeric account IDs).
    Decimal,
    /// Mixed alphanumeric.
    Alnum,
}

impl IdStyle {
    /// All styles, for sampling.
    pub const ALL: [IdStyle; 5] = [
        IdStyle::Hex,
        IdStyle::Base64Url,
        IdStyle::Uuid,
        IdStyle::Decimal,
        IdStyle::Alnum,
    ];
}

fn from_alphabet(rng: &mut DetRng, alphabet: &[u8], len: usize) -> String {
    (0..len)
        .map(|_| alphabet[rng.index(alphabet.len())] as char)
        .collect()
}

/// Generate an identifier of the given style and length.
///
/// For [`IdStyle::Uuid`] the `len` parameter is ignored (UUIDs are always 36
/// chars).
pub fn generate(rng: &mut DetRng, style: IdStyle, len: usize) -> String {
    match style {
        IdStyle::Hex => from_alphabet(rng, HEX, len),
        IdStyle::Base64Url => from_alphabet(rng, BASE64URL, len),
        IdStyle::Alnum => from_alphabet(rng, ALNUM, len),
        IdStyle::Decimal => {
            // Avoid a leading zero so the value also parses as an integer.
            let mut s = String::with_capacity(len);
            s.push((b'1' + rng.below(9) as u8) as char);
            s.push_str(&from_alphabet(rng, b"0123456789", len.saturating_sub(1)));
            s
        }
        IdStyle::Uuid => {
            let a = from_alphabet(rng, HEX, 8);
            let b = from_alphabet(rng, HEX, 4);
            let c = from_alphabet(rng, HEX, 3);
            let d = from_alphabet(rng, HEX, 3);
            let e = from_alphabet(rng, HEX, 12);
            // Version nibble 4, variant nibble in [89ab].
            let variant = ['8', '9', 'a', 'b'][rng.index(4)];
            format!("{a}-{b}-4{c}-{variant}{d}-{e}")
        }
    }
}

/// Generate a token with a random style and a typical UID length (16–32).
pub fn generate_uid(rng: &mut DetRng) -> String {
    let style = *rng.pick(&IdStyle::ALL);
    let len = rng.range(16, 32) as usize;
    generate(rng, style, len)
}

/// Generate a short session-ID-shaped token (8–24 chars, hex or alnum).
pub fn generate_session_id(rng: &mut DetRng) -> String {
    let style = *rng.pick(&[IdStyle::Hex, IdStyle::Alnum]);
    let len = rng.range(8, 24) as usize;
    generate(rng, style, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_uses_hex_alphabet() {
        let mut rng = DetRng::new(1);
        let s = generate(&mut rng, IdStyle::Hex, 32);
        assert_eq!(s.len(), 32);
        assert!(s
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }

    #[test]
    fn uuid_shape() {
        let mut rng = DetRng::new(2);
        let s = generate(&mut rng, IdStyle::Uuid, 0);
        assert_eq!(s.len(), 36);
        let parts: Vec<&str> = s.split('-').collect();
        assert_eq!(parts.len(), 5);
        assert_eq!(parts[2].chars().next(), Some('4'));
        assert!(matches!(
            parts[3].chars().next(),
            Some('8' | '9' | 'a' | 'b')
        ));
    }

    #[test]
    fn decimal_no_leading_zero() {
        let mut rng = DetRng::new(3);
        for _ in 0..100 {
            let s = generate(&mut rng, IdStyle::Decimal, 10);
            assert_eq!(s.len(), 10);
            assert_ne!(s.chars().next(), Some('0'));
            assert!(s.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn distinct_draws_distinct_ids() {
        let mut rng = DetRng::new(4);
        let a = generate_uid(&mut rng);
        let b = generate_uid(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = DetRng::new(99);
        let mut b = DetRng::new(99);
        assert_eq!(generate_uid(&mut a), generate_uid(&mut b));
    }

    #[test]
    fn uid_length_window() {
        let mut rng = DetRng::new(5);
        for _ in 0..200 {
            let s = generate_uid(&mut rng);
            assert!(s.len() >= 16 && s.len() <= 36, "len {}", s.len());
        }
    }

    #[test]
    fn session_id_at_least_8() {
        let mut rng = DetRng::new(6);
        for _ in 0..200 {
            assert!(generate_session_id(&mut rng).len() >= 8);
        }
    }
}
