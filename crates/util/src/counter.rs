//! Counting-map helpers for table construction.
//!
//! Most of the paper's tables are "top-k entities by count" rollups
//! (Table 3 redirectors, Figure 4 organizations, Figure 6 third parties).
//! [`Counter`] wraps a `HashMap<K, u64>` with deterministic, tie-broken
//! top-k extraction so table output is stable across runs.

use std::collections::HashMap;
use std::hash::Hash;

/// A multiset counter over hashable keys.
#[derive(Debug, Clone)]
pub struct Counter<K: Eq + Hash> {
    counts: HashMap<K, u64>,
}

impl<K: Eq + Hash> Default for Counter<K> {
    fn default() -> Self {
        Counter {
            counts: HashMap::new(),
        }
    }
}

impl<K: Eq + Hash> Counter<K> {
    /// New empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment a key by one.
    pub fn add(&mut self, key: K) {
        *self.counts.entry(key).or_insert(0) += 1;
    }

    /// Increment a key by `n`.
    pub fn add_n(&mut self, key: K, n: u64) {
        *self.counts.entry(key).or_insert(0) += n;
    }

    /// Count for a key (0 when absent).
    pub fn get(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Whether no keys have been counted.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate over `(key, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &v)| (k, v))
    }
}

impl<K: Eq + Hash + Ord + Clone> Counter<K> {
    /// The `k` most frequent entries, ties broken by key order so output is
    /// deterministic. Returns `(key, count)` pairs, most frequent first.
    pub fn top_k(&self, k: usize) -> Vec<(K, u64)> {
        let mut all: Vec<(K, u64)> = self.counts.iter().map(|(k, &v)| (k.clone(), v)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// All entries sorted by descending count (ties by key).
    pub fn sorted(&self) -> Vec<(K, u64)> {
        self.top_k(self.counts.len())
    }
}

impl<K: Eq + Hash> FromIterator<K> for Counter<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut c = Counter::new();
        for k in iter {
            c.add(k);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut c = Counter::new();
        c.add("a");
        c.add("a");
        c.add_n("b", 3);
        assert_eq!(c.get(&"a"), 2);
        assert_eq!(c.get(&"b"), 3);
        assert_eq!(c.get(&"missing"), 0);
        assert_eq!(c.distinct(), 2);
        assert_eq!(c.total(), 5);
        assert!(!c.is_empty());
    }

    #[test]
    fn top_k_order_and_ties() {
        let c: Counter<&str> = ["x", "y", "y", "z", "z"].into_iter().collect();
        let top = c.top_k(10);
        // y and z tie at 2, broken by key order: y before z.
        assert_eq!(top, vec![("y", 2), ("z", 2), ("x", 1)]);
        assert_eq!(c.top_k(1), vec![("y", 2)]);
    }

    #[test]
    fn sorted_returns_everything() {
        let c: Counter<u32> = [1, 2, 2, 3, 3, 3].into_iter().collect();
        assert_eq!(c.sorted(), vec![(3, 3), (2, 2), (1, 1)]);
    }

    #[test]
    fn empty_counter() {
        let c: Counter<String> = Counter::new();
        assert!(c.is_empty());
        assert_eq!(c.total(), 0);
        assert!(c.top_k(5).is_empty());
    }
}
