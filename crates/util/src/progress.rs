//! Lock-free crawl progress accounting.
//!
//! The parallel crawl executor updates these counters from every worker
//! thread; a monitor (the CLI, a bench, a test) takes [`ProgressSnapshot`]s
//! at any moment without stopping the crawl. All counters are relaxed
//! atomics — they are throughput telemetry, not synchronization.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Shared crawl-progress counters: aggregate walk/step throughput plus a
/// per-worker breakdown (so a stalled or starved worker is visible, the
/// way load-test harnesses report per-worker request counts).
#[derive(Debug)]
pub struct ProgressCounters {
    started: Instant,
    walks: AtomicU64,
    steps: AtomicU64,
    per_worker: Vec<WorkerCounters>,
}

/// One worker's counters.
#[derive(Debug, Default)]
struct WorkerCounters {
    walks: AtomicU64,
    steps: AtomicU64,
}

impl ProgressCounters {
    /// Counters for a crawl with `n_workers` workers.
    pub fn new(n_workers: usize) -> Self {
        ProgressCounters {
            started: Instant::now(),
            walks: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            per_worker: (0..n_workers).map(|_| WorkerCounters::default()).collect(),
        }
    }

    /// Number of workers these counters track.
    pub fn n_workers(&self) -> usize {
        self.per_worker.len()
    }

    /// Record one finished walk (with `steps` completed steps) for a
    /// worker.
    pub fn record_walk(&self, worker: usize, steps: u64) {
        self.walks.fetch_add(1, Ordering::Relaxed);
        self.steps.fetch_add(steps, Ordering::Relaxed);
        if let Some(w) = self.per_worker.get(worker) {
            w.walks.fetch_add(1, Ordering::Relaxed);
            w.steps.fetch_add(steps, Ordering::Relaxed);
        }
    }

    /// A consistent-enough view of the counters right now.
    pub fn snapshot(&self) -> ProgressSnapshot {
        self.snapshot_with_elapsed(self.started.elapsed().as_secs_f64())
    }

    /// [`ProgressCounters::snapshot`] with the elapsed time supplied by the
    /// caller — the testable core, and what a monitor replaying recorded
    /// timings uses. Rates are guarded: a zero (coarse clock), negative, or
    /// non-finite elapsed reports `0.0`, never `inf`/`NaN`.
    pub fn snapshot_with_elapsed(&self, elapsed_secs: f64) -> ProgressSnapshot {
        let walks = self.walks.load(Ordering::Relaxed);
        let steps = self.steps.load(Ordering::Relaxed);
        ProgressSnapshot {
            walks,
            steps,
            elapsed_secs,
            walks_per_sec: rate(walks, elapsed_secs),
            steps_per_sec: rate(steps, elapsed_secs),
            per_worker: self
                .per_worker
                .iter()
                .map(|w| WorkerSnapshot {
                    walks: w.walks.load(Ordering::Relaxed),
                    steps: w.steps.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// `count / elapsed`, guarded against the zero-elapsed edge case (a
/// snapshot taken immediately after construction, or a coarse monotonic
/// clock reporting 0) and against non-finite elapsed values.
fn rate(count: u64, elapsed_secs: f64) -> f64 {
    if !elapsed_secs.is_finite() || elapsed_secs <= 0.0 {
        0.0
    } else {
        count as f64 / elapsed_secs
    }
}

/// Point-in-time progress reading. Serializable because the live
/// observer (`cc-obs`) serves it as the `/progress` JSON body.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProgressSnapshot {
    /// Walks finished so far.
    pub walks: u64,
    /// Steps completed so far.
    pub steps: u64,
    /// Seconds since the counters were created.
    pub elapsed_secs: f64,
    /// Walk throughput over the whole run.
    pub walks_per_sec: f64,
    /// Step throughput over the whole run.
    pub steps_per_sec: f64,
    /// Per-worker share of the work.
    pub per_worker: Vec<WorkerSnapshot>,
}

/// One worker's share in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WorkerSnapshot {
    /// Walks this worker finished.
    pub walks: u64,
    /// Steps this worker completed.
    pub steps: u64,
}

impl WorkerSnapshot {
    /// This worker's fraction of `total_walks` (0.0 for an empty crawl).
    pub fn walk_share(&self, total_walks: u64) -> f64 {
        if total_walks == 0 {
            0.0
        } else {
            self.walks as f64 / total_walks as f64
        }
    }
}

impl ProgressSnapshot {
    /// One-line human rendering (`42 walks, 180 steps, 12.3 walks/s ...`).
    pub fn render(&self) -> String {
        let workers = self
            .per_worker
            .iter()
            .enumerate()
            .map(|(i, w)| format!("w{i}:{}", w.walks))
            .collect::<Vec<_>>()
            .join(" ");
        format!(
            "{} walks ({:.1}/s), {} steps ({:.1}/s) [{workers}]",
            self.walks, self.walks_per_sec, self.steps, self.steps_per_sec
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_match_per_worker_sums() {
        let p = ProgressCounters::new(3);
        p.record_walk(0, 5);
        p.record_walk(1, 3);
        p.record_walk(0, 2);
        let s = p.snapshot();
        assert_eq!(s.walks, 3);
        assert_eq!(s.steps, 10);
        assert_eq!(s.per_worker.len(), 3);
        assert_eq!(s.per_worker[0], WorkerSnapshot { walks: 2, steps: 7 });
        assert_eq!(s.per_worker[1], WorkerSnapshot { walks: 1, steps: 3 });
        assert_eq!(s.per_worker[2], WorkerSnapshot { walks: 0, steps: 0 });
        assert_eq!(
            s.walks,
            s.per_worker.iter().map(|w| w.walks).sum::<u64>()
        );
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let p = ProgressCounters::new(4);
        std::thread::scope(|scope| {
            for w in 0..4 {
                let p = &p;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        p.record_walk(w, 2);
                    }
                });
            }
        });
        let s = p.snapshot();
        assert_eq!(s.walks, 4000);
        assert_eq!(s.steps, 8000);
        for w in &s.per_worker {
            assert_eq!(w.walks, 1000);
        }
    }

    #[test]
    fn out_of_range_worker_counts_aggregate_only() {
        let p = ProgressCounters::new(1);
        p.record_walk(9, 1);
        let s = p.snapshot();
        assert_eq!(s.walks, 1);
        assert_eq!(s.per_worker[0].walks, 0);
    }

    #[test]
    fn zero_elapsed_reports_zero_rates() {
        let p = ProgressCounters::new(2);
        p.record_walk(0, 3);
        p.record_walk(1, 2);
        let s = p.snapshot_with_elapsed(0.0);
        assert_eq!(s.walks, 2);
        assert_eq!(s.walks_per_sec, 0.0);
        assert_eq!(s.steps_per_sec, 0.0);
    }

    #[test]
    fn degenerate_elapsed_never_yields_nan_or_inf() {
        let p = ProgressCounters::new(1);
        p.record_walk(0, 1);
        for elapsed in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let s = p.snapshot_with_elapsed(elapsed);
            assert!(s.walks_per_sec.is_finite(), "elapsed={elapsed}");
            assert!(s.steps_per_sec.is_finite(), "elapsed={elapsed}");
        }
        // A sane elapsed still divides through.
        let s = p.snapshot_with_elapsed(0.5);
        assert_eq!(s.walks_per_sec, 2.0);
        assert_eq!(s.steps_per_sec, 2.0);
    }

    #[test]
    fn worker_shares_sum_to_one() {
        let p = ProgressCounters::new(4);
        p.record_walk(0, 1);
        p.record_walk(0, 1);
        p.record_walk(1, 1);
        p.record_walk(3, 1);
        let s = p.snapshot();
        let shares: Vec<f64> = s
            .per_worker
            .iter()
            .map(|w| w.walk_share(s.walks))
            .collect();
        assert_eq!(shares, vec![0.5, 0.25, 0.0, 0.25]);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_crawl_has_zero_shares() {
        let p = ProgressCounters::new(2);
        let s = p.snapshot();
        for w in &s.per_worker {
            assert_eq!(w.walk_share(s.walks), 0.0);
        }
    }

    #[test]
    fn render_mentions_throughput() {
        let p = ProgressCounters::new(2);
        p.record_walk(0, 4);
        let line = p.snapshot().render();
        assert!(line.contains("1 walks"), "{line}");
        assert!(line.contains("w0:1"), "{line}");
    }
}
