//! Zipf-distributed sampling over ranks `0..n`.
//!
//! Site popularity on the Web is approximately Zipfian, and the paper seeds
//! its walks from the Tranco top-10,000 list. The synthetic web uses this
//! sampler both to assign traffic weight to sites and to pick which
//! third-party trackers appear on a page (popular trackers such as
//! DoubleClick appear far more often than tail trackers — Table 3 shows one
//! redirector covering >11% of domain paths).

use crate::rng::DetRng;

/// A precomputed Zipf sampler over ranks `0..n` with exponent `s`.
///
/// Sampling is O(log n) via binary search over the cumulative distribution.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s` (typically ~1.0).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf requires at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point never quite reaching 1.0.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank in `0..n`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let x = rng.f64();
        // partition_point returns the first index whose cdf >= x.
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }

    /// The probability mass of a given rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_in_bounds() {
        let z = Zipf::new(100, 1.0);
        let mut rng = DetRng::new(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn head_dominates_tail() {
        let z = Zipf::new(1_000, 1.0);
        let mut rng = DetRng::new(2);
        let mut head = 0u32;
        let mut tail = 0u32;
        for _ in 0..50_000 {
            let r = z.sample(&mut rng);
            if r < 10 {
                head += 1;
            } else if r >= 500 {
                tail += 1;
            }
        }
        assert!(head > tail, "head {head} should beat tail {tail}");
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(50), 0.0);
    }

    #[test]
    fn pmf_monotone_decreasing() {
        let z = Zipf::new(20, 1.0);
        for r in 1..20 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = DetRng::new(3);
        assert_eq!(z.sample(&mut rng), 0);
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
