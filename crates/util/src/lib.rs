//! # cc-util
//!
//! Foundation utilities shared by every CrumbCruncher-RS crate:
//!
//! * [`rng`] — a small, fully deterministic random number generator
//!   (xoshiro256\*\* seeded through SplitMix64) with *forkable named
//!   streams*, so independent subsystems draw from independent streams and
//!   adding a draw in one subsystem never perturbs another.
//! * [`zipf`] — a Zipf-distributed sampler used to model site popularity
//!   (the Tranco list is approximately Zipfian).
//! * [`stats`] — summary statistics and the two-proportion Z test used by
//!   the paper's fingerprinting experiment (§3.5).
//! * [`strings`] — string algorithms referenced by the paper: the
//!   Ratcliff/Obershelp similarity used by prior work, Shannon entropy,
//!   and character-shape profiling.
//! * [`ids`] — generation of UID-shaped tokens (hex, base64url, UUID-like)
//!   for the synthetic web.
//! * [`counter`] — counting-map helpers (top-k tallies) used when building
//!   the paper's tables.
//! * [`intern`] — a deterministic string interner ([`IStr`]) for
//!   bounded-vocabulary hot strings (hosts, registered domains, labels):
//!   clone is a refcount bump, equality is usually a pointer compare, and
//!   serde output is byte-identical to a plain `String`.
//! * [`error`] — the workspace error taxonomy ([`CcError`], [`NetError`]):
//!   typed error classes the fault-tolerance layer can match on.
//! * [`progress`] — lock-free walk/step throughput counters with
//!   per-worker snapshots, shared by the parallel crawl executor and its
//!   monitors.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod counter;
pub mod error;
pub mod ids;
pub mod intern;
pub mod progress;
pub mod rng;
pub mod stats;
pub mod strings;
pub mod zipf;

pub use counter::Counter;
pub use error::{CcError, NetError};
pub use intern::{intern, IStr, Interner};
pub use progress::{ProgressCounters, ProgressSnapshot, WorkerSnapshot};
pub use rng::DetRng;
pub use stats::{two_proportion_z_test, ZTestResult};
pub use zipf::Zipf;
