//! Deterministic string interning for bounded-vocabulary hot strings.
//!
//! The crawler compares and clones the same small set of strings millions of
//! times per run: hostnames, registered domains, crawler labels, token names.
//! [`IStr`] wraps those in a shared `Arc<str>` handed out by a process-global
//! interner, so
//!
//! - cloning is a reference-count bump instead of a heap copy, and
//! - equality between two interned copies of the same text is a pointer
//!   compare (with a content-compare fallback so `IStr` built from different
//!   interner generations, or compared across tests, still behaves like a
//!   plain string).
//!
//! Determinism: interning never observes insertion order. `IStr` hashes,
//! compares, orders, and serializes exactly like the `str` it wraps, so a
//! dataset built from interned strings is byte-identical to one built from
//! owned `String`s. The interner itself is only an allocation cache.
//!
//! Cardinality rule (see DESIGN.md "Performance"): intern only values drawn
//! from a *bounded* vocabulary — hostnames of the generated world, registered
//! domains, crawler/profile labels, query-parameter names. Never intern
//! minted UIDs, timestamps, or full URLs: the global table is never freed, so
//! unbounded inputs would leak for the life of the process.

use std::borrow::Borrow;
use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

/// Upper bound on per-thread read-through cache entries. The bounded
/// vocabulary (hostnames, domains, labels) stays far under this; the cap
/// only fires if a caller violates the cardinality rule, in which case
/// we drop the whole cache rather than pick eviction victims.
const LOCAL_CACHE_CAP: usize = 8192;

thread_local! {
    /// Per-thread read-through cache over the global interner. Holds
    /// clones of canonical `Arc<str>`s keyed by content, probed with
    /// `&str` through `Borrow<str>` — a hit costs one hash of a small
    /// string and zero locks.
    static LOCAL_CACHE: RefCell<HashSet<IStr>> = RefCell::new(HashSet::new());
}

/// An interned, immutable, cheaply clonable string.
///
/// Behaves like `&str`/`String` everywhere it matters: `Deref<Target = str>`,
/// `Display`, ordering and hashing by content, and transparent serde (it
/// serializes as a plain string and re-interns on deserialize).
#[derive(Clone)]
pub struct IStr(Arc<str>);

impl IStr {
    /// Intern `s` in the process-global table and return a shared handle.
    ///
    /// Repeat hits are served from a thread-local read-through cache:
    /// after a worker thread has seen a string once, re-interning it
    /// never touches a shard lock again. The cache holds clones of the
    /// canonical `Arc`s, so every path still hands out the same
    /// allocation (pointer equality across threads is preserved).
    pub fn new(s: &str) -> Self {
        LOCAL_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(hit) = cache.get(s) {
                return hit.clone();
            }
            let interned = global().intern(s);
            // The vocabulary rule (bounded inputs only) bounds the global
            // table; the cap below is just belt-and-braces so a rogue
            // caller can't bloat every thread too.
            if cache.len() >= LOCAL_CACHE_CAP {
                cache.clear();
            }
            cache.insert(interned.clone());
            interned
        })
    }

    /// View the interned text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether two handles share the same allocation (same interner entry).
    ///
    /// This is an implementation detail exposed for tests; equality via
    /// `==` is what callers should use.
    pub fn ptr_eq(a: &IStr, b: &IStr) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

/// Intern `s` in the process-global table (convenience for [`IStr::new`]).
pub fn intern(s: &str) -> IStr {
    IStr::new(s)
}

impl PartialEq for IStr {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for IStr {}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for IStr {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl PartialEq<IStr> for str {
    fn eq(&self, other: &IStr) -> bool {
        self == &*other.0
    }
}

impl PartialEq<IStr> for &str {
    fn eq(&self, other: &IStr) -> bool {
        *self == &*other.0
    }
}

impl PartialEq<IStr> for String {
    fn eq(&self, other: &IStr) -> bool {
        self.as_str() == &*other.0
    }
}

impl Hash for IStr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with `str`'s hash so maps keyed by `IStr` can be probed
        // with `&str` through `Borrow<str>`.
        self.0.hash(state);
    }
}

impl PartialOrd for IStr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IStr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(&other.0)
        }
    }
}

impl Deref for IStr {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for IStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for IStr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&*self.0, f)
    }
}

impl fmt::Debug for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> Self {
        IStr::new(s)
    }
}

impl From<String> for IStr {
    fn from(s: String) -> Self {
        IStr::new(&s)
    }
}

impl Default for IStr {
    fn default() -> Self {
        IStr::new("")
    }
}

impl serde::Serialize for IStr {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.0.to_string())
    }
}

impl serde::Deserialize for IStr {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::String(s) => Ok(IStr::new(s)),
            other => Err(serde::DeError::expected("a string", other)),
        }
    }
}

/// Sharded interning table. Sharding keeps lock contention negligible when
/// many crawl workers intern concurrently; determinism is unaffected because
/// the table is pure cache (which shard a string lands in never leaks into
/// any output).
pub struct Interner {
    shards: [Mutex<HashSet<Arc<str>>>; SHARDS],
}

const SHARDS: usize = 16;

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            shards: std::array::from_fn(|_| Mutex::new(HashSet::new())),
        }
    }

    /// Intern `s`, returning the canonical shared handle for its content.
    pub fn intern(&self, s: &str) -> IStr {
        let shard = &self.shards[Self::shard_of(s)];
        let mut set = shard.lock().expect("interner shard poisoned");
        if let Some(existing) = set.get(s) {
            return IStr(Arc::clone(existing));
        }
        let arc: Arc<str> = Arc::from(s);
        set.insert(Arc::clone(&arc));
        IStr(arc)
    }

    /// Number of distinct strings currently interned (all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("interner shard poisoned").len())
            .sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_of(s: &str) -> usize {
        // FNV-1a over the bytes; independent of the HashSet's hasher so a
        // pathological std-hash interaction can't pile everything into one
        // shard.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h as usize) % SHARDS
    }
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

fn global() -> &'static Interner {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(Interner::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trips_content() {
        let a = intern("www.example.com");
        assert_eq!(a.as_str(), "www.example.com");
        assert_eq!(a, "www.example.com");
        assert_eq!(a, String::from("www.example.com"));
    }

    #[test]
    fn same_content_shares_allocation() {
        let a = intern("shared.example");
        let b = intern("shared.example");
        assert!(IStr::ptr_eq(&a, &b));
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_content_differs() {
        assert_ne!(intern("a.example"), intern("b.example"));
    }

    #[test]
    fn orders_and_hashes_like_str() {
        let mut by_istr: BTreeMap<IStr, u32> = BTreeMap::new();
        let mut by_string: BTreeMap<String, u32> = BTreeMap::new();
        for (i, s) in ["zeta", "alpha", "mid", "alpha"].iter().enumerate() {
            by_istr.insert(intern(s), i as u32);
            by_string.insert(s.to_string(), i as u32);
        }
        let a: Vec<_> = by_istr.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let b: Vec<_> = by_string.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn map_lookup_by_str_works() {
        let mut m: std::collections::HashMap<IStr, u32> = std::collections::HashMap::new();
        m.insert(intern("key.example"), 7);
        assert_eq!(m.get("key.example"), Some(&7));
    }

    #[test]
    fn serde_matches_plain_string() {
        let a = intern("t0.example");
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(json, serde_json::to_string("t0.example").unwrap());
        let back: IStr = serde_json::from_str(&json).unwrap();
        assert!(IStr::ptr_eq(&a, &back));
    }

    #[test]
    fn thread_cache_preserves_cross_thread_sharing() {
        // The read-through cache must hand out the *canonical* Arc, so
        // handles interned on different threads still share one
        // allocation.
        let here = intern("cache.cross-thread.example");
        let there = std::thread::spawn(|| intern("cache.cross-thread.example"))
            .join()
            .unwrap();
        assert!(IStr::ptr_eq(&here, &there));
        // And repeat interns on the same thread are cache hits that
        // still alias the same allocation.
        assert!(IStr::ptr_eq(&here, &intern("cache.cross-thread.example")));
    }

    #[test]
    fn local_interner_is_isolated() {
        let local = Interner::new();
        assert!(local.is_empty());
        let a = local.intern("only.local");
        let b = local.intern("only.local");
        assert!(IStr::ptr_eq(&a, &b));
        assert_eq!(local.len(), 1);
        // A global handle for the same text is content-equal even though it
        // comes from a different table.
        assert_eq!(a, intern("only.local"));
    }
}
