//! Deterministic, forkable random number generation.
//!
//! CrumbCruncher-RS must be reproducible bit-for-bit: the synthetic web, the
//! crawlers' random walks, and the fault injection all draw randomness, and a
//! test that fails must fail identically on every run. We therefore implement
//! our own xoshiro256\*\* generator (public-domain algorithm by Blackman and
//! Vigna) seeded through SplitMix64, rather than relying on `StdRng`, whose
//! algorithm is explicitly *not* stable across `rand` releases.
//!
//! The generator supports **named forking**: `rng.fork("dns")` derives an
//! independent stream keyed by the label. Subsystems that fork their own
//! streams cannot perturb each other no matter how many values they draw,
//! which keeps experiments comparable as the code evolves.

use rand::RngCore;

/// SplitMix64 step; used for seeding and label hashing.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label, used to derive fork seeds.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A deterministic xoshiro256\*\* random number generator.
///
/// Implements [`rand::RngCore`], so the whole `rand` distribution toolbox
/// works on top of it while the underlying stream stays stable forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    ///
    /// The seed is expanded with SplitMix64 as recommended by the xoshiro
    /// authors; any seed (including zero) yields a well-mixed state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derive an independent generator for the given label.
    ///
    /// Forking consumes no state from `self`, so the order in which
    /// subsystems fork does not matter; only the (seed, label) pair does.
    #[must_use]
    pub fn fork(&self, label: &str) -> Self {
        let mix = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ fnv1a(label.as_bytes());
        DetRng::new(mix)
    }

    /// Derive an independent generator for the given label and index.
    ///
    /// Convenient for per-item streams, e.g. one stream per site.
    #[must_use]
    pub fn fork_indexed(&self, label: &str, index: u64) -> Self {
        let base = self.fork(label);
        DetRng::new(base.s[0] ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output (xoshiro256\*\* scrambler).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "DetRng::below requires a nonzero bound");
        // Lemire's method: 128-bit multiply, reject the biased low zone.
        let mut x = self.next();
        let mut m = u128::from(x) * u128::from(bound);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next();
                m = u128::from(x) * u128::from(bound);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "DetRng::range requires lo <= hi");
        lo + self.below(hi - lo + 1)
    }

    /// Uniformly pick a reference from a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "DetRng::pick on an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Uniformly pick an index into a non-empty collection of length `len`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Sample an index from a discrete distribution given by `weights`.
    ///
    /// Weights need not be normalized. Zero-total weights fall back to a
    /// uniform draw.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index on empty weights");
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return self.index(weights.len());
        }
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Geometric-ish draw: returns the number of successes before the first
    /// failure, capped at `cap`. Used for redirect-chain lengths.
    pub fn geometric(&mut self, p_continue: f64, cap: usize) -> usize {
        let mut n = 0;
        while n < cap && self.chance(p_continue) {
            n += 1;
        }
        n
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_order_independent() {
        let root = DetRng::new(7);
        let mut f1 = root.fork("dns");
        let _unused = root.fork("web");
        let mut f2 = root.fork("dns");
        for _ in 0..100 {
            assert_eq!(f1.next(), f2.next());
        }
    }

    #[test]
    fn fork_labels_independent() {
        let root = DetRng::new(7);
        let mut a = root.fork("alpha");
        let mut b = root.fork("beta");
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn fork_indexed_streams_differ() {
        let root = DetRng::new(9);
        let mut a = root.fork_indexed("site", 0);
        let mut b = root.fork_indexed("site", 1);
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_bounds_and_roughly_uniform() {
        let mut rng = DetRng::new(11);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            let v = rng.below(10);
            assert!(v < 10);
            buckets[v as usize] += 1;
        }
        for &b in &buckets {
            // Expect ~10k each; allow generous slack.
            assert!((9_000..11_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn range_inclusive() {
        let mut rng = DetRng::new(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = rng.range(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut rng = DetRng::new(13);
        for _ in 0..1_000 {
            let i = rng.weighted_index(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_index_zero_total_is_uniform() {
        let mut rng = DetRng::new(17);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[rng.weighted_index(&[0.0, 0.0, 0.0])] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_index_biased() {
        let mut rng = DetRng::new(19);
        let mut hits = [0u32; 2];
        for _ in 0..10_000 {
            hits[rng.weighted_index(&[9.0, 1.0])] += 1;
        }
        assert!(hits[0] > 8_000 && hits[1] < 2_000, "{hits:?}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    fn geometric_capped() {
        let mut rng = DetRng::new(29);
        for _ in 0..1_000 {
            assert!(rng.geometric(0.99, 4) <= 4);
        }
        assert_eq!(rng.geometric(0.0, 10), 0);
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = DetRng::new(31);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
