//! The workspace error taxonomy.
//!
//! Fault-tolerant crawling needs to *match on error class*: a retry loop
//! must distinguish a transient `ECONNRESET` (back off and try again) from
//! a structural failure like an unknown host (give up immediately). The
//! original code carried `String` errors (`CliError(String)`, stringly
//! `error` fields) that made that impossible. [`CcError`] is the single
//! workspace-wide error enum: every crate converts into it, and
//! [`CcError::is_transient`] is the classification the retry policy keys
//! on.
//!
//! [`NetError`] lives here (rather than in `cc-net`) so that the lowest
//! layer of the workspace can name it as a `CcError` variant without a
//! dependency cycle; `cc-net` re-exports it under its historical path.

use serde::{Deserialize, Serialize};

/// Simulated network error kinds (the classes named in the paper: §3.3
/// "ECONNREFUSED, ECONNRESET, etc.").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetError {
    /// Connection refused by the peer.
    ConnRefused,
    /// Connection reset mid-handshake.
    ConnReset,
    /// Connection timed out.
    TimedOut,
    /// Name resolution failed.
    NameResolution,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NetError::ConnRefused => "ECONNREFUSED",
            NetError::ConnReset => "ECONNRESET",
            NetError::TimedOut => "ETIMEDOUT",
            NetError::NameResolution => "EAI_NONAME",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NetError {}

/// The workspace error enum.
///
/// Variants group into three classes:
///
/// * **transient** — connection-level faults that a retry with backoff may
///   outlast ([`CcError::is_transient`] returns `true`);
/// * **structural** — failures retrying cannot fix (DNS for a host outside
///   the world, redirect loops, an open circuit breaker's fast-fail);
/// * **operational** — configuration, CLI, I/O, and serialization errors
///   raised outside the crawl itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcError {
    /// Connection-level failure (ECONNREFUSED and friends).
    Net(NetError),
    /// DNS failure for a host.
    Dns(String),
    /// The host is outside the simulated world.
    UnknownHost(String),
    /// Redirect chain exceeded the hop limit (the offending URL).
    TooManyRedirects(String),
    /// The per-host circuit breaker is open: failing fast without a
    /// connection attempt. Carries the host and the error that tripped it.
    BreakerOpen {
        /// The host whose breaker is open.
        host: String,
        /// The connection error that tripped the breaker.
        last: NetError,
    },
    /// Invalid configuration (builder validation, bad combinations).
    Config(String),
    /// Command-line usage error.
    Cli(String),
    /// Filesystem error with the path it concerns.
    Io {
        /// The path being read or written.
        path: String,
        /// The rendered OS error.
        msg: String,
    },
    /// JSON (de)serialization error.
    Serde(String),
    /// Checkpoint file problems: bad schema, config mismatch, truncation.
    Checkpoint(String),
    /// Wire-protocol violation on a framed connection (bad magic, unknown
    /// frame type, oversized or truncated payload, version mismatch).
    Protocol(String),
}

impl CcError {
    /// Whether a retry with backoff could plausibly clear this error.
    ///
    /// Only connection-level faults are transient; an open breaker is an
    /// explicit *fast-fail* signal and structural/operational errors never
    /// recover by retrying.
    pub fn is_transient(&self) -> bool {
        matches!(self, CcError::Net(_))
    }

    /// Convenience constructor for I/O errors.
    pub fn io(path: impl Into<String>, err: impl std::fmt::Display) -> Self {
        CcError::Io {
            path: path.into(),
            msg: err.to_string(),
        }
    }

    /// Convenience constructor for CLI usage errors.
    pub fn cli(msg: impl Into<String>) -> Self {
        CcError::Cli(msg.into())
    }
}

impl std::fmt::Display for CcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Keep the historical `NavError` renderings: recorded walk
            // terminations embed these strings in released datasets.
            CcError::Net(e) => write!(f, "network error: {e}"),
            CcError::Dns(h) => write!(f, "DNS failure for {h}"),
            CcError::UnknownHost(h) => write!(f, "unknown host {h}"),
            CcError::TooManyRedirects(u) => write!(f, "too many redirects at {u}"),
            CcError::BreakerOpen { host, last } => {
                write!(f, "circuit open for {host} (last error: {last})")
            }
            CcError::Config(m) => write!(f, "invalid configuration: {m}"),
            CcError::Cli(m) => f.write_str(m),
            CcError::Io { path, msg } => write!(f, "{path}: {msg}"),
            CcError::Serde(m) => write!(f, "serialization error: {m}"),
            CcError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            CcError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for CcError {}

impl From<NetError> for CcError {
    fn from(e: NetError) -> Self {
        CcError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(NetError::ConnRefused.to_string(), "ECONNREFUSED");
        assert_eq!(NetError::ConnReset.to_string(), "ECONNRESET");
        assert_eq!(NetError::TimedOut.to_string(), "ETIMEDOUT");
        assert_eq!(NetError::NameResolution.to_string(), "EAI_NONAME");
    }

    #[test]
    fn net_errors_render_like_the_old_nav_error() {
        let e: CcError = NetError::ConnReset.into();
        assert_eq!(e.to_string(), "network error: ECONNRESET");
    }

    #[test]
    fn transience_classification() {
        assert!(CcError::Net(NetError::ConnRefused).is_transient());
        assert!(CcError::Net(NetError::TimedOut).is_transient());
        assert!(!CcError::Dns("x.com".into()).is_transient());
        assert!(!CcError::UnknownHost("x.com".into()).is_transient());
        assert!(!CcError::TooManyRedirects("https://x.com/".into()).is_transient());
        assert!(!CcError::BreakerOpen {
            host: "x.com".into(),
            last: NetError::ConnRefused,
        }
        .is_transient());
        assert!(!CcError::Config("bad".into()).is_transient());
        assert!(!CcError::Protocol("bad magic".into()).is_transient());
    }

    #[test]
    fn protocol_errors_render_with_prefix() {
        let e = CcError::Protocol("unknown frame type 0x7f".into());
        assert_eq!(e.to_string(), "protocol error: unknown frame type 0x7f");
    }

    #[test]
    fn breaker_open_names_the_host() {
        let e = CcError::BreakerOpen {
            host: "r.trk.io".into(),
            last: NetError::ConnRefused,
        };
        let s = e.to_string();
        assert!(s.contains("r.trk.io") && s.contains("ECONNREFUSED"), "{s}");
    }

    #[test]
    fn constructors() {
        let e = CcError::io("/tmp/x", "permission denied");
        assert_eq!(e.to_string(), "/tmp/x: permission denied");
        assert_eq!(CcError::cli("no command given").to_string(), "no command given");
    }
}
