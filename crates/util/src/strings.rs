//! String algorithms used across the pipeline.
//!
//! * [`ratcliff_obershelp`] — the gestalt pattern-matching similarity that
//!   prior work (Acar et al., Englehardt et al., Koop et al.) used to decide
//!   whether two cookie values were "the same" UID while allowing them to
//!   differ by 33–45%. CrumbCruncher itself requires exact equality (§8.1);
//!   we implement the metric so the prior-work baselines can be reproduced
//!   and ablated.
//! * [`shannon_entropy`] — bits/char entropy, a standard UID-ness signal.
//! * [`CharProfile`] — character-class shape profiling used by the token
//!   heuristics (is a value hex-ish? digits-only? word-like?).

use serde::{Deserialize, Serialize};

/// Ratcliff/Obershelp similarity in `[0, 1]`.
///
/// Defined as `2 * M / (|a| + |b|)` where `M` is the total length of
/// recursively matched longest common substrings. Two empty strings are
/// defined to have similarity 1.
pub fn ratcliff_obershelp(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let matched = matches_rec(&a, &b);
    2.0 * matched as f64 / (a.len() + b.len()) as f64
}

/// Recursively count matched characters: find the longest common substring,
/// then recurse on the pieces to its left and right.
fn matches_rec(a: &[char], b: &[char]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let (ai, bi, len) = longest_common_substring(a, b);
    if len == 0 {
        return 0;
    }
    len + matches_rec(&a[..ai], &b[..bi]) + matches_rec(&a[ai + len..], &b[bi + len..])
}

/// Longest common substring via dynamic programming over a rolling row.
/// Returns `(start_in_a, start_in_b, length)`.
fn longest_common_substring(a: &[char], b: &[char]) -> (usize, usize, usize) {
    let mut best = (0usize, 0usize, 0usize);
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        for (j, &cb) in b.iter().enumerate() {
            if ca == cb {
                cur[j + 1] = prev[j] + 1;
                if cur[j + 1] > best.2 {
                    best = (i + 1 - cur[j + 1], j + 1 - cur[j + 1], cur[j + 1]);
                }
            } else {
                cur[j + 1] = 0;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
        cur.iter_mut().for_each(|v| *v = 0);
    }
    best
}

/// Shannon entropy of the byte distribution, in bits per byte.
pub fn shannon_entropy(s: &str) -> f64 {
    if s.is_empty() {
        return 0.0;
    }
    let mut counts = [0usize; 256];
    for &b in s.as_bytes() {
        counts[b as usize] += 1;
    }
    let n = s.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Character-class profile of a string: how many characters fall in each
/// coarse class. Cheap shape signal for the token heuristics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharProfile {
    /// ASCII letters.
    pub letters: usize,
    /// ASCII digits.
    pub digits: usize,
    /// Hex digits (subset of letters+digits).
    pub hex: usize,
    /// `-` and `_` separators.
    pub separators: usize,
    /// Anything else.
    pub other: usize,
    /// Total length in chars.
    pub len: usize,
}

impl CharProfile {
    /// Profile a string.
    pub fn of(s: &str) -> Self {
        let mut p = CharProfile::default();
        for c in s.chars() {
            p.len += 1;
            if c.is_ascii_alphabetic() {
                p.letters += 1;
                if c.is_ascii_hexdigit() {
                    p.hex += 1;
                }
            } else if c.is_ascii_digit() {
                p.digits += 1;
                p.hex += 1;
            } else if c == '-' || c == '_' {
                p.separators += 1;
            } else {
                p.other += 1;
            }
        }
        p
    }

    /// Is every character a hex digit (and the string non-empty)?
    pub fn all_hex(&self) -> bool {
        self.len > 0 && self.hex == self.len
    }

    /// Is every character a digit?
    pub fn all_digits(&self) -> bool {
        self.len > 0 && self.digits == self.len
    }

    /// Fraction of characters that are digits.
    pub fn digit_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.digits as f64 / self.len as f64
        }
    }

    /// Does the string look like prose: mostly letters with separators?
    pub fn word_like(&self) -> bool {
        self.len > 0 && self.other == 0 && self.digits == 0 && self.letters > 0
    }
}

/// Split a string on common token delimiters (`-`, `_`, `.`, space, `+`).
pub fn split_words(s: &str) -> Vec<&str> {
    s.split(['-', '_', '.', ' ', '+'])
        .filter(|w| !w.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ro_identical() {
        assert!((ratcliff_obershelp("abcdef", "abcdef") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ro_disjoint() {
        assert_eq!(ratcliff_obershelp("aaaa", "bbbb"), 0.0);
    }

    #[test]
    fn ro_empty_rules() {
        assert_eq!(ratcliff_obershelp("", ""), 1.0);
        assert_eq!(ratcliff_obershelp("a", ""), 0.0);
        assert_eq!(ratcliff_obershelp("", "a"), 0.0);
    }

    #[test]
    fn ro_classic_example() {
        // The canonical WIKIMEDIA/WIKIMANIA example: matched blocks are
        // "WIKIM" (5) and "IA" (2), so similarity = 2*7/18 = 0.7778.
        let s = ratcliff_obershelp("WIKIMEDIA", "WIKIMANIA");
        assert!((s - 14.0 / 18.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn ro_symmetric_enough() {
        // The metric is not guaranteed perfectly symmetric in pathological
        // cases, but should be for typical token strings.
        let a = "user-12345-abcdef";
        let b = "user-98765-abcdef";
        assert!((ratcliff_obershelp(a, b) - ratcliff_obershelp(b, a)).abs() < 1e-9);
    }

    #[test]
    fn ro_partial_change() {
        // A UID whose suffix changed by a third should sit near 2/3.
        let s = ratcliff_obershelp("aaaaaaXXX", "aaaaaaYYY");
        assert!((s - 2.0 / 3.0).abs() < 0.01, "{s}");
    }

    #[test]
    fn lcs_finds_longest() {
        let a: Vec<char> = "xxabcyy".chars().collect();
        let b: Vec<char> = "zzabcqq".chars().collect();
        let (ai, bi, len) = longest_common_substring(&a, &b);
        assert_eq!((ai, bi, len), (2, 2, 3));
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(shannon_entropy(""), 0.0);
        assert_eq!(shannon_entropy("aaaa"), 0.0);
        let uid = "f3a9c17e2b4d5a60";
        assert!(shannon_entropy(uid) > 3.0);
        // Uniform 2-symbol string → 1 bit.
        assert!((shannon_entropy("abababab") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn profile_hex() {
        let p = CharProfile::of("deadbeef1234");
        assert!(p.all_hex());
        assert!(!p.all_digits());
        let q = CharProfile::of("deadbeefg");
        assert!(!q.all_hex());
    }

    #[test]
    fn profile_word_like() {
        assert!(CharProfile::of("share_button").word_like());
        assert!(CharProfile::of("sweetmagnolias").word_like());
        assert!(!CharProfile::of("user123").word_like());
        assert!(!CharProfile::of("").word_like());
        assert!(!CharProfile::of("a b?").word_like());
    }

    #[test]
    fn profile_digit_fraction() {
        assert_eq!(CharProfile::of("").digit_fraction(), 0.0);
        assert!((CharProfile::of("a1").digit_fraction() - 0.5).abs() < 1e-12);
        assert!(CharProfile::of("20221025").all_digits());
    }

    #[test]
    fn split_words_basic() {
        assert_eq!(
            split_words("Dental_internal_whitepaper_topic"),
            vec!["Dental", "internal", "whitepaper", "topic"]
        );
        assert_eq!(split_words("en-US"), vec!["en", "US"]);
        assert_eq!(split_words("__"), Vec::<&str>::new());
    }
}
