//! Statistics used by the measurement study.
//!
//! The paper's fingerprinting experiment (§3.5) compares the proportion of
//! multi-crawler UID-smuggling cases between sites that fingerprint and
//! sites that do not, using a **two-proportion Z test**. We implement the
//! test (with a numerically solid normal CDF) plus the small summary
//! helpers the analysis crate needs.

use serde::{Deserialize, Serialize};

/// Result of a two-proportion Z test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZTestResult {
    /// Proportion observed in the first group.
    pub p1: f64,
    /// Proportion observed in the second group.
    pub p2: f64,
    /// The Z statistic (difference in units of pooled standard error).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl ZTestResult {
    /// Whether the difference is significant at the given alpha level.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-proportion Z test for `x1` successes out of `n1` versus `x2` out of
/// `n2`, using the pooled-proportion standard error.
///
/// Returns `None` when either sample is empty or the pooled proportion is
/// degenerate (0 or 1), where the statistic is undefined.
pub fn two_proportion_z_test(x1: u64, n1: u64, x2: u64, n2: u64) -> Option<ZTestResult> {
    if n1 == 0 || n2 == 0 {
        return None;
    }
    let (x1f, n1f) = (x1 as f64, n1 as f64);
    let (x2f, n2f) = (x2 as f64, n2 as f64);
    let p1 = x1f / n1f;
    let p2 = x2f / n2f;
    let pooled = (x1f + x2f) / (n1f + n2f);
    if pooled <= 0.0 || pooled >= 1.0 {
        return None;
    }
    let se = (pooled * (1.0 - pooled) * (1.0 / n1f + 1.0 / n2f)).sqrt();
    let z = (p1 - p2) / se;
    let p_value = 2.0 * (1.0 - normal_cdf(z.abs()));
    Some(ZTestResult { p1, p2, z, p_value })
}

/// Standard normal CDF via the complementary error function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function, Numerical-Recipes rational approximation.
///
/// Accurate to about 1.2e-7 everywhere, which is ample for significance
/// testing.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Mean of a slice; `None` when empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population variance of a slice; `None` when empty.
pub fn variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64)
}

/// A proportion expressed as `hits / total`, rendering helpers included.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Proportion {
    /// Numerator.
    pub hits: u64,
    /// Denominator.
    pub total: u64,
}

impl Proportion {
    /// Build a proportion.
    pub fn new(hits: u64, total: u64) -> Self {
        Proportion { hits, total }
    }

    /// The fraction as an `f64` (0.0 when the denominator is zero).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// The fraction as a percentage.
    pub fn percent(&self) -> f64 {
        self.fraction() * 100.0
    }
}

impl std::fmt::Display for Proportion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{} ({:.2}%)", self.hits, self.total, self.percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_known_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.959964) - 0.025).abs() < 1e-4);
        assert!(normal_cdf(6.0) > 0.999_999);
        assert!(normal_cdf(-6.0) < 1e-6);
    }

    #[test]
    fn erfc_symmetry() {
        for x in [-2.0, -0.5, 0.0, 0.3, 1.7] {
            let s = erfc(x) + erfc(-x);
            assert!((s - 2.0).abs() < 1e-6, "erfc symmetry at {x}: {s}");
        }
    }

    #[test]
    fn z_test_identical_proportions_not_significant() {
        let r = two_proportion_z_test(50, 100, 500, 1000).unwrap();
        assert!(r.z.abs() < 1e-9);
        assert!((r.p_value - 1.0).abs() < 1e-6);
        assert!(!r.significant(0.05));
    }

    #[test]
    fn z_test_clearly_different() {
        let r = two_proportion_z_test(90, 100, 10, 100).unwrap();
        assert!(r.z > 5.0);
        assert!(r.significant(0.001));
    }

    #[test]
    fn z_test_paper_fingerprint_shape() {
        // §3.5: 44% multi-crawler in the fingerprinting group vs 52% in the
        // non-fingerprinting group; the paper reports significance. With
        // group sizes in the hundreds, the test should at least produce a
        // negative z (fingerprinting group lower).
        let r = two_proportion_z_test(44, 100, 520, 1000).unwrap();
        assert!(r.p1 < r.p2);
        assert!(r.z < 0.0);
    }

    #[test]
    fn z_test_degenerate_cases() {
        assert!(two_proportion_z_test(0, 0, 1, 10).is_none());
        assert!(two_proportion_z_test(1, 10, 0, 0).is_none());
        assert!(two_proportion_z_test(0, 10, 0, 10).is_none());
        assert!(two_proportion_z_test(10, 10, 10, 10).is_none());
    }

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(variance(&[1.0, 1.0, 1.0]), Some(0.0));
        assert!((variance(&[1.0, 3.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn proportion_rendering() {
        let p = Proportion::new(850, 10_814);
        assert!((p.percent() - 7.86).abs() < 0.01);
        assert_eq!(Proportion::new(1, 0).fraction(), 0.0);
        assert_eq!(format!("{}", Proportion::new(1, 4)), "1/4 (25.00%)");
    }
}
