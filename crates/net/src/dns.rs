//! Simulated DNS: `A` and `CNAME` records with chain resolution.
//!
//! Two study features depend on DNS:
//!
//! 1. ordinary resolution — a crawler "connects" to a host only if it
//!    resolves (unknown hosts fail like the paper's `ECONNREFUSED` class);
//! 2. **CNAME cloaking** (§8.3) — a first-party subdomain such as
//!    `metrics.news-site.com` aliasing to a tracker's canonical name. The
//!    analysis extension flags navigation hops whose *apparent* first party
//!    hides a third-party canonical owner.

use cc_url::registered_domain;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A single DNS record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsRecord {
    /// Terminal address record. The `u32` is an opaque simulated IPv4.
    A(u32),
    /// Alias to another name.
    Cname(String),
}

/// The outcome of resolving a name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resolution {
    /// The name originally queried.
    pub queried: String,
    /// Every name in the CNAME chain, starting with the queried name and
    /// ending with the canonical name that held the `A` record.
    pub chain: Vec<String>,
    /// The resolved address.
    pub address: u32,
}

impl Resolution {
    /// The canonical (final) name.
    pub fn canonical(&self) -> &str {
        self.chain
            .last()
            .map(String::as_str)
            .unwrap_or(&self.queried)
    }

    /// Whether this resolution is a **cloaking** alias: the queried name and
    /// the canonical name live in different registered domains.
    pub fn is_cloaked(&self) -> bool {
        registered_domain(&self.queried) != registered_domain(self.canonical())
    }
}

/// Resolution errors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsError {
    /// No record for the name.
    NxDomain(String),
    /// CNAME chain exceeded the hop limit (loop or pathological chain).
    ChainTooLong(String),
}

impl std::fmt::Display for DnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnsError::NxDomain(n) => write!(f, "NXDOMAIN: {n}"),
            DnsError::ChainTooLong(n) => write!(f, "CNAME chain too long resolving {n}"),
        }
    }
}

impl std::error::Error for DnsError {}

/// Maximum CNAME hops before declaring a loop.
const MAX_CHAIN: usize = 8;

/// An in-memory DNS zone database.
#[derive(Debug, Clone, Default)]
pub struct DnsDb {
    records: HashMap<String, DnsRecord>,
    next_addr: u32,
}

impl DnsDb {
    /// New empty database.
    pub fn new() -> Self {
        DnsDb::default()
    }

    /// Register an `A` record with an auto-assigned address; returns the
    /// address. Re-registering a name keeps its existing address.
    pub fn register(&mut self, name: &str) -> u32 {
        let name = name.to_ascii_lowercase();
        if let Some(DnsRecord::A(addr)) = self.records.get(&name) {
            return *addr;
        }
        self.next_addr += 1;
        let addr = self.next_addr;
        self.records.insert(name, DnsRecord::A(addr));
        addr
    }

    /// Register a CNAME alias `name -> target`.
    pub fn register_cname(&mut self, name: &str, target: &str) {
        self.records.insert(
            name.to_ascii_lowercase(),
            DnsRecord::Cname(target.to_ascii_lowercase()),
        );
    }

    /// Whether any record exists for the name.
    pub fn contains(&self, name: &str) -> bool {
        self.records.contains_key(&name.to_ascii_lowercase())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Resolve a name, following CNAME chains.
    pub fn resolve(&self, name: &str) -> Result<Resolution, DnsError> {
        let queried = name.to_ascii_lowercase();
        let mut chain = vec![queried.clone()];
        let mut cur = queried.clone();
        for _ in 0..MAX_CHAIN {
            match self.records.get(&cur) {
                Some(DnsRecord::A(addr)) => {
                    return Ok(Resolution {
                        queried,
                        chain,
                        address: *addr,
                    });
                }
                Some(DnsRecord::Cname(target)) => {
                    cur = target.clone();
                    chain.push(cur.clone());
                }
                None => return Err(DnsError::NxDomain(cur)),
            }
        }
        Err(DnsError::ChainTooLong(queried))
    }

    /// All names whose resolution is cloaked (queried vs canonical registered
    /// domains differ). Sorted for determinism.
    pub fn cloaked_names(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .records
            .keys()
            .filter(|name| self.resolve(name).map(|r| r.is_cloaked()).unwrap_or(false))
            .cloned()
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_resolve() {
        let mut db = DnsDb::new();
        let addr = db.register("example.com");
        let r = db.resolve("EXAMPLE.com").unwrap();
        assert_eq!(r.address, addr);
        assert_eq!(r.chain, vec!["example.com"]);
        assert!(!r.is_cloaked());
    }

    #[test]
    fn register_is_idempotent() {
        let mut db = DnsDb::new();
        let a1 = db.register("a.com");
        let a2 = db.register("a.com");
        assert_eq!(a1, a2);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn nxdomain() {
        let db = DnsDb::new();
        assert_eq!(
            db.resolve("nope.com"),
            Err(DnsError::NxDomain("nope.com".into()))
        );
        assert!(db.is_empty());
    }

    #[test]
    fn cname_chain() {
        let mut db = DnsDb::new();
        db.register("tracker.net");
        db.register_cname("metrics.news.com", "edge.tracker.net");
        db.register_cname("edge.tracker.net", "tracker.net");
        let r = db.resolve("metrics.news.com").unwrap();
        assert_eq!(
            r.chain,
            vec!["metrics.news.com", "edge.tracker.net", "tracker.net"]
        );
        assert_eq!(r.canonical(), "tracker.net");
        assert!(r.is_cloaked());
    }

    #[test]
    fn same_site_cname_not_cloaked() {
        let mut db = DnsDb::new();
        db.register("cdn.example.com");
        db.register_cname("www.example.com", "cdn.example.com");
        let r = db.resolve("www.example.com").unwrap();
        assert!(!r.is_cloaked());
    }

    #[test]
    fn cname_loop_detected() {
        let mut db = DnsDb::new();
        db.register_cname("a.com", "b.com");
        db.register_cname("b.com", "a.com");
        assert_eq!(
            db.resolve("a.com"),
            Err(DnsError::ChainTooLong("a.com".into()))
        );
    }

    #[test]
    fn dangling_cname_is_nxdomain() {
        let mut db = DnsDb::new();
        db.register_cname("x.com", "gone.com");
        assert_eq!(
            db.resolve("x.com"),
            Err(DnsError::NxDomain("gone.com".into()))
        );
    }

    #[test]
    fn cloaked_names_listing() {
        let mut db = DnsDb::new();
        db.register("tracker.net");
        db.register("publisher.com");
        db.register_cname("stats.publisher.com", "tracker.net");
        db.register_cname("www.publisher.com", "publisher.com");
        assert_eq!(db.cloaked_names(), vec!["stats.publisher.com".to_string()]);
    }

    #[test]
    fn distinct_addresses() {
        let mut db = DnsDb::new();
        assert_ne!(db.register("a.com"), db.register("b.com"));
    }
}
