//! Deterministic retry with exponential backoff.
//!
//! The paper's crawlers survived the real Web by retrying stalled loads and
//! re-synchronizing; here the analogue is a [`RetryPolicy`] that a browser
//! applies to transient connection faults. Everything is deterministic:
//! backoff jitter comes from a forked [`DetRng`] stream and waits advance
//! the browser's *simulated* clock, so a crawl with retries enabled is
//! byte-identical whether it runs serially or on eight workers.
//!
//! [`RecoveryStats`] is the per-walk accounting of what the policy did —
//! the raw material for the crawl-level `FailureLedger`.

use cc_util::DetRng;
use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// How a browser responds to transient connection faults.
///
/// `attempts` counts *total* tries including the first, so `attempts: 1`
/// means "never retry" (see [`RetryPolicy::disabled`], the conservative
/// default of `CrawlConfig`). Backoff before retry *k* (1-based) is
///
/// ```text
/// base_backoff · multiplier^(k-1) · (1 + jitter · u)     u ∈ [0, 1)
/// ```
///
/// where `u` is drawn from the browser's dedicated retry RNG stream. The
/// cumulative backoff is capped by `budget`: once a walk has waited that
/// much simulated time on retries, remaining attempts are forfeited.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total connection attempts per navigation hop (first try included).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimDuration,
    /// Exponential growth factor between consecutive backoffs.
    pub multiplier: u32,
    /// Jitter as a fraction of the deterministic backoff (0 = none).
    pub jitter: f64,
    /// Cumulative simulated-time budget for backoff waits per walk.
    pub budget: SimDuration,
}

impl RetryPolicy {
    /// The standard enabled preset: four attempts, 250 ms base backoff
    /// doubling each retry, 50% jitter, a 10 s per-walk budget.
    ///
    /// Calibrated against the fault model's transient outage window
    /// (100 ms – 2 s): three backoffs cumulatively span ~1.75 s, enough to
    /// outlast most transient outages while hard outages still exhaust
    /// the policy quickly.
    pub fn standard() -> Self {
        RetryPolicy {
            attempts: 4,
            base_backoff: SimDuration::from_millis(250),
            multiplier: 2,
            jitter: 0.5,
            budget: SimDuration::from_secs(10),
        }
    }

    /// No retries at all: every connection fault is terminal, exactly the
    /// pre-fault-tolerance behavior.
    pub fn disabled() -> Self {
        RetryPolicy {
            attempts: 1,
            base_backoff: SimDuration::ZERO,
            multiplier: 1,
            jitter: 0.0,
            budget: SimDuration::ZERO,
        }
    }

    /// Whether the policy ever retries.
    pub fn enabled(&self) -> bool {
        self.attempts > 1
    }

    /// The backoff before retry `k` (1-based), drawing jitter from `rng`.
    ///
    /// Always consumes exactly one draw when jitter is configured, so the
    /// retry stream stays aligned across identical runs.
    pub fn backoff(&self, retry: u32, rng: &mut DetRng) -> SimDuration {
        let deterministic = self
            .base_backoff
            .as_millis()
            .saturating_mul(u64::from(self.multiplier).saturating_pow(retry.saturating_sub(1)));
        let jittered = if self.jitter > 0.0 {
            let u = rng.f64();
            deterministic + (deterministic as f64 * self.jitter * u) as u64
        } else {
            deterministic
        };
        SimDuration::from_millis(jittered)
    }

    /// Validate the policy (builder support).
    pub fn validate(&self) -> Result<(), String> {
        if self.attempts == 0 {
            return Err("retry attempts must be >= 1 (1 = no retries)".into());
        }
        if !(0.0..=1.0).contains(&self.jitter) {
            return Err(format!("retry jitter must be in [0, 1], got {}", self.jitter));
        }
        if self.enabled() && self.multiplier == 0 {
            return Err("retry multiplier must be >= 1".into());
        }
        Ok(())
    }
}

impl Default for RetryPolicy {
    /// The default is the *enabled* standard preset — the recommended
    /// configuration for new studies. `CrawlConfig::default()` opts out
    /// explicitly via [`RetryPolicy::disabled`] to keep historical
    /// datasets byte-stable.
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

/// Per-walk accounting of retry and breaker activity.
///
/// Deterministic per walk (everything derives from walk-keyed streams and
/// the walk's own simulated clock), so it merges commutatively into crawl
/// totals regardless of worker schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Connection attempts beyond the first, summed over the walk.
    pub retries: u64,
    /// Navigation hops that succeeded only after at least one retry.
    pub recovered: u64,
    /// Navigation hops that exhausted every attempt (or the budget).
    pub exhausted: u64,
    /// Circuit-breaker trips (closed → open transitions).
    pub breaker_trips: u64,
    /// Connection attempts skipped because a breaker was open.
    pub breaker_fast_fails: u64,
    /// Total simulated time spent waiting in backoff, milliseconds.
    pub backoff_ms: u64,
}

impl RecoveryStats {
    /// Fold another stats block into this one (commutative).
    pub fn absorb(&mut self, other: &RecoveryStats) {
        self.retries += other.retries;
        self.recovered += other.recovered;
        self.exhausted += other.exhausted;
        self.breaker_trips += other.breaker_trips;
        self.breaker_fast_fails += other.breaker_fast_fails;
        self.backoff_ms += other.backoff_ms;
    }

    /// True when no retry or breaker activity was recorded.
    pub fn is_empty(&self) -> bool {
        *self == RecoveryStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_retries() {
        let p = RetryPolicy::disabled();
        assert!(!p.enabled());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn standard_is_enabled_and_valid() {
        let p = RetryPolicy::standard();
        assert!(p.enabled());
        assert!(p.validate().is_ok());
        assert_eq!(p, RetryPolicy::default());
    }

    #[test]
    fn backoff_grows_exponentially_without_jitter() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::standard()
        };
        let mut rng = DetRng::new(1);
        assert_eq!(p.backoff(1, &mut rng), SimDuration::from_millis(250));
        assert_eq!(p.backoff(2, &mut rng), SimDuration::from_millis(500));
        assert_eq!(p.backoff(3, &mut rng), SimDuration::from_millis(1_000));
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy::standard();
        let mut a = DetRng::new(42).fork("retry");
        let mut b = DetRng::new(42).fork("retry");
        for k in 1..=3 {
            let d = p.backoff(k, &mut a);
            assert_eq!(d, p.backoff(k, &mut b), "same stream, same backoff");
            let det = 250u64 << (k - 1);
            assert!(d.as_millis() >= det && d.as_millis() < det + det / 2 + 1);
        }
    }

    #[test]
    fn validation_rejects_bad_policies() {
        let mut p = RetryPolicy::standard();
        p.attempts = 0;
        assert!(p.validate().is_err());
        let mut p = RetryPolicy::standard();
        p.jitter = 1.5;
        assert!(p.validate().is_err());
        let mut p = RetryPolicy::standard();
        p.multiplier = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn stats_absorb_commutes() {
        let a = RecoveryStats {
            retries: 3,
            recovered: 1,
            exhausted: 1,
            breaker_trips: 1,
            breaker_fast_fails: 2,
            backoff_ms: 1_750,
        };
        let b = RecoveryStats {
            retries: 5,
            recovered: 2,
            ..RecoveryStats::default()
        };
        let mut ab = a;
        ab.absorb(&b);
        let mut ba = b;
        ba.absorb(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.retries, 8);
        assert!(!ab.is_empty());
        assert!(RecoveryStats::default().is_empty());
    }

    #[test]
    fn policy_round_trips_through_serde() {
        let p = RetryPolicy::standard();
        let json = serde_json::to_string(&p).unwrap();
        let back: RetryPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
