//! A simple request-latency model.
//!
//! The paper's crawl pacing (a full 10,000-seeder crawl "takes approximately
//! three days" on twelve EC2 instances; each destination page is observed for
//! ten seconds) is reproduced on the simulated clock: each fetch advances
//! simulated time by a sampled latency, and each page visit by a dwell time.
//! Benchmarks use the model to keep workload timing realistic in shape.

use crate::time::SimDuration;
use cc_util::DetRng;

/// Log-normal-ish latency sampler (base + multiplicative jitter).
#[derive(Debug, Clone)]
pub struct LatencyModel {
    rng: DetRng,
    base_ms: u64,
    jitter_ms: u64,
}

impl LatencyModel {
    /// Build a model with a base latency and a jitter bound (both ms).
    pub fn new(rng: DetRng, base_ms: u64, jitter_ms: u64) -> Self {
        LatencyModel {
            rng,
            base_ms,
            jitter_ms,
        }
    }

    /// Defaults shaped like a transatlantic HTTP fetch: ~80ms ± 120ms tail.
    pub fn default_web(rng: DetRng) -> Self {
        LatencyModel::new(rng, 80, 120)
    }

    /// Sample one request latency.
    pub fn sample(&mut self) -> SimDuration {
        // Square the uniform draw to skew toward the base (long-tail-ish).
        let u = self.rng.f64();
        let jitter = (u * u * self.jitter_ms as f64) as u64;
        let d = SimDuration::from_millis(self.base_ms + jitter);
        // The *simulated* latency distribution — observation only, the
        // sampled value itself is untouched.
        cc_telemetry::observe_ms_id(
            cc_telemetry::HistogramId::NET_SIM_LATENCY,
            d.as_millis() as f64,
        );
        d
    }

    /// The paper's fixed ten-second post-navigation observation dwell (§3.1).
    pub fn page_dwell() -> SimDuration {
        SimDuration::from_secs(10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_bounds() {
        let mut m = LatencyModel::new(DetRng::new(1), 50, 100);
        for _ in 0..10_000 {
            let d = m.sample().as_millis();
            assert!((50..150).contains(&d), "latency {d}");
        }
    }

    #[test]
    fn jitter_skews_low() {
        let mut m = LatencyModel::new(DetRng::new(2), 0, 100);
        let mean: f64 = (0..10_000)
            .map(|_| m.sample().as_millis() as f64)
            .sum::<f64>()
            / 10_000.0;
        // E[u^2 * 100] = 100/3 ≈ 33.
        assert!((mean - 33.0).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn dwell_is_ten_seconds() {
        assert_eq!(LatencyModel::page_dwell(), SimDuration::from_secs(10));
    }

    #[test]
    fn deterministic() {
        let mut a = LatencyModel::default_web(DetRng::new(3));
        let mut b = LatencyModel::default_web(DetRng::new(3));
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }
}
