//! Per-host circuit breakers.
//!
//! A retry policy alone keeps hammering a host that is plainly down. The
//! [`CircuitBreaker`] cuts that short: after `failure_threshold`
//! consecutive connection failures against one host it *opens* and every
//! further attempt fails fast with [`CcError::BreakerOpen`] — no simulated
//! connection, no backoff wait. After a deterministic `cooldown` on the
//! simulated clock the breaker *half-opens*, letting exactly one probe
//! through: success closes it, failure re-opens it for another cooldown.
//!
//! Breakers are per-browser (hence per-walk) state driven entirely by the
//! walk's own deterministic fault stream and simulated clock, so they
//! never couple walks across workers and the serial ≡ parallel
//! byte-identity contract holds.

use std::collections::HashMap;

use cc_util::error::{CcError, NetError};
use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// When and for how long a breaker trips.
///
/// `failure_threshold: 0` disables breakers entirely (every check passes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerPolicy {
    /// Consecutive failures on one host that trip its breaker
    /// (0 = breakers disabled).
    pub failure_threshold: u32,
    /// How long an open breaker waits before half-opening.
    pub cooldown: SimDuration,
}

impl BreakerPolicy {
    /// The standard preset: trip after 3 consecutive failures, half-open
    /// after 2 s of simulated cooldown.
    pub fn standard() -> Self {
        BreakerPolicy {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs(2),
        }
    }

    /// Breakers disabled: [`CircuitBreaker::check`] always passes.
    pub fn disabled() -> Self {
        BreakerPolicy {
            failure_threshold: 0,
            cooldown: SimDuration::ZERO,
        }
    }

    /// Whether this policy ever trips.
    pub fn enabled(&self) -> bool {
        self.failure_threshold > 0
    }

    /// Validate the policy (builder support).
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled() && self.cooldown == SimDuration::ZERO {
            return Err("breaker cooldown must be > 0 when breakers are enabled".into());
        }
        Ok(())
    }
}

impl Default for BreakerPolicy {
    /// Defaults to the *enabled* standard preset, mirroring
    /// `RetryPolicy::default`.
    fn default() -> Self {
        BreakerPolicy::standard()
    }
}

/// The observable state of one host's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are being counted.
    Closed,
    /// Tripped: attempts fail fast until the cooldown elapses.
    Open,
    /// Cooldown elapsed: the next attempt is a probe.
    HalfOpen,
}

#[derive(Debug, Clone)]
struct HostBreaker {
    consecutive: u32,
    opened_at: Option<SimTime>,
    probing: bool,
    last: NetError,
}

/// Per-host breaker table for one browser.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    hosts: HashMap<String, HostBreaker>,
}

impl CircuitBreaker {
    /// A breaker table governed by `policy`.
    pub fn new(policy: BreakerPolicy) -> Self {
        CircuitBreaker {
            policy,
            hosts: HashMap::new(),
        }
    }

    /// The governing policy.
    pub fn policy(&self) -> &BreakerPolicy {
        &self.policy
    }

    /// The current state of `host`'s breaker at instant `now`.
    pub fn state(&self, host: &str, now: SimTime) -> BreakerState {
        match self.hosts.get(host).and_then(|h| h.opened_at) {
            None => BreakerState::Closed,
            Some(opened) if now >= opened.plus(self.policy.cooldown) => BreakerState::HalfOpen,
            Some(_) => BreakerState::Open,
        }
    }

    /// Gate one connection attempt against `host` at instant `now`.
    ///
    /// Open breakers fail fast with [`CcError::BreakerOpen`] (a
    /// *non-transient* error: the retry loop must not retry it). A
    /// half-open breaker admits the attempt as a probe.
    pub fn check(&mut self, host: &str, now: SimTime) -> Result<(), CcError> {
        if !self.policy.enabled() {
            return Ok(());
        }
        let Some(hb) = self.hosts.get_mut(host) else {
            return Ok(());
        };
        match hb.opened_at {
            None => Ok(()),
            Some(opened) if now >= opened.plus(self.policy.cooldown) => {
                hb.probing = true;
                Ok(())
            }
            Some(_) => {
                cc_telemetry::counter_id(cc_telemetry::CounterId::NET_BREAKER_FAST_FAIL, 1);
                Err(CcError::BreakerOpen {
                    host: host.to_string(),
                    last: hb.last,
                })
            }
        }
    }

    /// Record a successful connection to `host`: closes and resets its
    /// breaker.
    pub fn record_success(&mut self, host: &str) {
        if self.policy.enabled() {
            self.hosts.remove(host);
        }
    }

    /// Record a failed connection to `host` at instant `now`. Returns
    /// `true` if this failure tripped (or re-tripped) the breaker.
    pub fn record_failure(&mut self, host: &str, err: NetError, now: SimTime) -> bool {
        if !self.policy.enabled() {
            return false;
        }
        let hb = self.hosts.entry(host.to_string()).or_insert(HostBreaker {
            consecutive: 0,
            opened_at: None,
            probing: false,
            last: err,
        });
        hb.last = err;
        if hb.probing {
            // A failed half-open probe re-opens for another cooldown.
            hb.probing = false;
            hb.opened_at = Some(now);
            cc_telemetry::counter_id(cc_telemetry::CounterId::NET_BREAKER_TRIP, 1);
            return true;
        }
        hb.consecutive += 1;
        if hb.opened_at.is_none() && hb.consecutive >= self.policy.failure_threshold {
            hb.opened_at = Some(now);
            cc_telemetry::counter_id(cc_telemetry::CounterId::NET_BREAKER_TRIP, 1);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E: NetError = NetError::ConnRefused;

    fn tripped(cb: &mut CircuitBreaker, host: &str, n: u32, now: SimTime) -> bool {
        (0..n).any(|_| cb.record_failure(host, E, now))
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut cb = CircuitBreaker::new(BreakerPolicy::standard());
        let t = SimTime::EPOCH;
        assert!(!cb.record_failure("a.com", E, t));
        assert!(!cb.record_failure("a.com", E, t));
        assert_eq!(cb.state("a.com", t), BreakerState::Closed);
        assert!(cb.record_failure("a.com", E, t));
        assert_eq!(cb.state("a.com", t), BreakerState::Open);
        let err = cb.check("a.com", t).unwrap_err();
        assert!(matches!(err, CcError::BreakerOpen { ref host, last } if host == "a.com" && last == E));
        assert!(!err.is_transient());
    }

    #[test]
    fn success_resets_the_count() {
        let mut cb = CircuitBreaker::new(BreakerPolicy::standard());
        let t = SimTime::EPOCH;
        cb.record_failure("a.com", E, t);
        cb.record_failure("a.com", E, t);
        cb.record_success("a.com");
        assert!(!tripped(&mut cb, "a.com", 2, t), "count restarted");
        assert_eq!(cb.state("a.com", t), BreakerState::Closed);
    }

    #[test]
    fn half_opens_on_the_deterministic_schedule() {
        let pol = BreakerPolicy::standard();
        let mut cb = CircuitBreaker::new(pol);
        let t0 = SimTime::EPOCH;
        assert!(tripped(&mut cb, "a.com", 3, t0));
        let before = SimTime(pol.cooldown.as_millis() - 1);
        assert!(cb.check("a.com", before).is_err());
        let after = t0.plus(pol.cooldown);
        assert_eq!(cb.state("a.com", after), BreakerState::HalfOpen);
        assert!(cb.check("a.com", after).is_ok(), "probe admitted");
    }

    #[test]
    fn failed_probe_reopens_successful_probe_closes() {
        let pol = BreakerPolicy::standard();
        let mut cb = CircuitBreaker::new(pol);
        let t0 = SimTime::EPOCH;
        tripped(&mut cb, "a.com", 3, t0);
        let t1 = t0.plus(pol.cooldown);
        assert!(cb.check("a.com", t1).is_ok());
        assert!(cb.record_failure("a.com", E, t1), "failed probe re-trips");
        assert_eq!(cb.state("a.com", t1), BreakerState::Open);

        let t2 = t1.plus(pol.cooldown);
        assert!(cb.check("a.com", t2).is_ok());
        cb.record_success("a.com");
        assert_eq!(cb.state("a.com", t2), BreakerState::Closed);
    }

    #[test]
    fn hosts_are_independent() {
        let mut cb = CircuitBreaker::new(BreakerPolicy::standard());
        let t = SimTime::EPOCH;
        tripped(&mut cb, "down.com", 3, t);
        assert!(cb.check("up.com", t).is_ok());
        assert_eq!(cb.state("up.com", t), BreakerState::Closed);
    }

    #[test]
    fn disabled_policy_never_trips() {
        let mut cb = CircuitBreaker::new(BreakerPolicy::disabled());
        let t = SimTime::EPOCH;
        assert!(!tripped(&mut cb, "a.com", 100, t));
        assert!(cb.check("a.com", t).is_ok());
    }

    #[test]
    fn policy_validation() {
        assert!(BreakerPolicy::standard().validate().is_ok());
        assert!(BreakerPolicy::disabled().validate().is_ok());
        let bad = BreakerPolicy {
            failure_threshold: 3,
            cooldown: SimDuration::ZERO,
        };
        assert!(bad.validate().is_err());
    }
}
