//! # cc-net
//!
//! The simulated network substrate underneath the synthetic web:
//!
//! * [`time`] — a deterministic simulated clock ([`SimClock`]) and instant
//!   type ([`SimTime`]). Cookie lifetimes, session expiry, and the paper's
//!   lifetime-based baseline (§3.7.1: tokens living less than 90 days /
//!   one month) are all measured against this clock.
//! * [`dns`] — a DNS database with `A` and `CNAME` records, including
//!   chain resolution. CNAME support powers the CNAME-cloaking extension
//!   (§8.3): a first-party subdomain aliasing to a tracker domain.
//! * [`fault`] — connection-fault injection. The paper reports that 3.3% of
//!   site visits failed with network errors (`ECONNREFUSED`, `ECONNRESET`,
//!   §3.3); the fault model reproduces that failure process, now with
//!   deterministic per-host outage windows a retry can outlast.
//! * [`retry`] — deterministic retry/backoff policy ([`RetryPolicy`]) and
//!   the per-walk [`RecoveryStats`] accounting.
//! * [`breaker`] — per-host circuit breakers ([`CircuitBreaker`]) that
//!   fail fast on hosts that keep refusing connections.
//! * [`latency`] — a simple latency model so benchmark timings have a
//!   realistic network-shaped component.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod breaker;
pub mod dns;
pub mod fault;
pub mod latency;
pub mod retry;
pub mod time;

pub use breaker::{BreakerPolicy, BreakerState, CircuitBreaker};
pub use dns::{DnsDb, DnsRecord, Resolution};
pub use fault::{FaultModel, NetError};
pub use retry::{RecoveryStats, RetryPolicy};
pub use time::{SimClock, SimDuration, SimTime};
