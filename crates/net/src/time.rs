//! Simulated time.
//!
//! Everything in CrumbCruncher-RS that cares about time — cookie expiry,
//! session lifetimes, walk pacing, the 90-day/30-day lifetime baselines —
//! reads a [`SimClock`] rather than the wall clock, so runs are reproducible
//! and "90 days" of cookie lifetime costs nothing to simulate.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Milliseconds in common units.
const MS_PER_SEC: u64 = 1_000;
const MS_PER_MIN: u64 = 60 * MS_PER_SEC;
const MS_PER_HOUR: u64 = 60 * MS_PER_MIN;
const MS_PER_DAY: u64 = 24 * MS_PER_HOUR;

/// A span of simulated time, millisecond precision.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MS_PER_SEC)
    }

    /// From minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * MS_PER_MIN)
    }

    /// From hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * MS_PER_HOUR)
    }

    /// From days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * MS_PER_DAY)
    }

    /// Whole milliseconds.
    pub const fn as_millis(&self) -> u64 {
        self.0
    }

    /// Whole days (truncating).
    pub const fn as_days(&self) -> u64 {
        self.0 / MS_PER_DAY
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        if ms >= MS_PER_DAY {
            write!(f, "{:.1}d", ms as f64 / MS_PER_DAY as f64)
        } else if ms >= MS_PER_HOUR {
            write!(f, "{:.1}h", ms as f64 / MS_PER_HOUR as f64)
        } else if ms >= MS_PER_SEC {
            write!(f, "{:.1}s", ms as f64 / MS_PER_SEC as f64)
        } else {
            write!(f, "{ms}ms")
        }
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

/// An instant on the simulated timeline, millisecond precision.
///
/// The origin (`SimTime(0)`) is the start of a study run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const EPOCH: SimTime = SimTime(0);

    /// Add a duration.
    pub const fn plus(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }

    /// Time elapsed since an earlier instant (saturating).
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

/// A shared, thread-safe simulated clock.
///
/// Cloning a `SimClock` yields a handle to the *same* clock (the crawler
/// threads and the controller all advance one shared timeline).
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ms: Arc<AtomicU64>,
}

impl SimClock {
    /// New clock at the epoch.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// New clock starting at a given instant.
    pub fn starting_at(t: SimTime) -> Self {
        let clock = SimClock::new();
        clock.now_ms.store(t.0, Ordering::SeqCst);
        clock
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        SimTime(self.now_ms.load(Ordering::SeqCst))
    }

    /// Advance the clock by a duration and return the new instant.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let new = self.now_ms.fetch_add(d.0, Ordering::SeqCst) + d.0;
        SimTime(new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_units() {
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_mins(1).as_millis(), 60_000);
        assert_eq!(SimDuration::from_hours(1).as_millis(), 3_600_000);
        assert_eq!(SimDuration::from_days(90).as_days(), 90);
    }

    #[test]
    fn duration_arith() {
        assert_eq!(
            SimDuration::from_secs(1) + SimDuration::from_millis(500),
            SimDuration::from_millis(1_500)
        );
        assert_eq!(SimDuration::from_days(1) * 30, SimDuration::from_days(30));
    }

    #[test]
    fn time_since_saturates() {
        let a = SimTime(100);
        let b = SimTime(400);
        assert_eq!(b.since(a), SimDuration(300));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn clock_advances_shared() {
        let c1 = SimClock::new();
        let c2 = c1.clone();
        assert_eq!(c1.now(), SimTime::EPOCH);
        c1.advance(SimDuration::from_secs(10));
        assert_eq!(c2.now(), SimTime(10_000));
        let t = c2.advance(SimDuration::from_secs(5));
        assert_eq!(t, SimTime(15_000));
        assert_eq!(c1.now(), SimTime(15_000));
    }

    #[test]
    fn clock_threadsafe() {
        let clock = SimClock::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = clock.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(SimDuration::from_millis(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(clock.now(), SimTime(4_000));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_millis(42)), "42ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.0s");
        assert_eq!(format!("{}", SimDuration::from_days(90)), "90.0d");
        assert_eq!(format!("{}", SimTime(1_000)), "t+1.0s");
    }

    #[test]
    fn starting_at() {
        let c = SimClock::starting_at(SimTime(5_000));
        assert_eq!(c.now(), SimTime(5_000));
    }
}
