//! Connection-fault injection.
//!
//! §3.3 of the paper: "CrumbCruncher fails to connect to the website because
//! of a network error (ECONNREFUSED, ECONNRESET, etc.) … which occurred on
//! 3.3% of the sites it attempted to visit", and the paper expects failure
//! probability to be independent of the walk step. [`FaultModel`] reproduces
//! that process — and, for the fault-tolerance layer, gives every outage a
//! deterministic *duration* so a retry with backoff can outlast it.
//!
//! Both entry points draw from the same deterministic stream construction:
//! a salted hash over an explicit position (a per-model attempt counter for
//! [`FaultModel::attempt`], the `(host, sim-time)` pair for
//! [`FaultModel::attempt_host`]). No draw consumes hidden RNG state, so
//! cloning a model or interleaving callers can never desynchronize the
//! fault process — the property the parallel executor relies on.

use std::collections::HashMap;

use cc_util::DetRng;

use crate::time::{SimDuration, SimTime};

pub use cc_util::error::NetError;

/// Share of host outages that are *hard* (lasting far beyond any retry
/// budget), as opposed to transient blips a backoff can outlast.
const HARD_OUTAGE_SHARE: f64 = 0.25;

/// Hard outages last a simulated day: no retry budget outlasts them.
const HARD_OUTAGE: SimDuration = SimDuration::from_millis(24 * 60 * 60 * 1000);

/// Transient outages last `TRANSIENT_MIN_MS + h % TRANSIENT_SPREAD_MS`
/// milliseconds — calibrated so the default retry budget recovers most of
/// them while a retry-free crawl still observes every one as a failure.
const TRANSIENT_MIN_MS: u64 = 100;
const TRANSIENT_SPREAD_MS: u64 = 1_900;

/// An i.i.d. connection-fault process with deterministic outage windows.
///
/// Besides the plain per-attempt draw ([`FaultModel::attempt`]), the model
/// offers a **host-keyed** mode ([`FaultModel::attempt_host`]): whether a
/// host is down is a deterministic function of `(salt, host)`, so all
/// crawlers sharing a salt observe the *same* outage — matching the paper,
/// which counts failures per *site visited* (a down site is down for every
/// crawler that tries it). Each outage additionally has a deterministic
/// duration, measured from the first failed attempt on this model's
/// timeline: attempts after the window has passed succeed, which is what
/// makes retry-with-backoff meaningful.
#[derive(Debug, Clone)]
pub struct FaultModel {
    salt: u64,
    failure_rate: f64,
    /// Stream position of the next [`FaultModel::attempt`] draw.
    attempt_no: u64,
    /// First failed-attempt instant per down host (outages are measured
    /// from the first time this model observed them).
    first_seen: HashMap<String, SimTime>,
}

impl FaultModel {
    /// Build a fault model with a per-attempt failure probability.
    ///
    /// The seed rng only contributes the salt; the model itself never
    /// holds RNG state (see the module docs).
    pub fn new(rng: DetRng, failure_rate: f64) -> Self {
        let mut seed_rng = rng;
        let salt = seed_rng.next();
        FaultModel {
            salt,
            failure_rate,
            attempt_no: 0,
            first_seen: HashMap::new(),
        }
    }

    /// A model that never fails (for tests needing clean runs).
    pub fn none(rng: DetRng) -> Self {
        FaultModel::new(rng, 0.0)
    }

    /// The configured failure rate.
    pub fn failure_rate(&self) -> f64 {
        self.failure_rate
    }

    /// Decide the fate of one connection attempt.
    ///
    /// Returns `Ok(())` or one of the error kinds, with `ECONNREFUSED` and
    /// `ECONNRESET` dominating as in the paper's error description. Each
    /// call advances the model's attempt counter by exactly one, so two
    /// models with the same salt stay in lockstep draw for draw.
    pub fn attempt(&mut self) -> Result<(), NetError> {
        let h = mix(self.salt ^ 0xA77E_3F01_D5B2_9C64, self.attempt_no);
        self.attempt_no += 1;
        if unit(h) >= self.failure_rate {
            cc_telemetry::counter_id(cc_telemetry::CounterId::NET_CONNECT_OK, 1);
            return Ok(());
        }
        let e = error_kind_for(mix(h, 1));
        cc_telemetry::counter_id(fault_counter(e), 1);
        Err(e)
    }

    /// Host-keyed attempt at simulated instant `now`.
    ///
    /// Deterministic per `(salt, host)`: the same hosts are down for every
    /// model sharing a salt. A down host stays down for its outage
    /// duration (measured from this model's first failed attempt) and
    /// recovers afterwards.
    pub fn attempt_host(&mut self, host: &str, now: SimTime) -> Result<(), NetError> {
        let h = host_hash(self.salt, host);
        if unit(h) >= self.failure_rate {
            cc_telemetry::counter_id(cc_telemetry::CounterId::NET_CONNECT_OK, 1);
            return Ok(());
        }
        let start = *self.first_seen.entry(host.to_string()).or_insert(now);
        if now >= start.plus(outage_duration(h)) {
            cc_telemetry::counter_id(cc_telemetry::CounterId::NET_CONNECT_OK, 1);
            cc_telemetry::counter_id(cc_telemetry::CounterId::NET_OUTAGE_RECOVERED, 1);
            return Ok(());
        }
        let e = error_kind_for(h);
        cc_telemetry::counter_id(fault_counter(e), 1);
        Err(e)
    }

    /// The outage window for a host, if the model considers it down at
    /// all: `None` for healthy hosts, otherwise the duration from the
    /// first failed attempt until recovery. Hard outages effectively never
    /// recover within a walk.
    pub fn outage_for(&self, host: &str) -> Option<SimDuration> {
        let h = host_hash(self.salt, host);
        (unit(h) < self.failure_rate).then(|| outage_duration(h))
    }
}

/// Deterministic duration of the outage keyed by `h`.
fn outage_duration(h: u64) -> SimDuration {
    let d = mix(h, 0x0D1C_E5EE);
    if unit(d) < HARD_OUTAGE_SHARE {
        HARD_OUTAGE
    } else {
        SimDuration::from_millis(TRANSIENT_MIN_MS + mix(d, 1) % TRANSIENT_SPREAD_MS)
    }
}

/// The pre-registered counter for an injected fault kind — replaces the
/// old `counter_labeled("net.fault.injected", &e.to_string(), 1)`, which
/// allocated the `Display` string and a formatted key on every injection.
fn fault_counter(e: NetError) -> cc_telemetry::CounterId {
    match e {
        NetError::ConnRefused => cc_telemetry::CounterId::NET_FAULT_ECONNREFUSED,
        NetError::ConnReset => cc_telemetry::CounterId::NET_FAULT_ECONNRESET,
        NetError::TimedOut => cc_telemetry::CounterId::NET_FAULT_ETIMEDOUT,
        NetError::NameResolution => cc_telemetry::CounterId::NET_FAULT_EAI_NONAME,
    }
}

/// Map a well-mixed hash to an error kind, `ECONNREFUSED`/`ECONNRESET`
/// dominating as in the paper.
fn error_kind_for(h: u64) -> NetError {
    match h % 20 {
        0..=8 => NetError::ConnRefused,
        9..=15 => NetError::ConnReset,
        16..=18 => NetError::TimedOut,
        _ => NetError::NameResolution,
    }
}

/// Map a hash to `[0, 1)` using the top 53 bits.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// SplitMix64-style avalanche of a (key, position) pair: the shared draw
/// primitive behind both attempt modes.
#[inline]
fn mix(key: u64, position: u64) -> u64 {
    let mut z = key ^ position.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the salt and host bytes.
fn host_hash(salt: u64, host: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt.rotate_left(17);
    for &b in host.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Final avalanche so low bits are well mixed.
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fails() {
        let mut fm = FaultModel::none(DetRng::new(1));
        for _ in 0..10_000 {
            assert!(fm.attempt().is_ok());
        }
    }

    #[test]
    fn full_rate_always_fails() {
        let mut fm = FaultModel::new(DetRng::new(2), 1.0);
        for _ in 0..100 {
            assert!(fm.attempt().is_err());
        }
    }

    #[test]
    fn rate_is_approximately_respected() {
        let mut fm = FaultModel::new(DetRng::new(3), 0.033);
        let fails = (0..100_000).filter(|_| fm.attempt().is_err()).count();
        let rate = fails as f64 / 100_000.0;
        assert!((rate - 0.033).abs() < 0.004, "observed rate {rate}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = FaultModel::new(DetRng::new(7), 0.5);
        let mut b = FaultModel::new(DetRng::new(7), 0.5);
        for _ in 0..1_000 {
            assert_eq!(a.attempt(), b.attempt());
        }
    }

    #[test]
    fn attempt_is_clone_safe() {
        // Cloning must not share or fork hidden RNG state: the clone
        // replays the same stream from its current position.
        let mut a = FaultModel::new(DetRng::new(21), 0.5);
        for _ in 0..10 {
            let _ = a.attempt();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.attempt(), b.attempt());
        }
    }

    #[test]
    fn error_kinds_all_occur() {
        let mut fm = FaultModel::new(DetRng::new(11), 1.0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            seen.insert(fm.attempt().unwrap_err());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn host_keyed_faults_are_stable_and_shared() {
        let mut a = FaultModel::new(DetRng::new(5), 0.5);
        let mut b = FaultModel::new(DetRng::new(5), 0.5);
        for host in ["a.com", "b.net", "r.trk.io", "www.shop.world"] {
            // Same salt (same seed) ⇒ same verdict at the same instant,
            // call after call and across crawler instances.
            let t = SimTime(1_000);
            let va = a.attempt_host(host, t);
            assert_eq!(va, b.attempt_host(host, t));
            assert_eq!(va, a.attempt_host(host, t));
        }
    }

    #[test]
    fn host_keyed_rate_approximately_respected() {
        let mut fm = FaultModel::new(DetRng::new(9), 0.033);
        let fails = (0..50_000)
            .filter(|i| fm.attempt_host(&format!("site-{i}.com"), SimTime::EPOCH).is_err())
            .count();
        let rate = fails as f64 / 50_000.0;
        assert!((rate - 0.033).abs() < 0.005, "observed {rate}");
    }

    #[test]
    fn different_salts_differ() {
        let mut a = FaultModel::new(DetRng::new(1), 0.5);
        let mut b = FaultModel::new(DetRng::new(2), 0.5);
        let disagreements = (0..100)
            .filter(|i| {
                let h = format!("h{i}.com");
                a.attempt_host(&h, SimTime::EPOCH).is_ok()
                    != b.attempt_host(&h, SimTime::EPOCH).is_ok()
            })
            .count();
        assert!(disagreements > 10, "salts should decorrelate outages");
    }

    #[test]
    fn transient_outages_recover_after_their_window() {
        let mut fm = FaultModel::new(DetRng::new(13), 1.0);
        // Find a transiently-down host.
        let (host, dur) = (0..1_000)
            .map(|i| format!("t{i}.com"))
            .find_map(|h| match fm.outage_for(&h) {
                Some(d) if d < SimDuration::from_secs(60) => Some((h, d)),
                _ => None,
            })
            .expect("some transient outage among 1000 hosts");
        let t0 = SimTime(500);
        assert!(fm.attempt_host(&host, t0).is_err(), "down at first attempt");
        // Still down one millisecond before the window closes…
        let just_before = SimTime(t0.0 + dur.as_millis() - 1);
        assert!(fm.attempt_host(&host, just_before).is_err());
        // …and recovered at the boundary.
        assert!(fm.attempt_host(&host, t0.plus(dur)).is_ok());
    }

    #[test]
    fn hard_outages_do_not_recover_within_a_walk() {
        let mut fm = FaultModel::new(DetRng::new(17), 1.0);
        let host = (0..1_000)
            .map(|i| format!("p{i}.com"))
            .find(|h| fm.outage_for(h) == Some(HARD_OUTAGE))
            .expect("some hard outage among 1000 hosts");
        let t0 = SimTime::EPOCH;
        assert!(fm.attempt_host(&host, t0).is_err());
        // An hour of backoff later: still down.
        assert!(fm
            .attempt_host(&host, t0.plus(SimDuration::from_hours(1)))
            .is_err());
    }

    #[test]
    fn first_attempt_always_fails_for_down_hosts() {
        // Without retries the model is indistinguishable from the old
        // persistent-outage behavior: the first attempt on a down host
        // fails no matter when it happens.
        let mut fm = FaultModel::new(DetRng::new(19), 1.0);
        for i in 0..100 {
            let host = format!("d{i}.com");
            assert!(fm.attempt_host(&host, SimTime(i * 977)).is_err());
        }
    }

    #[test]
    fn outage_durations_mix_hard_and_transient() {
        let fm = FaultModel::new(DetRng::new(23), 1.0);
        let durations: Vec<SimDuration> = (0..2_000)
            .filter_map(|i| fm.outage_for(&format!("m{i}.com")))
            .collect();
        let hard = durations.iter().filter(|d| **d == HARD_OUTAGE).count();
        let share = hard as f64 / durations.len() as f64;
        assert!(
            (share - HARD_OUTAGE_SHARE).abs() < 0.05,
            "hard-outage share {share}"
        );
        assert!(durations
            .iter()
            .filter(|d| **d != HARD_OUTAGE)
            .all(|d| d.as_millis() >= TRANSIENT_MIN_MS
                && d.as_millis() < TRANSIENT_MIN_MS + TRANSIENT_SPREAD_MS));
    }
}
