//! Connection-fault injection.
//!
//! §3.3 of the paper: "CrumbCruncher fails to connect to the website because
//! of a network error (ECONNREFUSED, ECONNRESET, etc.) … which occurred on
//! 3.3% of the sites it attempted to visit", and the paper expects failure
//! probability to be independent of the walk step. [`FaultModel`] reproduces
//! exactly that process: an i.i.d. Bernoulli failure per connection attempt,
//! deterministic given the run seed and attempt sequence.

use cc_util::DetRng;
use serde::{Deserialize, Serialize};

/// Simulated network error kinds (the classes named in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetError {
    /// Connection refused by the peer.
    ConnRefused,
    /// Connection reset mid-handshake.
    ConnReset,
    /// Connection timed out.
    TimedOut,
    /// Name resolution failed.
    NameResolution,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NetError::ConnRefused => "ECONNREFUSED",
            NetError::ConnReset => "ECONNRESET",
            NetError::TimedOut => "ETIMEDOUT",
            NetError::NameResolution => "EAI_NONAME",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NetError {}

/// An i.i.d. connection-fault process.
///
/// Besides the plain per-attempt draw ([`FaultModel::attempt`]), the model
/// offers a **host-keyed** mode ([`FaultModel::attempt_host`]): whether a
/// host is reachable is a deterministic function of `(salt, host)`, so all
/// crawlers sharing a salt observe the *same* outage — matching the paper,
/// which counts failures per *site visited* (a down site is down for every
/// crawler that tries it).
#[derive(Debug, Clone)]
pub struct FaultModel {
    rng: DetRng,
    salt: u64,
    failure_rate: f64,
}

impl FaultModel {
    /// Build a fault model with a per-attempt failure probability.
    pub fn new(rng: DetRng, failure_rate: f64) -> Self {
        let mut seed_rng = rng.clone();
        let salt = seed_rng.next();
        FaultModel {
            rng,
            salt,
            failure_rate,
        }
    }

    /// A model that never fails (for tests needing clean runs).
    pub fn none(rng: DetRng) -> Self {
        FaultModel::new(rng, 0.0)
    }

    /// The configured failure rate.
    pub fn failure_rate(&self) -> f64 {
        self.failure_rate
    }

    /// Decide the fate of one connection attempt.
    ///
    /// Returns `Ok(())` or one of the error kinds, with `ECONNREFUSED` and
    /// `ECONNRESET` dominating as in the paper's error description.
    pub fn attempt(&mut self) -> Result<(), NetError> {
        if !self.rng.chance(self.failure_rate) {
            cc_telemetry::counter("net.connect.ok", 1);
            return Ok(());
        }
        let draw = self.rng.next();
        let e = self.error_kind_for(draw);
        cc_telemetry::counter_labeled("net.fault.injected", &e.to_string(), 1);
        Err(e)
    }

    /// Host-keyed attempt: deterministic per `(salt, host)`.
    pub fn attempt_host(&self, host: &str) -> Result<(), NetError> {
        let h = host_hash(self.salt, host);
        // Map the hash to [0, 1) and compare against the rate.
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u >= self.failure_rate {
            cc_telemetry::counter("net.connect.ok", 1);
            Ok(())
        } else {
            let e = self.error_kind_for(h);
            cc_telemetry::counter_labeled("net.fault.injected", &e.to_string(), 1);
            Err(e)
        }
    }

    fn error_kind_for(&self, h: u64) -> NetError {
        match h % 20 {
            0..=8 => NetError::ConnRefused,
            9..=15 => NetError::ConnReset,
            16..=18 => NetError::TimedOut,
            _ => NetError::NameResolution,
        }
    }
}

/// FNV-1a over the salt and host bytes.
fn host_hash(salt: u64, host: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt.rotate_left(17);
    for &b in host.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Final avalanche so low bits are well mixed.
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fails() {
        let mut fm = FaultModel::none(DetRng::new(1));
        for _ in 0..10_000 {
            assert!(fm.attempt().is_ok());
        }
    }

    #[test]
    fn full_rate_always_fails() {
        let mut fm = FaultModel::new(DetRng::new(2), 1.0);
        for _ in 0..100 {
            assert!(fm.attempt().is_err());
        }
    }

    #[test]
    fn rate_is_approximately_respected() {
        let mut fm = FaultModel::new(DetRng::new(3), 0.033);
        let fails = (0..100_000).filter(|_| fm.attempt().is_err()).count();
        let rate = fails as f64 / 100_000.0;
        assert!((rate - 0.033).abs() < 0.004, "observed rate {rate}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = FaultModel::new(DetRng::new(7), 0.5);
        let mut b = FaultModel::new(DetRng::new(7), 0.5);
        for _ in 0..1_000 {
            assert_eq!(a.attempt(), b.attempt());
        }
    }

    #[test]
    fn error_kinds_all_occur() {
        let mut fm = FaultModel::new(DetRng::new(11), 1.0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            seen.insert(fm.attempt().unwrap_err());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(NetError::ConnRefused.to_string(), "ECONNREFUSED");
        assert_eq!(NetError::ConnReset.to_string(), "ECONNRESET");
    }

    #[test]
    fn host_keyed_faults_are_stable_and_shared() {
        let a = FaultModel::new(DetRng::new(5), 0.5);
        let b = FaultModel::new(DetRng::new(5), 0.5);
        for host in ["a.com", "b.net", "r.trk.io", "www.shop.world"] {
            // Same salt (same seed) ⇒ same verdict, call after call and
            // across crawler instances.
            assert_eq!(a.attempt_host(host), b.attempt_host(host));
            assert_eq!(a.attempt_host(host), a.attempt_host(host));
        }
    }

    #[test]
    fn host_keyed_rate_approximately_respected() {
        let fm = FaultModel::new(DetRng::new(9), 0.033);
        let fails = (0..50_000)
            .filter(|i| fm.attempt_host(&format!("site-{i}.com")).is_err())
            .count();
        let rate = fails as f64 / 50_000.0;
        assert!((rate - 0.033).abs() < 0.005, "observed {rate}");
    }

    #[test]
    fn different_salts_differ() {
        let a = FaultModel::new(DetRng::new(1), 0.5);
        let b = FaultModel::new(DetRng::new(2), 0.5);
        let disagreements = (0..100)
            .filter(|i| {
                let h = format!("h{i}.com");
                a.attempt_host(&h).is_ok() != b.attempt_host(&h).is_ok()
            })
            .count();
        assert!(disagreements > 10, "salts should decorrelate outages");
    }
}
