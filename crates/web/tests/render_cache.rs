//! Cached vs uncached render identity.
//!
//! The render-skeleton cache in `SimWeb::load_page` memoizes the
//! deterministic part of a page render per (site, page). The contract is
//! that caching is *invisible*: a cached load must produce byte-identical
//! pages, script effects (storage writes, beacons), and RNG consumption
//! compared to rebuilding the skeleton from scratch. This suite drives two
//! identically-generated worlds — one with the cache on, one off — through
//! 1,000 randomized (site, path, profile-seed) draws and demands identity
//! at every step.

use std::collections::HashMap;

use cc_net::SimTime;
use cc_url::Url;
use cc_util::DetRng;
use cc_web::{generate, ScriptHost, SimWeb, StorageKind, WebConfig};

/// A minimal deterministic ScriptHost that records every script effect.
struct RecordingHost {
    url: Url,
    storage: HashMap<String, String>,
    rng: DetRng,
    beacons: Vec<Url>,
    writes: Vec<(String, String)>,
    fp: u64,
}

impl RecordingHost {
    fn new(url: Url, seed: u64) -> Self {
        RecordingHost {
            url,
            storage: HashMap::new(),
            rng: DetRng::new(seed),
            beacons: Vec::new(),
            writes: Vec::new(),
            fp: 0xC0FFEE ^ seed,
        }
    }
}

impl ScriptHost for RecordingHost {
    fn page_url(&self) -> &Url {
        &self.url
    }
    fn storage_get(&self, key: &str) -> Option<String> {
        self.storage.get(key).cloned()
    }
    fn storage_set(&mut self, key: &str, value: &str, _kind: StorageKind) {
        self.writes.push((key.to_string(), value.to_string()));
        self.storage.insert(key.to_string(), value.to_string());
    }
    fn fingerprint(&self) -> u64 {
        self.fp
    }
    fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }
    fn send_beacon(&mut self, url: Url) {
        self.beacons.push(url);
    }
    fn now(&self) -> SimTime {
        SimTime(1_700_000)
    }
}

fn world() -> SimWeb {
    generate(&WebConfig {
        seed: 0xCAC4E,
        n_sites: 120,
        n_seeders: 30,
        ..WebConfig::default()
    })
}

#[test]
fn cached_and_uncached_loads_are_identical_over_1k_random_draws() {
    // Two independently generated but identically seeded worlds, so the
    // uncached one's lazily-built state can never leak into the cached one.
    let cached = world();
    let uncached = world();
    uncached.set_render_cache(false);

    let mut draw_rng = DetRng::new(0xD4A75);
    for draw in 0..1_000u64 {
        // Random (site, path, profile-seed) draw. Revisits are the point:
        // later draws of the same page hit the warm cache on one side and a
        // fresh rebuild on the other.
        let site = &cached.sites[draw_rng.index(cached.sites.len())];
        let page = &site.pages[draw_rng.index(site.pages.len())];
        let url = Url::parse(&format!("https://{}{}", site.www_fqdn(), page.path))
            .expect("generated page URL parses");
        let profile_seed = draw_rng.next();

        let mut host_a = RecordingHost::new(url.clone(), profile_seed);
        let mut host_b = RecordingHost::new(url.clone(), profile_seed);
        let page_a = cached.load_page(&url, &mut host_a).expect("cached load");
        let page_b = uncached
            .load_page(&url, &mut host_b)
            .expect("uncached load");

        assert_eq!(
            page_a, page_b,
            "draw {draw}: cached load of {url} diverged from uncached"
        );
        assert_eq!(
            host_a.writes, host_b.writes,
            "draw {draw}: storage writes diverged on {url}"
        );
        assert_eq!(
            host_a.beacons, host_b.beacons,
            "draw {draw}: beacons diverged on {url}"
        );
        // The cache must not change how much per-load randomness scripts
        // consume, or every downstream sample in a walk would shift.
        assert_eq!(
            host_a.rng.next(),
            host_b.rng.next(),
            "draw {draw}: RNG consumption diverged on {url}"
        );
    }
}

#[test]
fn toggling_the_cache_mid_run_does_not_change_loads() {
    let web = world();
    let url = web.seeder_urls()[0].clone();

    let mut warm = RecordingHost::new(url.clone(), 7);
    let warm_page = web.load_page(&url, &mut warm).expect("warm load");

    web.set_render_cache(false);
    let mut cold = RecordingHost::new(url.clone(), 7);
    let cold_page = web.load_page(&url, &mut cold).expect("cold load");
    web.set_render_cache(true);
    let mut back = RecordingHost::new(url.clone(), 7);
    let back_page = web.load_page(&url, &mut back).expect("re-warmed load");

    assert_eq!(warm_page, cold_page);
    assert_eq!(warm_page, back_page);
    assert_eq!(warm.beacons, cold.beacons);
    assert_eq!(warm.beacons, back.beacons);
}
