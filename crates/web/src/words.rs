//! Word lists for generating realistic names and — crucially — realistic
//! **false positives**.
//!
//! §3.7.2 of the paper: after programmatic filtering, the remaining
//! non-UID tokens were "natural language strings separated by delimiters
//! ('Dental_internal_whitepaper_topic', 'share_button'), concatenated words
//! with no delimiter ('sweetmagnolias', 'trustpilot'), semi-abbreviated
//! words ('navimail'), acronyms ('en-US')". The generator mints campaign
//! parameters with exactly these shapes so the manual-analyst model has a
//! faithful workload, and 577/1,581 of candidate tokens end up removed by
//! hand in the paper's run.

use cc_util::DetRng;

/// Common English-ish words used for domains, campaign names, and
/// word-shaped token values.
pub const WORDS: &[&str] = &[
    "sweet", "magnolia", "trust", "pilot", "dental", "internal", "white", "paper", "topic",
    "share", "button", "daily", "deal", "coupon", "follow", "sports", "stats", "news", "media",
    "cloud", "shop", "store", "market", "trade", "finance", "capital", "health", "fit", "life",
    "style", "auto", "drive", "home", "garden", "travel", "journey", "stream", "play", "game",
    "tech", "byte", "data", "link", "click", "track", "pixel", "beacon", "ad", "banner", "bridge",
    "river", "stone", "forest", "meadow", "harbor", "summit", "valley", "spark", "ember", "nova",
    "orbit", "pulse", "wave", "echo", "prism", "vertex", "zenith", "atlas", "signal", "vector",
    "matrix", "cipher", "quartz", "falcon", "otter", "badger", "heron", "maple", "cedar", "willow",
    "aspen", "global", "prime", "rapid", "smart", "bright", "fresh", "swift", "solid", "true",
    "pure", "peak", "core", "edge", "apex", "united", "express",
];

/// Acronym/locale-style short tokens (obvious non-UIDs the manual filter
/// must catch).
pub const ACRONYMS: &[&str] = &[
    "en-US", "en-GB", "fr-FR", "de-DE", "es-MX", "pt-BR", "ja-JP", "zh-CN", "UTF-8", "GMT", "UTC",
    "NTSC", "USD", "EUR", "API", "SDK", "RSS", "AMP",
];

/// Pick a random word.
pub fn word(rng: &mut DetRng) -> &'static str {
    let w: &&'static str = rng.pick(WORDS);
    w
}

/// A `foo_bar_baz`-style natural-language string with delimiters.
pub fn delimited_phrase(rng: &mut DetRng, n_words: usize) -> String {
    let sep = *rng.pick(&["_", "-", "."]);
    (0..n_words.max(1))
        .map(|_| word(rng).to_string())
        .collect::<Vec<_>>()
        .join(sep)
}

/// Concatenated words with no delimiter (`sweetmagnolias` shape).
pub fn concatenated_words(rng: &mut DetRng, n_words: usize) -> String {
    (0..n_words.max(1)).map(|_| word(rng)).collect()
}

/// A semi-abbreviated word (`navimail` shape): two words, each truncated.
pub fn semi_abbreviated(rng: &mut DetRng) -> String {
    let a = word(rng);
    let b = word(rng);
    let ta = &a[..a.len().min(4)];
    let tb = &b[..b.len().min(4)];
    format!("{ta}{tb}")
}

/// A locale/acronym token.
pub fn acronym(rng: &mut DetRng) -> &'static str {
    let a: &&'static str = rng.pick(ACRONYMS);
    a
}

/// A plausible lowercase domain name under the given TLD.
pub fn domain_name(rng: &mut DetRng, tld: &str) -> String {
    let style = rng.below(3);
    let name = match style {
        0 => format!("{}{}", word(rng), word(rng)),
        1 => format!("{}-{}", word(rng), word(rng)),
        _ => format!("{}{}{}", word(rng), word(rng), rng.range(1, 99)),
    };
    format!("{name}.{tld}")
}

/// A plausible tracker FQDN: short host label(s) under a tracker domain,
/// like `adclick.g.doubleclick.net` or `trc.taboola.com`.
pub fn tracker_fqdn(rng: &mut DetRng, base_domain: &str) -> String {
    const LABELS: &[&str] = &[
        "ad", "ads", "adclick", "trc", "sync", "px", "go", "r", "rd", "t", "l", "gm", "secure",
        "click", "rtb", "match", "pr", "optout", "s", "edge",
    ];
    match rng.below(3) {
        0 => format!("{}.{}", rng.pick(LABELS), base_domain),
        1 => format!(
            "{}.{}.{}",
            rng.pick(LABELS),
            rng.pick(&["g", "d", "x", "e"]),
            base_domain
        ),
        _ => format!("{}{}.{}", rng.pick(LABELS), rng.range(1, 9999), base_domain),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delimited_phrase_shape() {
        let mut rng = DetRng::new(1);
        let p = delimited_phrase(&mut rng, 3);
        let parts = cc_util::strings::split_words(&p);
        assert_eq!(parts.len(), 3);
        for w in parts {
            assert!(WORDS.contains(&w), "unknown word {w}");
        }
    }

    #[test]
    fn concatenated_has_no_delimiters() {
        let mut rng = DetRng::new(2);
        let c = concatenated_words(&mut rng, 2);
        assert!(c.chars().all(|ch| ch.is_ascii_lowercase()));
        assert!(c.len() >= 4);
    }

    #[test]
    fn semi_abbreviated_is_short_concat() {
        let mut rng = DetRng::new(3);
        let s = semi_abbreviated(&mut rng);
        assert!(s.len() <= 8);
        assert!(s.chars().all(|ch| ch.is_ascii_lowercase()));
    }

    #[test]
    fn domain_name_parses_as_host() {
        let mut rng = DetRng::new(4);
        for _ in 0..100 {
            let d = domain_name(&mut rng, "com");
            assert!(cc_url::Host::parse(&d).is_ok(), "bad domain {d}");
            assert!(d.ends_with(".com"));
        }
    }

    #[test]
    fn tracker_fqdn_under_base() {
        let mut rng = DetRng::new(5);
        for _ in 0..100 {
            let f = tracker_fqdn(&mut rng, "doubleclick.net");
            let h = cc_url::Host::parse(&f).unwrap();
            assert!(h.is_subdomain_of("doubleclick.net"));
            assert_ne!(f, "doubleclick.net");
        }
    }

    #[test]
    fn zero_word_requests_clamped() {
        let mut rng = DetRng::new(6);
        assert!(!delimited_phrase(&mut rng, 0).is_empty());
        assert!(!concatenated_words(&mut rng, 0).is_empty());
    }

    #[test]
    fn acronyms_listed() {
        let mut rng = DetRng::new(7);
        assert!(ACRONYMS.contains(&acronym(&mut rng)));
    }
}
