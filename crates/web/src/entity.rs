//! Organizations and entity ownership.
//!
//! §5.2 of the paper attributes originator/destination hostnames to owning
//! organizations (Disconnect entity list + manual WHOIS/copyright research),
//! because one organization often owns many domains — Sports Reference owns
//! `hockey-reference.com`, `stathead.com`, `baseball-reference.com`, …, and
//! Facebook owns both `facebook.com` and `instagram.com`. Figure 4 counts
//! *organizations*, not hostnames. The simulator mirrors this: every domain
//! belongs to an [`Organization`], and an *entity list* with configurable
//! coverage (the paper could attribute 280 of 436 domains) is exported for
//! the analysis crate.

use serde::{Deserialize, Serialize};

/// Identifier of an organization in the generated world.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct OrgId(pub u32);

/// An organization owning one or more registered domains.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Organization {
    /// Identifier.
    pub id: OrgId,
    /// Display name (e.g. "Sports Reference", "AWIN").
    pub name: String,
    /// Registered domains owned by this organization.
    pub domains: Vec<String>,
    /// Whether the org appears in the simulated Disconnect-style *entity
    /// list* (the paper's list covered 45 of 436 domains; manual research
    /// extended that to 280).
    pub in_entity_list: bool,
}

impl Organization {
    /// Create an organization with no domains yet.
    pub fn new(id: OrgId, name: impl Into<String>) -> Self {
        Organization {
            id,
            name: name.into(),
            domains: Vec::new(),
            in_entity_list: false,
        }
    }

    /// Register a domain as owned by this organization.
    pub fn add_domain(&mut self, domain: &str) {
        let d = domain.to_ascii_lowercase();
        if !self.domains.contains(&d) {
            self.domains.push(d);
        }
    }

    /// Whether this organization owns the given registered domain.
    pub fn owns(&self, domain: &str) -> bool {
        self.domains
            .iter()
            .any(|d| d == &domain.to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_domain_dedupes() {
        let mut org = Organization::new(OrgId(1), "Sports Reference");
        org.add_domain("stathead.com");
        org.add_domain("STATHEAD.com");
        org.add_domain("baseball-reference.com");
        assert_eq!(org.domains.len(), 2);
        assert!(org.owns("stathead.com"));
        assert!(org.owns("Baseball-Reference.com"));
        assert!(!org.owns("example.com"));
    }
}
