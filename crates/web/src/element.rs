//! Clickable-element models: what a crawler sees on a rendered page.
//!
//! §3.3: each crawler sends the controller "a list of all anchor and iframe
//! elements on that page … the elements' properties, location, bounding
//! boxes, and x-paths". Iframes "often do not have any attribute that
//! identifies where a user will navigate" — so the controller matches them
//! by attribute names + bounding box or x-path, and that matching can be
//! *wrong* when slots serve different ads. [`ElementModel`] carries exactly
//! the fields those heuristics consume.

use cc_url::Url;
use serde::{Deserialize, Serialize};

/// Element species CrumbCruncher clicks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementKind {
    /// `<a>` element.
    Anchor,
    /// `<iframe>` element (expected to contain advertisements).
    Iframe,
}

/// A rendered element's bounding box, in CSS pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BBox {
    /// Left edge.
    pub x: i32,
    /// Top edge. The matching heuristic deliberately ignores `y` ("the
    /// y-coordinate may differ, to allow for elements that render at
    /// different heights").
    pub y: i32,
    /// Width.
    pub w: i32,
    /// Height.
    pub h: i32,
}

impl BBox {
    /// Whether two boxes are "similar" under the §3.3 heuristic: same
    /// x/width/height, any y.
    pub fn similar(&self, other: &BBox) -> bool {
        self.x == other.x && self.w == other.w && self.h == other.h
    }
}

/// What clicking the element does.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClickTarget {
    /// Navigate to a fully resolved URL (already decorated).
    Navigate(Url),
    /// Dead element (banner without a link); the click does nothing.
    Inert,
}

/// A clickable element on a loaded page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElementModel {
    /// Anchor or iframe.
    pub kind: ElementKind,
    /// HTML attribute *names* (values intentionally omitted — the heuristic
    /// compares names only).
    pub attr_names: Vec<String>,
    /// Rendered bounding box.
    pub bbox: BBox,
    /// DOM x-path.
    pub xpath: String,
    /// For anchors: the href as rendered (before click-time decoration).
    /// `None` for iframes — the crux of the synchronization challenge.
    pub href: Option<Url>,
    /// What clicking does (resolved at click time by the browser; this is
    /// the *already-sampled* outcome for this particular load).
    pub target: ClickTarget,
}

impl ElementModel {
    /// Whether this element, if clicked, navigates to a different
    /// registered domain than `current` — the crawler's preference (§3.1).
    pub fn is_cross_site(&self, current_domain: &str) -> bool {
        match (&self.href, &self.target) {
            (Some(href), _) => href.registered_domain() != current_domain,
            // Iframes have no href; CrumbCruncher treats them as likely
            // ads, i.e. likely cross-site.
            (None, ClickTarget::Navigate(_)) => true,
            (None, ClickTarget::Inert) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn anchor(href: &str) -> ElementModel {
        ElementModel {
            kind: ElementKind::Anchor,
            attr_names: vec!["href".into(), "class".into()],
            bbox: BBox {
                x: 10,
                y: 500,
                w: 200,
                h: 40,
            },
            xpath: "/html/body/div[1]/a[2]".into(),
            href: Some(url(href)),
            target: ClickTarget::Navigate(url(href)),
        }
    }

    #[test]
    fn bbox_similarity_ignores_y() {
        let a = BBox {
            x: 1,
            y: 10,
            w: 5,
            h: 5,
        };
        let b = BBox {
            x: 1,
            y: 900,
            w: 5,
            h: 5,
        };
        let c = BBox {
            x: 2,
            y: 10,
            w: 5,
            h: 5,
        };
        assert!(a.similar(&b));
        assert!(!a.similar(&c));
    }

    #[test]
    fn cross_site_for_anchor_uses_href() {
        let e = anchor("https://other.com/x");
        assert!(e.is_cross_site("example.com"));
        let e2 = anchor("https://www.example.com/x");
        assert!(!e2.is_cross_site("example.com"));
    }

    #[test]
    fn iframe_assumed_cross_site_when_clickable() {
        let e = ElementModel {
            kind: ElementKind::Iframe,
            attr_names: vec!["src".into(), "width".into()],
            bbox: BBox {
                x: 0,
                y: 0,
                w: 300,
                h: 250,
            },
            xpath: "/html/body/div[3]/iframe[1]".into(),
            href: None,
            target: ClickTarget::Navigate(url("https://ad.net/click")),
        };
        assert!(e.is_cross_site("example.com"));
        let inert = ElementModel {
            target: ClickTarget::Inert,
            ..e
        };
        assert!(!inert.is_cross_site("example.com"));
    }
}
