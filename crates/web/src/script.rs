//! The script execution interface between the synthetic web and the browser.
//!
//! Real trackers run JavaScript in the page's top-level frame: they read and
//! write first-party storage, compute fingerprints, decorate links, and fire
//! beacon requests. The simulator expresses those *effects* against a
//! [`ScriptHost`] — implemented by `cc-browser` — so the web crate never
//! depends on browser internals and the browser enforces its storage policy
//! (partitioned or flat) uniformly.
//!
//! This module also defines the **ground-truth ledger** ([`TokenTruth`],
//! [`TruthLog`]): every value the web mints is labeled at mint time, which
//! lets the test suite score the pipeline's precision/recall — something the
//! paper could not do against the live web.

use cc_net::{SimDuration, SimTime};
use cc_url::Url;
use cc_util::DetRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::tracker::TrackerId;

/// Where a script stores a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageKind {
    /// A first-party cookie with an optional persistent lifetime
    /// (`None` = browser-session cookie).
    Cookie(Option<SimDuration>),
    /// A localStorage entry (no expiry).
    Local,
}

/// The environment a page's scripts execute in.
///
/// All storage access is implicitly scoped to the **current top-level
/// site** — under partitioned storage the browser keys the storage area by
/// the top-level registered domain, which is precisely the protection UID
/// smuggling circumvents.
pub trait ScriptHost {
    /// The URL of the page the scripts run on (including any smuggled
    /// query parameters that arrived with the navigation).
    fn page_url(&self) -> &Url;

    /// Read a first-party storage value (cookie or localStorage) for the
    /// current partition.
    fn storage_get(&self, key: &str) -> Option<String>;

    /// Write a first-party storage value for the current partition.
    fn storage_set(&mut self, key: &str, value: &str, kind: StorageKind);

    /// Read a value from the *tracker's own* storage area (a third-party
    /// cookie). Under partitioned storage this is indistinguishable from
    /// first-party storage (the partition still keys by top-level site);
    /// under flat storage it is the shared cross-site bucket of Figure 1.
    /// The default delegates to first-party storage (the partitioned
    /// behavior).
    fn storage_get_owned(&self, _owner_domain: &str, key: &str) -> Option<String> {
        self.storage_get(key)
    }

    /// Write to the tracker's own storage area (see
    /// [`ScriptHost::storage_get_owned`]).
    fn storage_set_owned(
        &mut self,
        _owner_domain: &str,
        key: &str,
        value: &str,
        kind: StorageKind,
    ) {
        self.storage_set(key, value, kind);
    }

    /// The machine fingerprint visible to scripts. The paper's crawlers all
    /// ran on one machine, so fingerprinting trackers saw the *same*
    /// fingerprint on every crawler (§3.5).
    fn fingerprint(&self) -> u64;

    /// Per-load randomness (ad rotation, token minting).
    fn rng(&mut self) -> &mut DetRng;

    /// Fire a subresource/beacon request. The browser records it in the
    /// request log (Figure 6's data source).
    fn send_beacon(&mut self, url: Url);

    /// Current simulated time.
    fn now(&self) -> SimTime;
}

/// Ground-truth label for a minted token value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenTruth {
    /// A genuine user identifier minted by a tracker or site.
    Uid {
        /// The tracker that owns it (None = the site's own UID).
        tracker: Option<TrackerId>,
        /// Whether the value was derived from the browser fingerprint
        /// (identical across crawlers — the §3.5 confound).
        fingerprint_based: bool,
    },
    /// A per-visit session identifier (not a UID).
    SessionId,
    /// A timestamp.
    Timestamp,
    /// Natural-language-shaped value (campaign names etc.).
    WordLike,
    /// A locale/acronym value.
    Acronym,
    /// A URL carried in a parameter (e.g. click-through destinations).
    UrlValue,
    /// A geographic coordinate pair (the manual filter of §3.7.2 removes
    /// "coordinates" explicitly).
    Coordinate,
    /// Internal plumbing identifiers (campaign ids, chain encodings).
    Internal,
}

impl TokenTruth {
    /// Whether the pipeline *should* classify this token as a UID.
    ///
    /// Fingerprint-based UIDs are genuine UIDs, but the methodology is
    /// expected to miss them (§3.5) — they are accounted separately.
    pub fn is_uid(&self) -> bool {
        matches!(self, TokenTruth::Uid { .. })
    }
}

/// A ledger mapping minted token values to their ground truth.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TruthLog {
    entries: HashMap<String, TokenTruth>,
}

impl TruthLog {
    /// New empty ledger.
    pub fn new() -> Self {
        TruthLog::default()
    }

    /// Record a minted value. First label wins (values are unique with
    /// overwhelming probability; word values legitimately repeat and keep
    /// their original label).
    pub fn note(&mut self, value: &str, truth: TokenTruth) {
        self.entries.entry(value.to_string()).or_insert(truth);
    }

    /// Look up the truth for a value.
    pub fn get(&self, value: &str) -> Option<TokenTruth> {
        self.entries.get(value).copied()
    }

    /// Number of labeled values.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Count of labeled values that are genuine UIDs.
    pub fn uid_count(&self) -> usize {
        self.entries.values().filter(|t| t.is_uid()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_first_label_wins() {
        let mut log = TruthLog::new();
        log.note("abc", TokenTruth::SessionId);
        log.note(
            "abc",
            TokenTruth::Uid {
                tracker: None,
                fingerprint_based: false,
            },
        );
        assert_eq!(log.get("abc"), Some(TokenTruth::SessionId));
        assert_eq!(log.len(), 1);
        assert!(!log.is_empty());
    }

    #[test]
    fn uid_counting() {
        let mut log = TruthLog::new();
        log.note(
            "u1",
            TokenTruth::Uid {
                tracker: Some(TrackerId(1)),
                fingerprint_based: false,
            },
        );
        log.note("s1", TokenTruth::SessionId);
        log.note("t1", TokenTruth::Timestamp);
        assert_eq!(log.uid_count(), 1);
        assert!(log.get("u1").unwrap().is_uid());
        assert!(!log.get("s1").unwrap().is_uid());
        assert_eq!(log.get("missing"), None);
    }
}
