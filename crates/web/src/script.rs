//! The script execution interface between the synthetic web and the browser.
//!
//! Real trackers run JavaScript in the page's top-level frame: they read and
//! write first-party storage, compute fingerprints, decorate links, and fire
//! beacon requests. The simulator expresses those *effects* against a
//! [`ScriptHost`] — implemented by `cc-browser` — so the web crate never
//! depends on browser internals and the browser enforces its storage policy
//! (partitioned or flat) uniformly.
//!
//! This module also defines the **ground-truth ledger** ([`TokenTruth`],
//! [`TruthLog`]): every value the web mints is labeled at mint time, which
//! lets the test suite score the pipeline's precision/recall — something the
//! paper could not do against the live web.

use cc_net::{SimDuration, SimTime};
use cc_url::Url;
use cc_util::DetRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::tracker::TrackerId;

/// Where a script stores a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageKind {
    /// A first-party cookie with an optional persistent lifetime
    /// (`None` = browser-session cookie).
    Cookie(Option<SimDuration>),
    /// A localStorage entry (no expiry).
    Local,
}

/// The environment a page's scripts execute in.
///
/// All storage access is implicitly scoped to the **current top-level
/// site** — under partitioned storage the browser keys the storage area by
/// the top-level registered domain, which is precisely the protection UID
/// smuggling circumvents.
pub trait ScriptHost {
    /// The URL of the page the scripts run on (including any smuggled
    /// query parameters that arrived with the navigation).
    fn page_url(&self) -> &Url;

    /// Read a first-party storage value (cookie or localStorage) for the
    /// current partition.
    fn storage_get(&self, key: &str) -> Option<String>;

    /// Write a first-party storage value for the current partition.
    fn storage_set(&mut self, key: &str, value: &str, kind: StorageKind);

    /// Read a value from the *tracker's own* storage area (a third-party
    /// cookie). Under partitioned storage this is indistinguishable from
    /// first-party storage (the partition still keys by top-level site);
    /// under flat storage it is the shared cross-site bucket of Figure 1.
    /// The default delegates to first-party storage (the partitioned
    /// behavior).
    fn storage_get_owned(&self, _owner_domain: &str, key: &str) -> Option<String> {
        self.storage_get(key)
    }

    /// Write to the tracker's own storage area (see
    /// [`ScriptHost::storage_get_owned`]).
    fn storage_set_owned(
        &mut self,
        _owner_domain: &str,
        key: &str,
        value: &str,
        kind: StorageKind,
    ) {
        self.storage_set(key, value, kind);
    }

    /// The machine fingerprint visible to scripts. The paper's crawlers all
    /// ran on one machine, so fingerprinting trackers saw the *same*
    /// fingerprint on every crawler (§3.5).
    fn fingerprint(&self) -> u64;

    /// Per-load randomness (ad rotation, token minting).
    fn rng(&mut self) -> &mut DetRng;

    /// Fire a subresource/beacon request. The browser records it in the
    /// request log (Figure 6's data source).
    fn send_beacon(&mut self, url: Url);

    /// Current simulated time.
    fn now(&self) -> SimTime;
}

/// Ground-truth label for a minted token value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenTruth {
    /// A genuine user identifier minted by a tracker or site.
    Uid {
        /// The tracker that owns it (None = the site's own UID).
        tracker: Option<TrackerId>,
        /// Whether the value was derived from the browser fingerprint
        /// (identical across crawlers — the §3.5 confound).
        fingerprint_based: bool,
    },
    /// A per-visit session identifier (not a UID).
    SessionId,
    /// A timestamp.
    Timestamp,
    /// Natural-language-shaped value (campaign names etc.).
    WordLike,
    /// A locale/acronym value.
    Acronym,
    /// A URL carried in a parameter (e.g. click-through destinations).
    UrlValue,
    /// A geographic coordinate pair (the manual filter of §3.7.2 removes
    /// "coordinates" explicitly).
    Coordinate,
    /// Internal plumbing identifiers (campaign ids, chain encodings).
    Internal,
}

impl TokenTruth {
    /// Whether the pipeline *should* classify this token as a UID.
    ///
    /// Fingerprint-based UIDs are genuine UIDs, but the methodology is
    /// expected to miss them (§3.5) — they are accounted separately.
    pub fn is_uid(&self) -> bool {
        matches!(self, TokenTruth::Uid { .. })
    }

    /// Conflict-resolution precedence when the same value is minted with
    /// two different labels. Higher wins. The order is "least UID-like
    /// first": a value that ever carried a non-UID label must never be
    /// scored as a ground-truth UID, which keeps the ledger conservative
    /// — and, because the winner depends only on the label set and never
    /// on arrival order, notes commute (parallel crawls produce the same
    /// ledger no matter how workers interleave).
    fn precedence(&self) -> u8 {
        match self {
            TokenTruth::SessionId => 7,
            TokenTruth::Timestamp => 6,
            TokenTruth::Coordinate => 5,
            TokenTruth::WordLike => 4,
            TokenTruth::Acronym => 3,
            TokenTruth::UrlValue => 2,
            TokenTruth::Internal => 1,
            TokenTruth::Uid { .. } => 0,
        }
    }

    /// A total order over labels (precedence, then payload) so that even
    /// conflicts *within* a precedence class resolve identically in any
    /// arrival order.
    fn resolution_key(&self) -> (u8, u8, u32, u8) {
        match self {
            TokenTruth::Uid {
                tracker,
                fingerprint_based,
            } => (
                self.precedence(),
                u8::from(tracker.is_some()),
                tracker.map_or(0, |t| t.0),
                u8::from(*fingerprint_based),
            ),
            other => (other.precedence(), 0, 0, 0),
        }
    }
}

/// A ledger mapping minted token values to their ground truth.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TruthLog {
    entries: HashMap<String, TokenTruth>,
}

impl TruthLog {
    /// New empty ledger.
    pub fn new() -> Self {
        TruthLog::default()
    }

    /// Record a minted value. Conflicts (values are unique with
    /// overwhelming probability; word values legitimately repeat) resolve
    /// by label precedence rather than arrival order, so `note` is
    /// commutative: interleaved notes from parallel crawl workers yield
    /// the same ledger as any serial order.
    pub fn note(&mut self, value: &str, truth: TokenTruth) {
        use std::collections::hash_map::Entry;
        match self.entries.entry(value.to_string()) {
            Entry::Vacant(e) => {
                e.insert(truth);
            }
            Entry::Occupied(mut e) => {
                if truth.resolution_key() > e.get().resolution_key() {
                    e.insert(truth);
                }
            }
        }
    }

    /// Fold another ledger into this one, label by label. Because `note`
    /// is commutative, `a.merge(b)` equals `b.merge(a)` — shard truth
    /// logs combine in any order.
    pub fn merge(&mut self, other: &TruthLog) {
        for (value, truth) in &other.entries {
            self.note(value, *truth);
        }
    }

    /// Look up the truth for a value.
    pub fn get(&self, value: &str) -> Option<TokenTruth> {
        self.entries.get(value).copied()
    }

    /// Number of labeled values.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Count of labeled values that are genuine UIDs.
    pub fn uid_count(&self) -> usize {
        self.entries.values().filter(|t| t.is_uid()).count()
    }

    /// Iterate over `(value, label)` pairs, in unspecified order. Lets
    /// evaluation harnesses census the ledger (e.g. UIDs per tracker)
    /// without coupling to its storage.
    pub fn iter(&self) -> impl Iterator<Item = (&str, TokenTruth)> + '_ {
        self.entries.iter().map(|(v, t)| (v.as_str(), *t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_non_uid_label_wins_conflicts() {
        let mut log = TruthLog::new();
        log.note("abc", TokenTruth::SessionId);
        log.note(
            "abc",
            TokenTruth::Uid {
                tracker: None,
                fingerprint_based: false,
            },
        );
        assert_eq!(log.get("abc"), Some(TokenTruth::SessionId));
        assert_eq!(log.len(), 1);
        assert!(!log.is_empty());
    }

    #[test]
    fn truth_note_is_order_independent() {
        let uid = TokenTruth::Uid {
            tracker: Some(TrackerId(3)),
            fingerprint_based: false,
        };
        let labels = [TokenTruth::SessionId, uid, TokenTruth::Timestamp];
        // Every permutation of notes resolves to the same winner.
        let orders: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for order in orders {
            let mut log = TruthLog::new();
            for i in order {
                log.note("v", labels[i]);
            }
            assert_eq!(log.get("v"), Some(TokenTruth::SessionId), "{order:?}");
        }
    }

    #[test]
    fn truth_merge_commutes() {
        let uid = |t| TokenTruth::Uid {
            tracker: Some(TrackerId(t)),
            fingerprint_based: false,
        };
        let mut a = TruthLog::new();
        a.note("x", uid(1));
        a.note("y", TokenTruth::Timestamp);
        let mut b = TruthLog::new();
        b.note("x", TokenTruth::SessionId);
        b.note("z", uid(2));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for v in ["x", "y", "z"] {
            assert_eq!(ab.get(v), ba.get(v), "merge order changed label of {v}");
        }
        assert_eq!(ab.get("x"), Some(TokenTruth::SessionId));
        assert_eq!(ab.len(), 3);
    }

    #[test]
    fn uid_counting() {
        let mut log = TruthLog::new();
        log.note(
            "u1",
            TokenTruth::Uid {
                tracker: Some(TrackerId(1)),
                fingerprint_based: false,
            },
        );
        log.note("s1", TokenTruth::SessionId);
        log.note("t1", TokenTruth::Timestamp);
        assert_eq!(log.uid_count(), 1);
        assert!(log.get("u1").unwrap().is_uid());
        assert!(!log.get("s1").unwrap().is_uid());
        assert_eq!(log.get("missing"), None);
    }
}
