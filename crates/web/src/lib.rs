//! # cc-web
//!
//! The synthetic Web that stands in for the live Web the paper crawled.
//!
//! The pipeline under study consumes *artifacts* — pages with clickable
//! elements, redirect chains, cookies, localStorage values, query
//! parameters, third-party beacon requests. This crate generates a Web that
//! produces all of those artifacts with the structure the paper describes:
//!
//! * an **organization/tracker ecosystem** ([`entity`], [`tracker`]) with
//!   dedicated smugglers (redirector-only domains à la
//!   `adclick.g.doubleclick.net`), multi-purpose smugglers (link shims,
//!   sign-in hops), bounce trackers, affiliate networks, and analytics
//!   endpoints;
//! * **ad campaigns** ([`campaign`]) that decorate click URLs with UIDs,
//!   session IDs, timestamps, and word-like campaign parameters, routed
//!   through 0–6 redirector hops with configurable UID *spans* (which
//!   portion of the path carries the UID — Fig. 8);
//! * **sites** ([`site`]) with IAB categories ([`category`]), static links
//!   (first-party smuggling à la Sports Reference and the Instagram →
//!   Play Store case) and iframe ad slots with **dynamic rotation** — the
//!   root cause of the paper's single-crawler observations (§3.7.2);
//! * a **stateless server** ([`server::SimWeb`]) that answers requests:
//!   pages, redirector hops (Set-Cookie + 302), and beacon endpoints;
//! * page **script effects** executed against a [`script::ScriptHost`]
//!   (implemented by the browser crate), which is where trackers read and
//!   write partitioned storage, fingerprint, decorate links, and fire
//!   third-party beacons;
//! * a seeded **generator** ([`genesis`]) that builds the whole world from
//!   a [`genesis::WebConfig`] and embeds per-token ground truth for
//!   precision/recall evaluation (a capability the paper lacked).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod category;
pub mod element;
pub mod entity;
pub mod genesis;
pub mod script;
pub mod server;
pub mod site;
pub mod tracker;
pub mod words;

pub use campaign::{Campaign, CampaignId, UidSpan};
pub use category::Category;
pub use element::{BBox, ClickTarget, ElementKind, ElementModel};
pub use entity::{OrgId, Organization};
pub use genesis::{generate, WebConfig};
pub use script::{ScriptHost, StorageKind, TokenTruth, TruthLog};
pub use server::{LoadedPage, ServeCtx, SimWeb};
pub use site::{Site, SiteId};
pub use tracker::{Tracker, TrackerId, TrackerKind};
