//! Trackers: the entities that perform (or merely witness) UID smuggling.
//!
//! §5.1 of the paper classifies redirectors into **dedicated smugglers**
//! (domains with no purpose besides UID smuggling — 16 of the top 30
//! redirectors, led by DoubleClick) and **multi-purpose smugglers** (link
//! shims like `l.instagram.com`, sign-in hops, HTTP upgraders). Figure 6
//! additionally shows *analytics* third parties that never smuggle but
//! receive leaked UIDs in beacon requests. All of these are [`Tracker`]s
//! here, distinguished by [`TrackerKind`].

use cc_net::SimDuration;
use serde::{Deserialize, Serialize};

use crate::entity::OrgId;

/// Identifier of a tracker in the generated world.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct TrackerId(pub u32);

/// The role a tracker plays in the ecosystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TrackerKind {
    /// Redirector-only domain whose sole purpose is UID smuggling
    /// (`adclick.g.doubleclick.net`, `btds.zog.link`, …).
    DedicatedSmuggler,
    /// A redirector that also serves user-facing purposes: link shims,
    /// sign-in pages, language redirects (`l.instagram.com`,
    /// `signin.lexisnexis.com`, `www.getfeedback.com`).
    MultiPurposeSmuggler,
    /// Modifies navigation paths but never decorates UIDs — pure bounce
    /// tracking (§8, Koop et al.).
    BounceTracker,
    /// Passive third party: receives beacon requests from pages (and,
    /// accidentally, leaked UIDs — Fig. 6) but never redirects.
    Analytics,
    /// Evasion species ("Trackers Bounce Back"): a bounce hop that *drops*
    /// the partition-scoped UID minted at the originator and re-mints a
    /// fresh value from its own durable first-party identity mid-chain —
    /// so stripping the click URL never touches the value that actually
    /// reaches the destination.
    RemintBouncer,
    /// Evasion species: ETag/cache-style respawning. The tracker mirrors
    /// its partition UID into a first-party "cache validator" key owned by
    /// the embedding site; when an ITP-style purge clears the tracker's
    /// own storage, the next page load revalidates against the cache copy
    /// and respawns the identical UID.
    EtagRespawner,
    /// Evasion species: smuggles only after a consent banner granted
    /// consent on the originator site — unlisted by Disconnect/EasyList
    /// because "the user agreed", so list-based defenses never fire.
    ConsentGated,
    /// Evasion species: SPA-style pushState navigation. The decorated
    /// navigation goes straight origin → destination with zero redirect
    /// hops, so Safari's navigation-hop detector (ITP rule 1) never sees a
    /// redirector to classify.
    SpaPushState,
    /// Evasion species: server-side CNAME-cloaked sync. Served from a
    /// first-party-looking subdomain of the host site (same registered
    /// domain, same org) under an innocuous parameter name no blocklist
    /// carries, with server-side partner sync — link-decoration stripping
    /// has nothing to match.
    CnameCloaked,
}

impl TrackerKind {
    /// The five evasion-aware species, in report order.
    pub const SPECIES: [TrackerKind; 5] = [
        TrackerKind::RemintBouncer,
        TrackerKind::EtagRespawner,
        TrackerKind::ConsentGated,
        TrackerKind::SpaPushState,
        TrackerKind::CnameCloaked,
    ];

    /// Stable kebab-case label for an evasion species; `None` for the
    /// baseline paper kinds.
    pub fn species_label(&self) -> Option<&'static str> {
        match self {
            TrackerKind::RemintBouncer => Some("bounce-remint"),
            TrackerKind::EtagRespawner => Some("etag-respawn"),
            TrackerKind::ConsentGated => Some("consent-gated"),
            TrackerKind::SpaPushState => Some("spa-pushstate"),
            TrackerKind::CnameCloaked => Some("cname-cloaked"),
            _ => None,
        }
    }

    /// Whether this kind is one of the evasion species.
    pub fn is_species(&self) -> bool {
        self.species_label().is_some()
    }
}

/// A tracker: an ad-tech (or adjacent) endpoint with one or more FQDNs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tracker {
    /// Identifier.
    pub id: TrackerId,
    /// Display name ("DoubleClick"-like).
    pub name: String,
    /// Owning organization.
    pub org: OrgId,
    /// The FQDN this tracker serves redirects/beacons from.
    pub fqdn: String,
    /// Role.
    pub kind: TrackerKind,
    /// Query parameter name this tracker uses to smuggle UIDs (e.g.
    /// `gclid`). Analytics trackers still have one for beacon payloads.
    pub uid_param: String,
    /// Whether this tracker derives UIDs from the browser fingerprint
    /// instead of minting random ones (§3.5's confound).
    pub fingerprints: bool,
    /// Lifetime of the UID cookies this tracker sets. §3.7.1: 16% of UIDs
    /// lived under 90 days and 9% under a month, defeating lifetime-based
    /// session-ID filters.
    pub uid_lifetime: SimDuration,
    /// Whether the tracker stores smuggled UIDs in localStorage instead of
    /// cookies.
    pub uses_local_storage: bool,
    /// Present on the simulated Disconnect tracker-protection list. The
    /// paper found 41% of dedicated smugglers were *not* listed.
    pub in_disconnect: bool,
    /// Matched by the simulated EasyList/EasyPrivacy filters. The paper
    /// found only 6% of smuggling URLs were blocked.
    pub in_easylist: bool,
    /// For multi-purpose smugglers: probability that a given appearance is
    /// in their *other* role (sign-in hop, link shim) rather than an ad
    /// redirect. Zero for other kinds.
    pub benign_role_share: f64,
    /// Whether this tracker's hop answers with a script-driven redirect
    /// (page that immediately navigates) rather than an HTTP 302. Both are
    /// "invisible to the user but permitted to store first party cookies".
    pub js_redirect: bool,
    /// Cookie-sync partners (§8.2): on every page load this tracker tells
    /// each partner its UID for the current user. Under partitioned
    /// storage the shared knowledge stays scoped to one top-level site —
    /// which is exactly why trackers escalated to UID smuggling (§2).
    pub sync_partners: Vec<TrackerId>,
}

impl Tracker {
    /// Whether this tracker acts as a redirector in navigation paths.
    pub fn is_redirector(&self) -> bool {
        matches!(
            self.kind,
            TrackerKind::DedicatedSmuggler
                | TrackerKind::MultiPurposeSmuggler
                | TrackerKind::BounceTracker
                | TrackerKind::RemintBouncer
                | TrackerKind::ConsentGated
        )
    }

    /// Whether this tracker decorates UIDs (participates in smuggling).
    pub fn smuggles(&self) -> bool {
        matches!(
            self.kind,
            TrackerKind::DedicatedSmuggler
                | TrackerKind::MultiPurposeSmuggler
                | TrackerKind::RemintBouncer
                | TrackerKind::EtagRespawner
                | TrackerKind::ConsentGated
                | TrackerKind::SpaPushState
                | TrackerKind::CnameCloaked
        )
    }

    /// First-party storage key for the ETag-respawn species' "cache
    /// validator" copy (lives under the *embedding site's* keyspace, which
    /// an ITP-style purge of the tracker's domain never touches).
    pub fn etag_validator_key(&self) -> String {
        format!(
            "_etv_{}",
            self.name.to_ascii_lowercase().replace([' ', '.'], "_")
        )
    }

    /// The storage key under which this tracker keeps its own UID for a
    /// user (within a partition).
    pub fn uid_storage_key(&self) -> String {
        format!(
            "_{}_uid",
            self.name.to_ascii_lowercase().replace([' ', '.'], "_")
        )
    }

    /// The cookie name a redirector uses to persist a *received* smuggled
    /// UID under its own domain.
    pub fn received_uid_key(&self) -> String {
        format!(
            "_{}_rcv",
            self.name.to_ascii_lowercase().replace([' ', '.'], "_")
        )
    }
}

/// Query parameter names real trackers use for UID smuggling; the Brave
/// debounce/strip defense ships a blocklist of exactly such names (§7.1).
pub const UID_PARAM_NAMES: &[&str] = &[
    "gclid",
    "fbclid",
    "dclid",
    "msclkid",
    "yclid",
    "awc",
    "uid",
    "visitor_id",
    "s_kwcid",
    "mc_eid",
    "oly_anon_id",
    "vero_id",
    "wickedid",
    "_openstat",
    "igshid",
    "mkt_tok",
    "trk_uid",
    "sub_id",
    "click_id",
    "tduid",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(kind: TrackerKind) -> Tracker {
        Tracker {
            id: TrackerId(1),
            name: "Acme Ads".into(),
            org: OrgId(1),
            fqdn: "adclick.acmeads.com".into(),
            kind,
            uid_param: "gclid".into(),
            fingerprints: false,
            uid_lifetime: SimDuration::from_days(365),
            uses_local_storage: false,
            in_disconnect: true,
            in_easylist: false,
            benign_role_share: 0.0,
            js_redirect: false,
            sync_partners: Vec::new(),
        }
    }

    #[test]
    fn role_predicates() {
        assert!(tracker(TrackerKind::DedicatedSmuggler).is_redirector());
        assert!(tracker(TrackerKind::DedicatedSmuggler).smuggles());
        assert!(tracker(TrackerKind::MultiPurposeSmuggler).smuggles());
        assert!(tracker(TrackerKind::BounceTracker).is_redirector());
        assert!(!tracker(TrackerKind::BounceTracker).smuggles());
        assert!(!tracker(TrackerKind::Analytics).is_redirector());
        assert!(!tracker(TrackerKind::Analytics).smuggles());
    }

    #[test]
    fn storage_keys_derived_from_name() {
        let t = tracker(TrackerKind::DedicatedSmuggler);
        assert_eq!(t.uid_storage_key(), "_acme_ads_uid");
        assert_eq!(t.received_uid_key(), "_acme_ads_rcv");
    }

    #[test]
    fn species_predicates_and_labels() {
        for kind in TrackerKind::SPECIES {
            assert!(kind.is_species());
            assert!(tracker(kind).smuggles(), "{kind:?} must smuggle");
        }
        let labels: std::collections::HashSet<_> = TrackerKind::SPECIES
            .iter()
            .map(|k| k.species_label().unwrap())
            .collect();
        assert_eq!(labels.len(), TrackerKind::SPECIES.len());
        assert!(!TrackerKind::DedicatedSmuggler.is_species());
        // Only the chain-participating species answer navigation hops.
        assert!(tracker(TrackerKind::RemintBouncer).is_redirector());
        assert!(tracker(TrackerKind::ConsentGated).is_redirector());
        assert!(!tracker(TrackerKind::EtagRespawner).is_redirector());
        assert!(!tracker(TrackerKind::SpaPushState).is_redirector());
        assert!(!tracker(TrackerKind::CnameCloaked).is_redirector());
        assert_eq!(
            tracker(TrackerKind::EtagRespawner).etag_validator_key(),
            "_etv_acme_ads"
        );
    }

    #[test]
    fn uid_param_names_nonempty_unique() {
        let set: std::collections::HashSet<_> = UID_PARAM_NAMES.iter().collect();
        assert_eq!(set.len(), UID_PARAM_NAMES.len());
        assert!(UID_PARAM_NAMES.contains(&"gclid"));
    }
}
