//! World generation: build a [`SimWeb`] from a [`WebConfig`] and a seed.
//!
//! The generator is where the paper's measured structure is *planted* so the
//! pipeline can *recover* it:
//!
//! * a long-tailed redirector ecosystem with one dominant dedicated
//!   smuggler (DoubleClick appears in >20% of the paper's smuggling cases)
//!   and an affiliate pair that always chains together (awin1 → zenaps);
//! * originator-heavy news/sports sites with iframe ad slots, and
//!   destination-heavy shopping/technology sites;
//! * organization families whose sites link to each other with first-party
//!   UID decoration (Sports Reference), and a social network whose app
//!   button smuggles its UID to an app store (Instagram → Play Store);
//! * noise: session IDs, timestamps, word-shaped campaign parameters,
//!   acronyms, coordinates — the §3.7.2 false-positive workload;
//! * fingerprinting sites and fingerprint-derived UIDs (§3.5);
//! * blocklist coverage gaps (41% of dedicated smugglers missing from
//!   Disconnect; ~6% EasyList coverage — §5.1, §7.1).

use cc_net::SimDuration;
use cc_util::{DetRng, Zipf};

use crate::campaign::{Campaign, CampaignId, UidSpan};
use crate::category::Category;
use crate::entity::{OrgId, Organization};
use crate::script::TokenTruth;
use crate::server::SimWeb;
use crate::site::{AdSlot, LinkDecoration, Page, Site, SiteId, StaticLink};
use crate::tracker::{Tracker, TrackerId, TrackerKind, UID_PARAM_NAMES};
use crate::words;

/// Parameters controlling world generation.
///
/// Defaults are calibrated so a medium crawl reproduces the paper's headline
/// shape (≈8% of unique URL paths with UID smuggling, ≈2.7% bounce-only).
///
/// Serde-able so a `StudyConfig` (and therefore a crawl checkpoint) can
/// embed the exact world it was built for.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WebConfig {
    /// Master seed; every other stream forks from it.
    pub seed: u64,
    /// Number of sites in the world.
    pub n_sites: usize,
    /// Number of seeder sites (walk starting points).
    pub n_seeders: usize,
    /// Dedicated-smuggler trackers.
    pub n_dedicated: usize,
    /// Multi-purpose smuggler trackers.
    pub n_multipurpose: usize,
    /// Pure bounce trackers (never decorate UIDs).
    pub n_bounce: usize,
    /// Passive analytics trackers.
    pub n_analytics: usize,
    /// Campaigns per smuggling network.
    pub campaigns_per_network: usize,
    /// Probability a page carries an iframe ad slot.
    pub p_ad_slot: f64,
    /// Probability a site's internal family links are UID-decorated.
    pub p_static_decoration: f64,
    /// Probability a site fingerprints (Iqbal-list membership; the paper's
    /// §3.5 experiment found 13% of smuggling originates on such sites).
    pub p_site_fingerprints: f64,
    /// Probability a smuggler tracker derives UIDs from fingerprints.
    pub p_tracker_fingerprints: f64,
    /// Probability a site sets a rotating session cookie.
    pub p_session_cookie: f64,
    /// Probability a site sets its own persistent UID cookie.
    pub p_own_uid: f64,
    /// Mean per-element churn (element missing from a given load);
    /// calibrates the 7.6% sync-failure rate of §3.3.
    pub element_churn: f64,
    /// Weight multiplier for the dominant (DoubleClick-like) smuggler.
    pub dominant_weight: f64,
    /// Fraction of dedicated smugglers present on the Disconnect list
    /// (the paper found 59% = 16/27 present, i.e. 41% missing).
    pub disconnect_coverage_dedicated: f64,
    /// Fraction of smuggler URLs matched by EasyList (paper: ~6%).
    pub easylist_coverage: f64,
    /// Probability that a campaign continues to an additional redirector
    /// hop (geometric chain length).
    pub p_extra_hop: f64,
    /// Maximum redirector hops in any campaign.
    pub max_hops: usize,
    /// Probability that a page is fully dynamic (`volatile`): no element
    /// survives across loads, so the controller cannot synchronize there.
    /// Calibrates the 7.6% sync-failure rate of §3.3.
    pub p_volatile_page: f64,
    /// Zipf exponent for ad rotation within a slot: higher ⇒ crawlers
    /// loading the same slot agree on the ad more often (lower divergence,
    /// §3.3's 1.8%), lower ⇒ more single-crawler dynamic cases (§3.7.2).
    pub slot_rotation_zipf: f64,
    /// Bounce-to-remint evasion trackers ([`TrackerKind::RemintBouncer`]).
    /// All five species counts default to zero, and species generation
    /// draws exclusively from fresh named RNG streams — so worlds with the
    /// species disabled are byte-identical to pre-species worlds (and old
    /// serialized configs deserialize with the species off).
    #[serde(default)]
    pub n_remint: usize,
    /// ETag/cache-respawn evasion trackers ([`TrackerKind::EtagRespawner`]).
    #[serde(default)]
    pub n_etag: usize,
    /// Consent-gated evasion trackers ([`TrackerKind::ConsentGated`]).
    #[serde(default)]
    pub n_consent: usize,
    /// SPA-pushState evasion trackers ([`TrackerKind::SpaPushState`]).
    #[serde(default)]
    pub n_spa: usize,
    /// CNAME-cloaked sync trackers ([`TrackerKind::CnameCloaked`]).
    #[serde(default)]
    pub n_cname: usize,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            seed: 0xC0FFEE,
            n_sites: 300,
            n_seeders: 60,
            n_dedicated: 27,
            n_multipurpose: 30,
            n_bounce: 5,
            n_analytics: 18,
            campaigns_per_network: 10,
            p_ad_slot: 0.22,
            p_static_decoration: 0.12,
            p_site_fingerprints: 0.13,
            p_tracker_fingerprints: 0.10,
            p_session_cookie: 0.4,
            p_own_uid: 0.5,
            element_churn: 0.03,
            dominant_weight: 8.0,
            disconnect_coverage_dedicated: 0.59,
            easylist_coverage: 0.06,
            p_extra_hop: 0.42,
            max_hops: 8,
            p_volatile_page: 0.085,
            slot_rotation_zipf: 0.3,
            n_remint: 0,
            n_etag: 0,
            n_consent: 0,
            n_spa: 0,
            n_cname: 0,
        }
    }
}

impl WebConfig {
    /// A tiny world for fast unit tests.
    pub fn small() -> Self {
        WebConfig {
            n_sites: 60,
            n_seeders: 15,
            n_dedicated: 8,
            n_multipurpose: 8,
            n_bounce: 3,
            n_analytics: 5,
            campaigns_per_network: 5,
            ..WebConfig::default()
        }
    }

    /// Enable every evasion species (DESIGN §5f) at a small test-friendly
    /// scale on top of an existing configuration.
    pub fn all_species(self) -> Self {
        WebConfig {
            n_remint: 2,
            n_etag: 2,
            n_consent: 2,
            n_spa: 2,
            n_cname: 2,
            ..self
        }
    }

    /// Whether any evasion species is enabled.
    pub fn species_enabled(&self) -> bool {
        self.n_remint + self.n_etag + self.n_consent + self.n_spa + self.n_cname > 0
    }

    /// Paper-scale world (10,000 seeders — §3.1).
    pub fn paper_scale() -> Self {
        WebConfig {
            n_sites: 10_000,
            n_seeders: 10_000,
            n_dedicated: 40,
            n_multipurpose: 60,
            n_bounce: 15,
            n_analytics: 30,
            campaigns_per_network: 40,
            ..WebConfig::default()
        }
    }
}

/// Generate a complete world.
pub fn generate(config: &WebConfig) -> SimWeb {
    Generator::new(config.clone()).build()
}

struct Generator {
    cfg: WebConfig,
    rng: DetRng,
    orgs: Vec<Organization>,
    trackers: Vec<Tracker>,
    sites: Vec<Site>,
    campaigns: Vec<Campaign>,
    /// (value, truth) pairs to record once the web exists.
    truths: Vec<(String, TokenTruth)>,
    /// Popularity sampler over site ranks, built once (O(n)).
    popularity: Zipf,
}

impl Generator {
    fn new(cfg: WebConfig) -> Self {
        let rng = DetRng::new(cfg.seed).fork("genesis");
        let cfg_sites = cfg.n_sites.max(1);
        Generator {
            cfg,
            rng,
            orgs: Vec::new(),
            trackers: Vec::new(),
            sites: Vec::new(),
            campaigns: Vec::new(),
            truths: Vec::new(),
            popularity: Zipf::new(cfg_sites, 0.8),
        }
    }

    fn new_org(&mut self, name: String) -> OrgId {
        let id = OrgId(self.orgs.len() as u32);
        self.orgs.push(Organization::new(id, name));
        id
    }

    fn build(mut self) -> SimWeb {
        let tlds = ["com", "net", "org", "io", "co", "ru", "link", "world", "ca"];

        // ------------------------------------------------------------
        // 1. Tracker ecosystem.
        // ------------------------------------------------------------
        let mut smugglers: Vec<TrackerId> = Vec::new();
        let mut shims: Vec<TrackerId> = Vec::new();
        let mut bouncers: Vec<TrackerId> = Vec::new();
        let mut analytics: Vec<TrackerId> = Vec::new();

        // Dedicated smugglers; index 0 is the DoubleClick-like dominant.
        for i in 0..self.cfg.n_dedicated {
            let mut rng = self.rng.fork_indexed("tracker-dedicated", i as u64);
            let tld = *rng.pick(&tlds);
            let base = words::domain_name(&mut rng, tld);
            let name = base.split('.').next().unwrap_or("adco").to_string();
            let org = self.new_org(format!("{name} Inc"));
            self.orgs[org.0 as usize].add_domain(&cc_url::registered_domain(&base));
            let id = TrackerId(self.trackers.len() as u32);
            let in_disconnect = rng.chance(self.cfg.disconnect_coverage_dedicated);
            self.trackers.push(Tracker {
                id,
                name,
                org,
                fqdn: words::tracker_fqdn(&mut rng, &base),
                kind: TrackerKind::DedicatedSmuggler,
                uid_param: pick_uid_param(&mut rng, i),
                fingerprints: rng.chance(self.cfg.p_tracker_fingerprints),
                uid_lifetime: sample_uid_lifetime(&mut rng),
                uses_local_storage: rng.chance(0.25),
                in_disconnect,
                in_easylist: rng.chance(self.cfg.easylist_coverage),
                benign_role_share: 0.0,
                js_redirect: rng.chance(0.2),
                sync_partners: Vec::new(),
            });
            smugglers.push(id);
        }

        // Affiliate pair: two dedicated smugglers under one org that always
        // chain together (the awin1.com → zenaps.com pattern of §5.3).
        let affiliate_org = self.new_org("AWIN-like Affiliates".into());
        let mut affiliate_pair = Vec::new();
        for (label, fq) in [
            ("awin1-like", "go.awn1.com"),
            ("zenaps-like", "r.zenps.com"),
        ] {
            let id = TrackerId(self.trackers.len() as u32);
            self.orgs[affiliate_org.0 as usize].add_domain(&cc_url::registered_domain(fq));
            self.trackers.push(Tracker {
                id,
                name: label.into(),
                org: affiliate_org,
                fqdn: fq.into(),
                kind: TrackerKind::DedicatedSmuggler,
                uid_param: "awc".into(),
                fingerprints: false,
                uid_lifetime: SimDuration::from_days(365),
                uses_local_storage: false,
                in_disconnect: false,
                in_easylist: false,
                benign_role_share: 0.0,
                js_redirect: false,
                sync_partners: Vec::new(),
            });
            smugglers.push(id);
            affiliate_pair.push(id);
        }

        // Multi-purpose smugglers: shims, sign-in hops, social link shims.
        for i in 0..self.cfg.n_multipurpose {
            let mut rng = self.rng.fork_indexed("tracker-multi", i as u64);
            let tld = *rng.pick(&tlds);
            let base = words::domain_name(&mut rng, tld);
            let name = base.split('.').next().unwrap_or("shimco").to_string();
            let org = self.new_org(format!("{name} Corp"));
            self.orgs[org.0 as usize].add_domain(&cc_url::registered_domain(&base));
            let id = TrackerId(self.trackers.len() as u32);
            self.trackers.push(Tracker {
                id,
                name,
                org,
                fqdn: format!("l.{base}"),
                kind: TrackerKind::MultiPurposeSmuggler,
                uid_param: pick_uid_param(&mut rng, self.cfg.n_dedicated + i),
                fingerprints: rng.chance(self.cfg.p_tracker_fingerprints),
                uid_lifetime: sample_uid_lifetime(&mut rng),
                uses_local_storage: rng.chance(0.2),
                in_disconnect: rng.chance(0.7),
                in_easylist: rng.chance(self.cfg.easylist_coverage),
                benign_role_share: 0.4,
                js_redirect: rng.chance(0.3),
                sync_partners: Vec::new(),
            });
            shims.push(id);
            smugglers.push(id);
        }

        // Bounce trackers.
        for i in 0..self.cfg.n_bounce {
            let mut rng = self.rng.fork_indexed("tracker-bounce", i as u64);
            let tld = *rng.pick(&tlds);
            let base = words::domain_name(&mut rng, tld);
            let name = base.split('.').next().unwrap_or("bounce").to_string();
            let org = self.new_org(format!("{name} Media"));
            self.orgs[org.0 as usize].add_domain(&cc_url::registered_domain(&base));
            let id = TrackerId(self.trackers.len() as u32);
            self.trackers.push(Tracker {
                id,
                name,
                org,
                fqdn: words::tracker_fqdn(&mut rng, &base),
                kind: TrackerKind::BounceTracker,
                uid_param: "bt".into(),
                fingerprints: false,
                uid_lifetime: SimDuration::from_days(30),
                uses_local_storage: false,
                in_disconnect: rng.chance(0.5),
                in_easylist: rng.chance(self.cfg.easylist_coverage),
                benign_role_share: 0.0,
                js_redirect: rng.chance(0.5),
                sync_partners: Vec::new(),
            });
            bouncers.push(id);
        }

        // Analytics (google-analytics-like passive third parties).
        for i in 0..self.cfg.n_analytics {
            let mut rng = self.rng.fork_indexed("tracker-analytics", i as u64);
            let tld = *rng.pick(&tlds);
            let base = words::domain_name(&mut rng, tld);
            let name = base.split('.').next().unwrap_or("metrics").to_string();
            let org = self.new_org(format!("{name} Analytics"));
            self.orgs[org.0 as usize].add_domain(&cc_url::registered_domain(&base));
            let id = TrackerId(self.trackers.len() as u32);
            self.trackers.push(Tracker {
                id,
                name,
                org,
                fqdn: words::tracker_fqdn(&mut rng, &base),
                kind: TrackerKind::Analytics,
                uid_param: if i % 2 == 0 {
                    "cid".into()
                } else {
                    "vid".into()
                },
                fingerprints: rng.chance(self.cfg.p_tracker_fingerprints),
                uid_lifetime: SimDuration::from_days(730),
                uses_local_storage: rng.chance(0.3),
                in_disconnect: rng.chance(0.8),
                in_easylist: rng.chance(0.5),
                benign_role_share: 0.0,
                js_redirect: false,
                sync_partners: Vec::new(),
            });
            analytics.push(id);
        }

        // Cookie-sync partnerships (§8.2): analytics trackers exchange
        // UIDs with each other and with smugglers on the pages they share.
        {
            let mut rng = self.rng.fork("sync-partners");
            let pool: Vec<TrackerId> = analytics.iter().chain(smugglers.iter()).copied().collect();
            for &aid in &analytics {
                let n = rng.range(0, 2) as usize;
                for _ in 0..n {
                    let partner = pool[rng.index(pool.len())];
                    let t = &mut self.trackers[aid.0 as usize];
                    if partner != aid && !t.sync_partners.contains(&partner) {
                        t.sync_partners.push(partner);
                    }
                }
            }
        }

        // ------------------------------------------------------------
        // 2. Sites.
        // ------------------------------------------------------------
        let cat_weights: Vec<f64> = Category::ALL.iter().map(|c| c.site_weight()).collect();
        // Organization families (Sports-Reference-like and a social giant).
        let sports_org = self.new_org("Sports Reference-like".into());
        let social_org = self.new_org("Social Giant".into());
        let store_org = self.new_org("App Store Giant".into());

        for i in 0..self.cfg.n_sites {
            let mut rng = self.rng.fork_indexed("site", i as u64);
            let (org, domain, category) = if i < 4 {
                // The sports stats family: heavily interlinked same-org
                // sites (§5.2's most common originator).
                let domain = format!(
                    "{}-reference-{i}.com",
                    ["hockey", "baseball", "football", "stat"][i]
                );
                (sports_org, domain, Category::Sports)
            } else if i == 4 {
                (
                    social_org,
                    "instaface.com".to_string(),
                    Category::SocialNetworking,
                )
            } else if i == 5 {
                (
                    store_org,
                    "playstore-g.com".to_string(),
                    Category::TechnologyComputing,
                )
            } else {
                let cat = Category::ALL[rng.weighted_index(&cat_weights)];
                let tld = *rng.pick(&tlds);
                let domain = words::domain_name(&mut rng, tld);
                let org = self.new_org(format!("{} owner", domain));
                (org, domain, cat)
            };
            self.orgs[org.0 as usize].add_domain(&cc_url::registered_domain(&domain));

            let id = SiteId(i as u32);
            let fingerprints = rng.chance(self.cfg.p_site_fingerprints);
            let mut embedded: Vec<TrackerId> = Vec::new();
            // 1–3 analytics trackers, favoring the head of the list so a few
            // domains dominate Figure 6 as in the paper.
            if !analytics.is_empty() {
                let z = Zipf::new(analytics.len(), 1.1);
                for _ in 0..rng.range(1, 3) {
                    let t = analytics[z.sample(&mut rng)];
                    if !embedded.contains(&t) {
                        embedded.push(t);
                    }
                }
            }

            self.sites.push(Site {
                id,
                domain,
                org,
                category,
                rank: i,
                pages: Vec::new(), // filled after campaigns exist
                embedded_trackers: embedded,
                sets_own_uid: rng.chance(self.cfg.p_own_uid),
                sets_session_cookie: rng.chance(self.cfg.p_session_cookie),
                fingerprints,
                login_needs_uid: i % 97 == 13, // a sparse sprinkling of login pages
                consent_banner: false, // planted by the species phase
            });
        }
        // The social site always has its own UID (the app-button case).
        self.sites[4].sets_own_uid = true;
        for s in self.sites.iter_mut().take(4) {
            s.sets_own_uid = true;
        }
        // The fixed families produce a large share of findings; letting the
        // fingerprinting flag land on them by chance would swing the §3.5
        // experiment wildly between seeds. Real equivalents (major sports
        // stats sites, the social giant) are not on Iqbal et al.'s list.
        for s in self.sites.iter_mut().take(6) {
            s.fingerprints = false;
        }

        // Some multi-purpose smugglers ARE user-facing sites — the
        // www.facebook.com-as-redirector rows of Table 3. A third of the
        // shims serve their redirects from a site's own www host, so their
        // FQDN is also observed as an originator/destination (failing the
        // dedicated-smuggler criterion by design).
        for (idx, &tid) in shims.iter().enumerate() {
            if idx % 3 != 0 {
                continue;
            }
            let site_idx = 6 + idx;
            if site_idx >= self.sites.len() {
                break;
            }
            let site = &self.sites[site_idx];
            let fqdn = site.www_fqdn();
            let org = site.org;
            let name = site
                .domain
                .split('.')
                .next()
                .unwrap_or("paired")
                .to_string();
            let t = &mut self.trackers[tid.0 as usize];
            t.fqdn = fqdn;
            t.org = org;
            t.name = name;
        }

        // ------------------------------------------------------------
        // 3. Campaigns.
        // ------------------------------------------------------------
        // Destination pool weighted by destination affinity and popularity.
        let dest_weights: Vec<f64> = self
            .sites
            .iter()
            .map(|s| s.category.destination_affinity() / (1.0 + s.rank as f64).sqrt())
            .collect();

        // Smuggler weights: dominant first dedicated smuggler.
        let mut smuggler_weights: Vec<f64> = smugglers.iter().map(|_| 1.0).collect();
        if !smuggler_weights.is_empty() {
            smuggler_weights[0] = self.cfg.dominant_weight;
        }

        // Campaigns are generated in *sibling clusters*: creatives of one
        // advertiser rotating in the same slot share a destination (so the
        // same iframe clicked on different crawlers usually lands on the
        // same FQDN — the paper's divergence rate is only 1.8%) while
        // differing in chain shape, span, and noise parameters (so the
        // *tokens* still differ — the dynamic cases of §3.7.2).
        let mut clusters: Vec<Vec<CampaignId>> = Vec::new();
        let network_pool: Vec<TrackerId> = smugglers.clone();
        for (wi, &network) in network_pool.iter().enumerate() {
            let n_campaigns = if wi == 0 {
                self.cfg.campaigns_per_network * 3 // the dominant network
            } else {
                self.cfg.campaigns_per_network
            };
            let mut cluster_left = 0usize;
            let mut cluster_dest = SiteId(0);
            for j in 0..n_campaigns {
                let mut rng = self.rng.fork_indexed("campaign", (wi * 10_000 + j) as u64);
                if cluster_left == 0 {
                    cluster_left = rng.range(3, 8) as usize;
                    cluster_dest = SiteId(rng.weighted_index(&dest_weights) as u32);
                    clusters.push(Vec::new());
                }
                cluster_left -= 1;
                let destination = cluster_dest;
                // Header-bidding realism: an advertiser's creatives can be
                // served through different networks. A different network
                // means a different UID parameter name — the source of
                // single-crawler observations (§3.7.2) without divergence.
                let owner = if rng.chance(0.6) && smugglers.len() > 1 {
                    smugglers[rng.weighted_index(&smuggler_weights)]
                } else {
                    network
                };
                // Chain: the network first, then geometric extra hops drawn
                // from the smuggler pool (dedicated smugglers favored for
                // long chains — Figure 7's observation).
                let extra = rng.geometric(self.cfg.p_extra_hop, self.cfg.max_hops - 1);
                let mut hops = vec![owner];
                for _ in 0..extra {
                    let pick = smugglers[rng.weighted_index(&smuggler_weights)];
                    if !hops.contains(&pick) {
                        hops.push(pick);
                    }
                }
                // The affiliate pair always travels together.
                if hops.contains(&affiliate_pair[0]) && !hops.contains(&affiliate_pair[1]) {
                    hops.push(affiliate_pair[1]);
                }

                // Zero-hop (direct O→D) campaigns for a slice of the pool.
                let direct = rng.chance(0.08);
                if direct {
                    hops.clear();
                }

                let owner_tracker = &self.trackers[owner.0 as usize];
                let span = if owner_tracker.kind == TrackerKind::BounceTracker {
                    UidSpan::None
                } else if direct {
                    UidSpan::OriginatorToDestination
                } else {
                    match rng.weighted_index(&[0.63, 0.11, 0.14, 0.07, 0.05]) {
                        0 => UidSpan::Full,
                        1 => UidSpan::RedirectorToDestination,
                        2 => UidSpan::OriginatorToRedirector,
                        3 if hops.len() >= 2 => UidSpan::RedirectorToRedirector,
                        3 => UidSpan::Full,
                        _ => UidSpan::None, // benign ad click, no UID
                    }
                };

                let word_params = self.gen_word_params(&mut rng);
                let cid = CampaignId(self.campaigns.len() as u32);
                self.campaigns.push(Campaign {
                    id: cid,
                    owner,
                    hops,
                    destination,
                    landing_path: format!("/landing/{}", j),
                    span,
                    word_params,
                    add_timestamp: rng.chance(0.6),
                    add_session_id: rng.chance(0.10),
                });
                clusters.last_mut().expect("cluster opened").push(cid);
                // Destination embeds the owner's script so the UID is
                // collected on arrival (§2 step 3).
                let dsite = &mut self.sites[destination.0 as usize];
                if !dsite.embedded_trackers.contains(&owner) {
                    dsite.embedded_trackers.push(owner);
                }
            }
        }

        // Bounce campaigns: bounce trackers get chains too.
        for (bi, &b) in bouncers.iter().enumerate() {
            for j in 0..self.cfg.campaigns_per_network / 8 + 1 {
                let mut rng = self
                    .rng
                    .fork_indexed("bounce-campaign", (bi * 1_000 + j) as u64);
                let destination = SiteId(rng.weighted_index(&dest_weights) as u32);
                let extra = rng.geometric(0.3, 2);
                let mut hops = vec![b];
                for _ in 0..extra {
                    let pick = bouncers[rng.index(bouncers.len())];
                    if !hops.contains(&pick) {
                        hops.push(pick);
                    }
                }
                let cid = CampaignId(self.campaigns.len() as u32);
                clusters.push(vec![cid]);
                let word_params = self.gen_word_params(&mut rng);
                self.campaigns.push(Campaign {
                    id: cid,
                    owner: b,
                    hops,
                    destination,
                    landing_path: "/".into(),
                    span: UidSpan::None,
                    word_params,
                    add_timestamp: rng.chance(0.5),
                    add_session_id: rng.chance(0.10),
                });
            }
        }

        // ------------------------------------------------------------
        // 4. Pages: ad slots and static links.
        // ------------------------------------------------------------
        let campaign_count = self.campaigns.len();
        let n_sites = self.sites.len();
        for i in 0..n_sites {
            let mut rng = self.rng.fork_indexed("pages", i as u64);
            let originator_affinity = self.sites[i].category.originator_affinity();
            let fingerprint_site = self.sites[i].fingerprints;
            let n_pages = rng.range(1, 3) as usize;
            let mut pages = Vec::new();
            for p in 0..n_pages {
                let path = if p == 0 {
                    "/".to_string()
                } else {
                    format!("/{}", words::word(&mut rng))
                };

                // Static links: 3–7 links to other sites (anchors dominate
                // clickable elements on real pages).
                let mut links = Vec::new();
                let n_links = rng.range(3, 7) as usize;
                for _ in 0..n_links {
                    let target = self.pick_link_target(i, &mut rng);
                    let same_org = self.sites[target.0 as usize].org == self.sites[i].org;
                    let decoration = if same_org
                        && self.sites[i].sets_own_uid
                        && rng.chance(self.cfg.p_static_decoration)
                    {
                        // Family interlinking with first-party UID
                        // (Sports Reference / Instagram → Play Store).
                        LinkDecoration::SiteOwnUid
                    } else if rng.chance(0.05) && !shims.is_empty() {
                        let shim = shims[rng.index(shims.len())];
                        if !self.sites[i].embedded_trackers.contains(&shim) {
                            self.sites[i].embedded_trackers.push(shim);
                        }
                        LinkDecoration::Tracker(shim)
                    } else {
                        LinkDecoration::None
                    };
                    // The l.instagram.com pattern: a decorated outbound
                    // link points AT the shim, which collects the UID as a
                    // first party before bouncing onward. Bare (benign)
                    // shims also exist — the bounce-tracking substrate.
                    let via_shim = match decoration {
                        LinkDecoration::Tracker(t) => Some(t),
                        _ if rng.chance(0.008) && !shims.is_empty() => {
                            Some(shims[rng.index(shims.len())])
                        }
                        _ => None,
                    };
                    links.push(StaticLink {
                        to: target,
                        to_path: "/".into(),
                        via_shim,
                        decoration,
                    });
                }

                // Ad slots on originator-affine pages. A slot serves one
                // advertiser's sibling cluster (same destination, varying
                // creatives/chains), occasionally polluted with a foreign
                // campaign — the residual source of FQDN divergence.
                let mut ad_slots = Vec::new();
                if campaign_count > 0 && rng.chance(self.cfg.p_ad_slot * originator_affinity) {
                    let n_slots = rng.range(1, 2) as usize;
                    for s in 0..n_slots {
                        let cluster_idx = if fingerprint_site && rng.chance(0.85) {
                            // Fingerprinting sites preferentially host
                            // campaigns of fingerprinting networks (§3.5's
                            // confound).
                            let fp_clusters: Vec<usize> = clusters
                                .iter()
                                .enumerate()
                                .filter(|(_, c)| {
                                    c.first()
                                        .map(|cid| {
                                            let owner = self.campaigns[cid.0 as usize].owner;
                                            self.trackers[owner.0 as usize].fingerprints
                                        })
                                        .unwrap_or(false)
                                })
                                .map(|(i, _)| i)
                                .collect();
                            if fp_clusters.is_empty() {
                                rng.index(clusters.len())
                            } else {
                                fp_clusters[rng.index(fp_clusters.len())]
                            }
                        } else {
                            rng.index(clusters.len())
                        };
                        let mut campaigns = clusters[cluster_idx].clone();
                        if rng.chance(0.35) {
                            // Foreign creative in the rotation: clicking it
                            // lands somewhere else entirely.
                            campaigns.push(CampaignId(rng.index(campaign_count) as u32));
                        }
                        ad_slots.push(AdSlot {
                            slot_id: (p * 10 + s + 1) as u32,
                            campaigns,
                        });
                    }
                }

                pages.push(Page {
                    path,
                    links,
                    ad_slots,
                    element_churn: (self.cfg.element_churn * rng.range(0, 300) as f64 / 100.0)
                        .min(0.9),
                    volatile: rng.chance(self.cfg.p_volatile_page),
                });
            }
            self.sites[i].pages = pages;
        }

        // The social site's app button: a static SiteOwnUid-decorated link
        // to the app store (the Instagram → Play Store case).
        {
            let store = SiteId(5);
            let social_pages = &mut self.sites[4].pages;
            if let Some(p0) = social_pages.first_mut() {
                p0.links.insert(
                    0,
                    StaticLink {
                        to: store,
                        to_path: "/app".into(),
                        via_shim: None,
                        decoration: LinkDecoration::SiteOwnUid,
                    },
                );
            }
        }

        // ------------------------------------------------------------
        // 4b. Evasion species (DESIGN §5f). Every stream below is fresh,
        // so configurations with all species counts at zero generate
        // worlds byte-identical to pre-species ones.
        // ------------------------------------------------------------
        self.build_species(&dest_weights, &analytics);

        // ------------------------------------------------------------
        // 5. Seeders and final assembly.
        // ------------------------------------------------------------
        let seeders: Vec<SiteId> = (0..self.cfg.n_seeders.min(self.cfg.n_sites))
            .map(|i| SiteId(i as u32))
            .collect();

        let mut web = SimWeb::assemble(
            self.sites,
            self.trackers,
            self.orgs,
            self.campaigns,
            seeders,
        );
        web.rotation_zipf = self.cfg.slot_rotation_zipf;
        for (value, truth) in self.truths {
            web.note_truth(&value, truth);
        }
        web
    }

    /// Link targets favor popular sites and same-org siblings.
    fn pick_link_target(&mut self, from: usize, rng: &mut DetRng) -> SiteId {
        let n = self.sites.len();
        // Same-org sibling with some probability (family interlinking).
        if rng.chance(0.35) {
            let org = self.sites[from].org;
            let siblings: Vec<usize> = (0..n)
                .filter(|&j| j != from && self.sites[j].org == org)
                .collect();
            if !siblings.is_empty() {
                return SiteId(siblings[rng.index(siblings.len())] as u32);
            }
        }
        // Otherwise popularity-weighted (Zipf over rank).
        let mut pick = self.popularity.sample(rng);
        if pick == from {
            pick = (pick + 1) % n;
        }
        SiteId(pick as u32)
    }

    /// Generate word-shaped noise parameters and remember their truths.
    fn gen_word_params(&mut self, rng: &mut DetRng) -> Vec<(String, String)> {
        const KEYS: &[&str] = &["utm_campaign", "topic", "cmp", "src", "cat", "share"];
        let n = rng.range(0, 3) as usize;
        let mut out = Vec::new();
        for _ in 0..n {
            let key = (*rng.pick(KEYS)).to_string();
            let (value, truth) = match rng.weighted_index(&[0.35, 0.25, 0.1, 0.15, 0.15]) {
                0 => {
                    let n_words = rng.range(2, 4) as usize;
                    (words::delimited_phrase(rng, n_words), TokenTruth::WordLike)
                }
                1 => (words::concatenated_words(rng, 2), TokenTruth::WordLike),
                2 => (words::semi_abbreviated(rng), TokenTruth::WordLike),
                3 => (words::acronym(rng).to_string(), TokenTruth::Acronym),
                _ => {
                    let (a, b, c, d) = (
                        rng.range(10, 60),
                        rng.range(0, 9999),
                        rng.range(10, 120),
                        rng.range(0, 9999),
                    );
                    (format!("{a}.{b},-{c}.{d}"), TokenTruth::Coordinate)
                }
            };
            self.truths.push((value.clone(), truth));
            out.push((key, value));
        }
        out
    }

    /// Plant the five evasion-aware species (DESIGN §5f): their trackers,
    /// campaigns, consent banners, and the page elements that expose them
    /// to the crawlers. Runs only when a species count is non-zero.
    fn build_species(&mut self, dest_weights: &[f64], analytics: &[TrackerId]) {
        if !self.cfg.species_enabled() {
            return;
        }
        let tlds = ["com", "net", "io", "co"];
        // Running species index: keys the per-tracker placement streams
        // and slot ids so adding one species never reshuffles another.
        let mut sidx: u64 = 0;

        // Consent banners: most sites show one and this crawler persona
        // accepts, minting the first-party consent cookie the gated
        // species checks at click time.
        if self.cfg.n_consent > 0 {
            let mut rng = self.rng.fork("species-consent-banners");
            for s in self.sites.iter_mut() {
                s.consent_banner = rng.chance(0.7);
            }
        }

        // Bounce-to-remint: a redirector that drops the incoming UID and
        // re-mints from its own durable first-party identity mid-chain.
        // Its parameter name is custom, so no blocklist matches it.
        for i in 0..self.cfg.n_remint {
            let mut rng = self.rng.fork_indexed("tracker-remint", i as u64);
            let tld = *rng.pick(&tlds);
            let base = words::domain_name(&mut rng, tld);
            let name = base.split('.').next().unwrap_or("remint").to_string();
            let org = self.new_org(format!("{name} Exchange"));
            self.orgs[org.0 as usize].add_domain(&cc_url::registered_domain(&base));
            let id = TrackerId(self.trackers.len() as u32);
            self.trackers.push(Tracker {
                id,
                name,
                org,
                fqdn: words::tracker_fqdn(&mut rng, &base),
                kind: TrackerKind::RemintBouncer,
                uid_param: format!("{}_rid", words::word(&mut rng)),
                fingerprints: false,
                uid_lifetime: SimDuration::from_days(365),
                uses_local_storage: false,
                in_disconnect: false,
                in_easylist: false,
                benign_role_share: 0.0,
                js_redirect: rng.chance(0.3),
                sync_partners: Vec::new(),
            });
            let cluster = self.species_campaigns(id, i, "remint-campaign", dest_weights);
            self.species_slots(&cluster, sidx);
            sidx += 1;
        }

        // ETag/cache respawning: an embedded tracker whose UID survives a
        // purge of its own storage via a first-party cache-validator copy.
        // Disconnect lists it — respawn, not list gaps, is its evasion.
        for i in 0..self.cfg.n_etag {
            let mut rng = self.rng.fork_indexed("tracker-etag", i as u64);
            let tld = *rng.pick(&tlds);
            let base = words::domain_name(&mut rng, tld);
            let name = base.split('.').next().unwrap_or("cachepx").to_string();
            let org = self.new_org(format!("{name} CDN"));
            self.orgs[org.0 as usize].add_domain(&cc_url::registered_domain(&base));
            let id = TrackerId(self.trackers.len() as u32);
            self.trackers.push(Tracker {
                id,
                name,
                org,
                fqdn: words::tracker_fqdn(&mut rng, &base),
                kind: TrackerKind::EtagRespawner,
                uid_param: "click_id".into(),
                fingerprints: false,
                uid_lifetime: SimDuration::from_days(730),
                uses_local_storage: false,
                in_disconnect: true,
                in_easylist: false,
                benign_role_share: 0.0,
                js_redirect: false,
                sync_partners: Vec::new(),
            });
            self.species_links(id, sidx, dest_weights);
            sidx += 1;
        }

        // Consent-gated smuggling: a redirector network that decorates
        // only from partitions where the consent cookie exists — and is
        // absent from Disconnect/EasyList because "the user agreed".
        for i in 0..self.cfg.n_consent {
            let mut rng = self.rng.fork_indexed("tracker-consent", i as u64);
            let tld = *rng.pick(&tlds);
            let base = words::domain_name(&mut rng, tld);
            let name = base.split('.').next().unwrap_or("cmp").to_string();
            let org = self.new_org(format!("{name} CMP"));
            self.orgs[org.0 as usize].add_domain(&cc_url::registered_domain(&base));
            let id = TrackerId(self.trackers.len() as u32);
            self.trackers.push(Tracker {
                id,
                name,
                org,
                fqdn: words::tracker_fqdn(&mut rng, &base),
                kind: TrackerKind::ConsentGated,
                uid_param: "sub_id".into(),
                fingerprints: false,
                uid_lifetime: SimDuration::from_days(365),
                uses_local_storage: false,
                in_disconnect: false,
                in_easylist: false,
                benign_role_share: 0.0,
                js_redirect: rng.chance(0.3),
                sync_partners: Vec::new(),
            });
            let cluster = self.species_campaigns(id, i, "consent-campaign", dest_weights);
            self.species_slots(&cluster, sidx);
            sidx += 1;
        }

        // SPA pushState: decorates outbound links *directly* (no shim, no
        // redirect hop), so the navigation-hop detector sees an empty
        // redirector set. localStorage SDK, well-known parameter.
        for i in 0..self.cfg.n_spa {
            let mut rng = self.rng.fork_indexed("tracker-spa", i as u64);
            let tld = *rng.pick(&tlds);
            let base = words::domain_name(&mut rng, tld);
            let name = format!("{}-sdk", base.split('.').next().unwrap_or("spa"));
            let org = self.new_org(format!("{name} Labs"));
            self.orgs[org.0 as usize].add_domain(&cc_url::registered_domain(&base));
            let id = TrackerId(self.trackers.len() as u32);
            self.trackers.push(Tracker {
                id,
                name,
                org,
                fqdn: format!("cdn.{base}"),
                kind: TrackerKind::SpaPushState,
                uid_param: "tduid".into(),
                fingerprints: false,
                uid_lifetime: SimDuration::from_days(365),
                uses_local_storage: true,
                in_disconnect: false,
                in_easylist: false,
                benign_role_share: 0.0,
                js_redirect: false,
                sync_partners: Vec::new(),
            });
            self.species_links(id, sidx, dest_weights);
            sidx += 1;
        }

        // Server-side CNAME-cloaked sync: served from a first-party-looking
        // subdomain of one host site (same registered domain, same org),
        // decorating under an innocuous custom parameter and syncing
        // server-side with an analytics partner.
        let seeder_count = self.cfg.n_seeders.min(self.sites.len()).max(1);
        for i in 0..self.cfg.n_cname {
            let mut rng = self.rng.fork_indexed("tracker-cname", i as u64);
            let host_idx = (6 + i * 7) % seeder_count;
            let host_domain = self.sites[host_idx].domain.clone();
            let host_org = self.sites[host_idx].org;
            let name = format!(
                "{}-metrics",
                host_domain.split('.').next().unwrap_or("host")
            );
            let id = TrackerId(self.trackers.len() as u32);
            let mut sync_partners = Vec::new();
            if !analytics.is_empty() {
                sync_partners.push(analytics[rng.index(analytics.len())]);
            }
            self.trackers.push(Tracker {
                id,
                name,
                org: host_org,
                fqdn: format!("metrics.{host_domain}"),
                kind: TrackerKind::CnameCloaked,
                uid_param: format!("{}_ref", words::word(&mut rng)),
                fingerprints: false,
                uid_lifetime: SimDuration::from_days(730),
                uses_local_storage: false,
                in_disconnect: false,
                in_easylist: false,
                benign_role_share: 0.0,
                js_redirect: false,
                sync_partners,
            });
            self.species_host_links(id, host_idx, sidx, dest_weights);
            sidx += 1;
        }
    }

    /// A small sibling cluster of campaigns for a chain-borne species
    /// (remint / consent-gated): one-hop chains owned by the species
    /// tracker, full span, destination embedding the owner for harvest.
    fn species_campaigns(
        &mut self,
        owner: TrackerId,
        i: usize,
        stream: &str,
        dest_weights: &[f64],
    ) -> Vec<CampaignId> {
        let n = (self.cfg.campaigns_per_network / 2).max(2);
        let mut out = Vec::new();
        for j in 0..n {
            let mut rng = self.rng.fork_indexed(stream, (i * 1_000 + j) as u64);
            let destination = SiteId(rng.weighted_index(dest_weights) as u32);
            let word_params = self.gen_word_params(&mut rng);
            let cid = CampaignId(self.campaigns.len() as u32);
            self.campaigns.push(Campaign {
                id: cid,
                owner,
                hops: vec![owner],
                destination,
                landing_path: format!("/landing/{j}"),
                span: UidSpan::Full,
                word_params,
                add_timestamp: rng.chance(0.5),
                add_session_id: rng.chance(0.1),
            });
            let dsite = &mut self.sites[destination.0 as usize];
            if !dsite.embedded_trackers.contains(&owner) {
                dsite.embedded_trackers.push(owner);
            }
            out.push(cid);
        }
        out
    }

    /// Put a species campaign cluster in an ad slot on most seeder landing
    /// pages so short crawls reliably encounter it.
    fn species_slots(&mut self, cluster: &[CampaignId], sidx: u64) {
        let mut rng = self.rng.fork_indexed("species-slots", sidx);
        let seeder_count = self.cfg.n_seeders.min(self.sites.len()).max(1);
        for si in 0..seeder_count {
            if !rng.chance(0.6) {
                continue;
            }
            if let Some(p0) = self.sites[si].pages.first_mut() {
                p0.ad_slots.push(AdSlot {
                    slot_id: 900 + sidx as u32,
                    campaigns: cluster.to_vec(),
                });
            }
        }
    }

    /// Scatter direct (shimless) decorated links for an embedded species
    /// (ETag respawn / SPA) across seeder landing pages; destinations
    /// embed the tracker so the decorated UID is harvested on arrival.
    fn species_links(&mut self, tid: TrackerId, sidx: u64, dest_weights: &[f64]) {
        let mut rng = self.rng.fork_indexed("species-links", sidx);
        let n_sites = self.sites.len();
        let seeder_count = self.cfg.n_seeders.min(n_sites).max(1);
        for si in 0..seeder_count {
            if !rng.chance(0.5) {
                continue;
            }
            let mut dest = rng.weighted_index(dest_weights);
            if dest == si {
                dest = (dest + 1) % n_sites;
            }
            if !self.sites[si].embedded_trackers.contains(&tid) {
                self.sites[si].embedded_trackers.push(tid);
            }
            let dsite = &mut self.sites[dest];
            if !dsite.embedded_trackers.contains(&tid) {
                dsite.embedded_trackers.push(tid);
            }
            if let Some(p0) = self.sites[si].pages.first_mut() {
                p0.links.push(StaticLink {
                    to: SiteId(dest as u32),
                    to_path: "/".into(),
                    via_shim: None,
                    decoration: LinkDecoration::Tracker(tid),
                });
            }
        }
    }

    /// Direct decorated links for the CNAME-cloaked species: only its one
    /// host site carries them (the tracker *is* that site's subdomain).
    fn species_host_links(
        &mut self,
        tid: TrackerId,
        host_idx: usize,
        sidx: u64,
        dest_weights: &[f64],
    ) {
        let mut rng = self.rng.fork_indexed("species-links", 10_000 + sidx);
        let n_sites = self.sites.len();
        if !self.sites[host_idx].embedded_trackers.contains(&tid) {
            self.sites[host_idx].embedded_trackers.push(tid);
        }
        for _ in 0..3 {
            let mut dest = rng.weighted_index(dest_weights);
            if dest == host_idx {
                dest = (dest + 1) % n_sites;
            }
            let dsite = &mut self.sites[dest];
            if !dsite.embedded_trackers.contains(&tid) {
                dsite.embedded_trackers.push(tid);
            }
            for page in self.sites[host_idx].pages.iter_mut() {
                page.links.push(StaticLink {
                    to: SiteId(dest as u32),
                    to_path: "/".into(),
                    via_shim: None,
                    decoration: LinkDecoration::Tracker(tid),
                });
            }
        }
    }
}

fn pick_uid_param(rng: &mut DetRng, index: usize) -> String {
    if index < UID_PARAM_NAMES.len() {
        UID_PARAM_NAMES[index].to_string()
    } else {
        format!("{}_uid", words::word(rng))
    }
}

/// UID-cookie lifetimes: the tracker *population* skews shorter than the
/// paper's finding-weighted numbers (9% under 30 days, 16% under 90) because
/// long-lived dominant networks are over-represented among findings; this
/// mix lands the finding-weighted fractions near the paper's (§3.7.1).
fn sample_uid_lifetime(rng: &mut DetRng) -> SimDuration {
    match rng.weighted_index(&[0.14, 0.12, 0.30, 0.44]) {
        0 => SimDuration::from_days(rng.range(7, 29)),
        1 => SimDuration::from_days(rng.range(30, 89)),
        2 => SimDuration::from_days(rng.range(90, 364)),
        _ => SimDuration::from_days(rng.range(365, 730)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::TrackerKind;

    #[test]
    fn generate_small_world() {
        let web = generate(&WebConfig::small());
        assert_eq!(web.sites.len(), 60);
        assert!(web.campaigns.len() > 20);
        assert_eq!(web.seeders.len(), 15);
        // Every site resolves in DNS.
        for s in &web.sites {
            assert!(web.dns.resolve(&s.www_fqdn()).is_ok(), "{}", s.www_fqdn());
        }
        for t in &web.trackers {
            assert!(web.dns.resolve(&t.fqdn).is_ok(), "{}", t.fqdn);
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&WebConfig::small());
        let b = generate(&WebConfig::small());
        assert_eq!(a.sites.len(), b.sites.len());
        for (sa, sb) in a.sites.iter().zip(&b.sites) {
            assert_eq!(sa, sb);
        }
        for (ta, tb) in a.trackers.iter().zip(&b.trackers) {
            assert_eq!(ta, tb);
        }
        for (ca, cb) in a.campaigns.iter().zip(&b.campaigns) {
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn campaigns_reference_valid_entities() {
        let web = generate(&WebConfig::small());
        for c in &web.campaigns {
            assert!((c.destination.0 as usize) < web.sites.len());
            assert!((c.owner.0 as usize) < web.trackers.len());
            for h in c.hops() {
                assert!((h.0 as usize) < web.trackers.len());
                assert!(web.tracker(*h).is_redirector());
            }
            assert!(c.span_consistent() || c.span == UidSpan::None, "{c:?}");
        }
    }

    #[test]
    fn slots_reference_valid_campaigns() {
        let web = generate(&WebConfig::small());
        for s in &web.sites {
            for p in &s.pages {
                for slot in &p.ad_slots {
                    for cid in &slot.campaigns {
                        assert!(web.campaign(*cid).is_some());
                    }
                }
                for l in &p.links {
                    assert!((l.to.0 as usize) < web.sites.len());
                }
            }
        }
    }

    #[test]
    fn tracker_kind_mix_present() {
        let web = generate(&WebConfig::small());
        let count = |k: TrackerKind| web.trackers.iter().filter(|t| t.kind == k).count();
        assert!(count(TrackerKind::DedicatedSmuggler) >= 8);
        assert!(count(TrackerKind::MultiPurposeSmuggler) >= 8);
        assert!(count(TrackerKind::BounceTracker) >= 3);
        assert!(count(TrackerKind::Analytics) >= 5);
    }

    #[test]
    fn disconnect_gap_exists() {
        let web = generate(&WebConfig::default());
        let dedicated: Vec<_> = web
            .trackers
            .iter()
            .filter(|t| t.kind == TrackerKind::DedicatedSmuggler)
            .collect();
        let missing = dedicated.iter().filter(|t| !t.in_disconnect).count();
        let frac = missing as f64 / dedicated.len() as f64;
        assert!(frac > 0.15 && frac < 0.75, "missing fraction {frac}");
    }

    #[test]
    fn span_mix_includes_partials_and_bounce() {
        let web = generate(&WebConfig::default());
        let spans: std::collections::HashSet<_> = web.campaigns.iter().map(|c| c.span).collect();
        assert!(spans.contains(&UidSpan::Full));
        assert!(spans.contains(&UidSpan::None));
        assert!(spans.contains(&UidSpan::OriginatorToDestination));
        assert!(spans.contains(&UidSpan::RedirectorToDestination));
    }

    #[test]
    fn lifetime_mix_has_short_lifetimes() {
        let mut rng = DetRng::new(1);
        let mut under30 = 0;
        let mut under90 = 0;
        let n = 10_000;
        for _ in 0..n {
            let d = sample_uid_lifetime(&mut rng).as_days();
            if d < 30 {
                under30 += 1;
            }
            if d < 90 {
                under90 += 1;
            }
        }
        let p30 = under30 as f64 / n as f64;
        let p90 = under90 as f64 / n as f64;
        assert!((p30 - 0.14).abs() < 0.02, "p30 {p30}");
        assert!((p90 - 0.26).abs() < 0.02, "p90 {p90}");
    }

    #[test]
    fn family_sites_interlink_with_decoration() {
        let web = generate(&WebConfig::small());
        // The sports family (sites 0..4) should have at least one
        // SiteOwnUid-decorated link to a sibling.
        let mut found = false;
        for s in web.sites.iter().take(4) {
            for p in &s.pages {
                for l in &p.links {
                    if matches!(l.decoration, LinkDecoration::SiteOwnUid)
                        && web.site(l.to).org == s.org
                    {
                        found = true;
                    }
                }
            }
        }
        assert!(found, "no decorated family interlink generated");
    }

    #[test]
    fn species_phase_appends_without_disturbing_the_base_world() {
        let base = generate(&WebConfig::small());
        let with = generate(&WebConfig::small().all_species());
        // Base entities are a strict prefix: species generation only
        // appends trackers/campaigns on fresh streams.
        assert_eq!(base.trackers.len() + 10, with.trackers.len());
        for (a, b) in base.trackers.iter().zip(&with.trackers) {
            assert_eq!(a, b);
        }
        for (a, b) in base.campaigns.iter().zip(&with.campaigns) {
            assert_eq!(a, b);
        }
        assert!(with.campaigns.len() > base.campaigns.len());
        assert_eq!(base.sites.len(), with.sites.len());
        for kind in TrackerKind::SPECIES {
            assert_eq!(
                with.trackers.iter().filter(|t| t.kind == kind).count(),
                2,
                "{kind:?}"
            );
        }
        assert!(with.sites.iter().any(|s| s.consent_banner));
        assert!(base.sites.iter().all(|s| !s.consent_banner));
        // DNS covers the species endpoints too.
        for t in &with.trackers {
            assert!(with.dns.resolve(&t.fqdn).is_ok(), "{}", t.fqdn);
        }
    }

    #[test]
    fn cname_species_lives_on_its_host_sites_subdomain() {
        let web = generate(&WebConfig::small().all_species());
        let cloaked: Vec<_> = web
            .trackers
            .iter()
            .filter(|t| t.kind == TrackerKind::CnameCloaked)
            .collect();
        assert!(!cloaked.is_empty());
        for t in cloaked {
            assert!(t.fqdn.starts_with("metrics."), "{}", t.fqdn);
            let rd = cc_url::registered_domain(&t.fqdn);
            let host = web
                .sites
                .iter()
                .find(|s| s.domain == rd)
                .expect("cloaked tracker has a host site");
            assert_eq!(host.org, t.org, "cloak shares the host's org");
            // The host carries direct (shimless) decorated links.
            assert!(host.pages.iter().any(|p| p.links.iter().any(|l| {
                l.via_shim.is_none() && l.decoration == LinkDecoration::Tracker(t.id)
            })));
        }
    }

    #[test]
    fn social_app_button_present() {
        let web = generate(&WebConfig::small());
        let social = web.site(SiteId(4));
        let first = &social.pages[0].links[0];
        assert_eq!(first.to, SiteId(5));
        assert!(matches!(first.decoration, LinkDecoration::SiteOwnUid));
    }
}
